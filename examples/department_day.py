#!/usr/bin/env python3
"""A busy hour in the department: BIPS under realistic load.

Twelve users — students, staff, a professor — walk random routes through
the academic-department floor plan for a simulated hour while every
workstation runs the §5 duty cycle.  The script then reports what a
facilities operator would look at: per-room occupancy, tracking
accuracy against ground truth, detection latency, and LAN load.

    python examples/department_day.py [--users N] [--minutes M]
"""

from __future__ import annotations

import argparse

from repro import BIPSConfig, BIPSSimulation
from repro.analysis.tables import render_table
from repro.building.render import render_occupancy
from repro.core.reports import OccupancyReport


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=12)
    parser.add_argument("--minutes", type=float, default=60.0)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    sim = BIPSSimulation(config=BIPSConfig(seed=args.seed))
    rooms = sim.plan.room_ids()
    rng = sim.rng.child("example")

    roles = ["student", "staff", "professor"]
    for index in range(args.users):
        userid = f"u-{index:02d}"
        username = f"{roles[index % len(roles)].title()}-{index:02d}"
        sim.add_user(userid, username)
        sim.login(userid)
        sim.walk(
            userid,
            start_room=rng.choice(rooms),
            hops=max(3, int(args.minutes / 8)),
            start_at_seconds=rng.uniform(0.0, 120.0),
        )

    duration = args.minutes * 60.0
    print(f"simulating {args.minutes:.0f} minutes with {args.users} users ...")
    sim.run(until_seconds=duration)

    # Occupancy as the central server currently believes it — first the
    # floor map, then the table.
    analytics = OccupancyReport(sim.server.location_db, sim.server.registry, sim.plan)
    occupancy = {room.room_id: room for room in analytics.occupancy()}
    print()
    print(render_occupancy(sim.plan, lambda room_id: occupancy[room_id].count))
    print()
    print(
        render_table(
            ["room", "occupants", "who"],
            [
                [sim.plan.rooms[room_id].label, occupancy[room_id].count,
                 ", ".join(occupancy[room_id].usernames)]
                for room_id in rooms
            ],
            title="Current occupancy (location database view)",
            align_right=[False, True, False],
        )
    )

    # Movement analytics from the database history.
    devices = [sim.user(f"u-{i:02d}").device.address for i in range(args.users)]
    busiest = analytics.busiest_rooms(devices, top=3)
    print()
    print(
        render_table(
            ["room", "completed visits", "mean dwell"],
            [
                [
                    stats.room_id,
                    stats.visits,
                    f"{stats.mean_dwell_seconds:.0f}s" if stats.mean_dwell_seconds else "—",
                ]
                for stats in busiest
            ],
            title="Busiest rooms (from DB history)",
        )
    )
    moves = analytics.movement_matrix(devices)
    top_moves = sorted(moves.items(), key=lambda kv: kv[1], reverse=True)[:5]
    if top_moves:
        print("\nmost-travelled passages:")
        for (from_room, to_room), count in top_moves:
            print(f"  {from_room} -> {to_room}: {count}")

    report = sim.tracking_report()
    print()
    print(report.describe())

    updates = sim.server.presence_updates_received
    per_ws_cycle = updates / (len(rooms) * (duration / 15.4))
    print(f"\nLAN: {sim.lan.stats.sent} messages, {updates} presence deltas")
    print(
        f"     = {per_ws_cycle:.3f} updates per workstation-cycle "
        "(delta reporting keeps the wire almost idle)"
    )


if __name__ == "__main__":
    main()
