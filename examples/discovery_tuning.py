#!/usr/bin/env python3
"""Discovery tuning: size a BIPS master's duty cycle for *your* building.

Reproduces the §5 engineering argument as a reusable tool: given room
size, walking speeds, and expected occupancy, it sweeps the inquiry
window at the baseband level and reports the resulting discovery
coverage, detection bound, and tracking load — ending with the
recommendation the paper derives (3.84 s inquiry per 15.4 s cycle).

    python examples/discovery_tuning.py
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.core import MasterSchedulingPolicy
from repro.experiments.duty_cycle import Section5Config, run_discovery_window
from repro.mobility import PedestrianSpeedModel, crossing_time_seconds

#: The deployment being sized.
COVERAGE_DIAMETER_M = 20.0
EXPECTED_OCCUPANCY = 20  # §5 sizes for up to 20 slaves in coverage
CANDIDATE_WINDOWS_S = (1.28, 2.56, 3.84, 5.12, 7.68)
REPLICATIONS = 40


def measure_coverage(window_seconds: float) -> float:
    """Fraction of slaves one inquiry window discovers (full baseband sim)."""
    config = Section5Config(
        slave_count=EXPECTED_OCCUPANCY,
        replications=REPLICATIONS,
        inquiry_window_seconds=window_seconds,
        seed=424242,
    )
    discovered = 0
    total = 0
    for replication in range(config.replications):
        found, count = run_discovery_window(config, replication)
        discovered += found
        total += count
    return discovered / total


def main() -> None:
    speeds = PedestrianSpeedModel()
    cycle = crossing_time_seconds(COVERAGE_DIAMETER_M, speeds.mean_walking_speed_mps)
    print(
        f"building parameters: {COVERAGE_DIAMETER_M:.0f} m piconets, "
        f"mean walking speed {speeds.mean_walking_speed_mps:.1f} m/s"
    )
    print(f"=> a crossing user is in coverage for {cycle:.1f} s; the inquiry")
    print("   window must fit inside that crossing => cycle length =",
          f"{cycle:.1f} s\n")

    rows = []
    for window in CANDIDATE_WINDOWS_S:
        coverage = measure_coverage(window)
        policy = MasterSchedulingPolicy(
            inquiry_window_seconds=window, operational_cycle_seconds=cycle
        )
        rows.append(
            [
                f"{window:.2f}s",
                f"{coverage * 100:.1f}%",
                f"{policy.tracking_load * 100:.1f}%",
                f"{policy.serving_window_seconds:.1f}s",
                "yes" if policy.covers_full_dwell() else "no",
            ]
        )
    print(
        render_table(
            ["inquiry window", f"discovered ({EXPECTED_OCCUPANCY} slaves)",
             "tracking load", "serving time", ">= 1 train dwell"],
            rows,
            title="Inquiry-window sweep (slot-level baseband simulation)",
        )
    )

    recommended = MasterSchedulingPolicy.from_building_parameters(
        coverage_diameter_m=COVERAGE_DIAMETER_M,
        mean_walking_speed_mps=speeds.mean_walking_speed_mps,
    )
    print(f"\nrecommendation (the paper's §5 policy): {recommended.describe()}")
    print("rationale: 2.56 s guarantees the same-train half; +1.28 s catches")
    print("~90% of the other train; longer windows buy little but cost")
    print("serving time for connected slaves.")


if __name__ == "__main__":
    main()
