#!/usr/bin/env python3
"""Operations drill on a multi-storey deployment.

A two-floor department with stairwell connectivity, users on both
floors, everything enabled (enrolment, interference, soft-state
refresh) — then a workstation crash and recovery, watched through the
admin telemetry:

    python examples/multi_floor_ops.py
"""

from __future__ import annotations

from repro import BIPSConfig, BIPSSimulation
from repro.analysis.tables import render_table
from repro.building import multi_floor_department


def print_health(sim: BIPSSimulation, rooms_of_interest: list[str]) -> None:
    """Admin-console view for a few rooms."""
    snapshots = {snap.room_id: snap for snap in sim.system_snapshot()}
    rows = []
    for room_id in rooms_of_interest:
        snap = snapshots[room_id]
        rows.append(
            [
                room_id,
                "DOWN" if snap.failed else "up",
                snap.present_count,
                snap.piconet_active,
                snap.windows_evaluated,
                snap.updates_sent,
            ]
        )
    print(
        render_table(
            ["room", "status", "present", "connected", "windows", "deltas"],
            rows,
            title=f"workstation health @ t={sim.kernel.now_seconds:.0f}s",
        )
    )


def main() -> None:
    sim = BIPSSimulation(
        plan=multi_floor_department(2),
        config=BIPSConfig(
            seed=1234,
            enroll_users=True,
            model_interference=True,
            refresh_interval_cycles=4,
        ),
    )

    sim.add_user("u-ga", "Giulia")
    sim.add_user("u-ma", "Marco")
    sim.add_user("u-te", "Teresa")
    for userid in ("u-ga", "u-ma", "u-te"):
        sim.login(userid)

    # Giulia works upstairs, Marco downstairs, Teresa moves between.
    sim.follow_route("u-ga", ["f1/office-1"])
    sim.follow_route("u-ma", ["f0/lab-2"])
    sim.follow_route(
        "u-te",
        ["f0/library", "f0/corridor-w", "f1/corridor-w", "f1/corridor-e", "f1/seminar"],
    )

    watch = ["f0/lab-2", "f0/corridor-w", "f1/corridor-w", "f1/office-1", "f1/seminar"]

    sim.run(until_seconds=240.0)
    print_health(sim, watch)

    # Cross-floor navigation: Marco asks how to reach Giulia.
    path = sim.server.navigate("u-ma", "Giulia")
    print(f"\nMarco -> Giulia: {path.describe() if path else 'unknown'}")

    # Ops drill: the upstairs corridor workstation dies for two minutes.
    print("\n*** f1/corridor-w workstation crashes ***")
    sim.fail_workstation("f1/corridor-w")
    sim.run(until_seconds=360.0)
    print_health(sim, watch)

    print("\n*** recovered ***")
    sim.recover_workstation("f1/corridor-w")
    sim.run(until_seconds=480.0)
    print_health(sim, watch)

    print()
    print(sim.tracking_report().describe())
    if sim.band is not None:
        checks = sim.band.stats.checks
        corrupted = sim.band.stats.corrupted
        rate = corrupted / checks * 100 if checks else 0.0
        print(
            f"\ninterference: {corrupted}/{checks} responses corrupted "
            f"({rate:.2f}%, model: 1/79 per active neighbouring piconet)"
        )


if __name__ == "__main__":
    main()
