#!/usr/bin/env python3
"""Quickstart: deploy BIPS, track two users, and answer the paper's query.

Runs the complete stack — floor plan, per-room workstation masters on
the §5 duty cycle, the simulated LAN, the central server — then asks
the question BIPS was built for: *where is my colleague, and what is
the shortest path to them?*

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import BIPSSimulation


def main() -> None:
    # 1. Deploy: the default plan is one floor of an academic department
    #    with a BIPS workstation (Bluetooth master) in every room.
    sim = BIPSSimulation()
    print(f"deployed {len(sim.workstations)} workstations:")
    print(f"  policy: {sim.config.policy.describe()}")

    # 2. Register users (the paper's off-line procedure) and log them in
    #    (binding userid <-> the handheld's BD_ADDR).
    sim.add_user("u-alice", "Alice")
    sim.add_user("u-bob", "Bob")
    sim.login("u-alice")
    sim.login("u-bob")
    print(f"  Alice's handheld: {sim.user('u-alice').device.address}")

    # 3. Movement: Alice walks to the seminar room; Bob stays in the lab.
    sim.follow_route("u-alice", ["lab-1", "corridor-w", "corridor-e", "seminar"])
    sim.follow_route("u-bob", ["lab-2"])

    # 4. Run ten simulated minutes of tracking.
    sim.run(until_seconds=600.0)

    # 5. The spatio-temporal query of §2: "Select the target actual
    #    piconet of the mobile device ... associated with the given
    #    user name" — plus the Dijkstra path to walk there.
    alice_room = sim.server.locate("u-bob", "Alice")
    print(f"\nBob asks: where is Alice?  ->  {alice_room}")

    path = sim.server.navigate("u-bob", "Alice")
    if path is not None:
        print(f"Bob's display shows: {path.describe()}")

    # 6. How well did the tracking work against ground truth?
    print()
    print(sim.tracking_report().describe())
    print(f"\nLAN traffic: {sim.lan.stats.sent} messages "
          f"({sim.lan.stats.by_type})")


if __name__ == "__main__":
    main()
