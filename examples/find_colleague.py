#!/usr/bin/env python3
"""Find-a-colleague: the paper's motivating scenario, over the real LAN path.

A visitor arrives at the department to meet Professor Rossi.  Everything
happens through LAN messages — login requests, location queries, path
queries — exactly as the handheld would do it, including an access-
control denial: the professor has restricted who may locate him.

    python examples/find_colleague.py
"""

from __future__ import annotations

from repro import BIPSSimulation, VisibilityPolicy
from repro.lan.messages import LocationResponse, PathResponse


def main() -> None:
    sim = BIPSSimulation()

    # Off-line registration with access rights (§2): the professor can
    # only be located by his PhD student, not by arbitrary visitors.
    sim.add_user(
        "u-rossi",
        "Prof. Rossi",
        policy=VisibilityPolicy.LISTED,
        allowed_queriers={"u-student"},
    )
    sim.add_user("u-student", "PhD Student")
    sim.add_user("u-visitor", "Visitor")
    for userid in ("u-rossi", "u-student", "u-visitor"):
        sim.login(userid)

    # The professor wanders between his office and the seminar room;
    # the others start at the entrance (the library).
    sim.follow_route("u-rossi", ["office-3", "corridor-e", "seminar"])
    sim.follow_route("u-student", ["library"])
    sim.follow_route("u-visitor", ["lounge"])

    sim.run(until_seconds=420.0)

    # The visitor tries first — and is denied by the access rights.
    sim.query_location_via_lan("u-visitor", "Prof. Rossi")
    sim.run(until_seconds=421.0)
    response = next(
        m for m in sim.user("u-visitor").inbox if isinstance(m, LocationResponse)
    )
    print(f"Visitor asks for Prof. Rossi -> ok={response.ok} ({response.reason})")

    # The student asks for the full navigation answer.
    sim.query_path_via_lan("u-student", "Prof. Rossi")
    sim.run(until_seconds=422.0)
    path = next(
        m for m in sim.user("u-student").inbox if isinstance(m, PathResponse)
    )
    if path.ok:
        print("Student asks for Prof. Rossi ->")
        print(f"  walk: {' -> '.join(path.rooms)}")
        print(f"  distance: {path.total_distance_m:.1f} m")
    else:
        print(f"Student's query failed: {path.reason}")

    # Query-engine accounting on the server side.
    stats = sim.server.queries.stats
    print(
        f"\nserver stats: {stats.location_queries} location queries "
        f"({stats.location_denied} denied), {stats.path_queries} path queries"
    )
    print(f"denials by type: {stats.by_error}")


if __name__ == "__main__":
    main()
