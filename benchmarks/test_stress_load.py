"""Stress/perf-regression bench: a loaded building for 20 simulated minutes.

Guards two envelopes at once:

* **correctness under load** — 20 users over 12 rooms keep tracking
  quality in the expected band, piconets saturate gracefully at the
  7-slave limit, and the LAN stays delta-quiet;
* **simulator performance** — the pytest-benchmark timing is the
  regression guard for the event-driven baseband (this run simulates
  1 200 s of 12 piconets in a few wall-clock seconds).
"""

from __future__ import annotations

from conftest import save_result

from repro.analysis.tables import render_table
from repro.building.layouts import academic_department
from repro.core.config import BIPSConfig
from repro.core.simulation import BIPSSimulation


def _run_stress():
    sim = BIPSSimulation(
        plan=academic_department(),
        config=BIPSConfig(seed=808, enroll_users=True),
    )
    rng = sim.rng.child("stress")
    rooms = sim.plan.room_ids()
    user_count = 20
    for index in range(user_count):
        userid = f"u-{index:02d}"
        sim.add_user(userid, f"U{index:02d}")
        sim.login(userid)
        sim.walk(userid, start_room=rng.choice(rooms), hops=8,
                 start_at_seconds=rng.uniform(0.0, 120.0))
    sim.run(until_seconds=1200.0)
    return sim


def test_stress_twenty_users(benchmark):
    sim = benchmark.pedantic(_run_stress, rounds=1, iterations=1)
    report = sim.tracking_report()

    save_result(
        "stress_load",
        render_table(
            ["metric", "value"],
            [
                ["users", len(report.users)],
                ["mean accuracy", f"{report.mean_accuracy * 100:.1f}%"],
                ["p90 detection latency",
                 f"{report.latency_percentile(90):.1f}s"],
                ["presence deltas", sim.server.presence_updates_received],
                ["kernel events", sim.kernel.events_fired],
                ["enrolled total",
                 sum(ws.enrolled for ws in sim.workstations.values())],
            ],
            title="Stress run: 20 users, 12 rooms, 1200 s",
        ),
    )

    assert len(report.users) == 20
    assert report.mean_accuracy > 0.75
    # Detection latency stays bounded by the duty cycle even under load.
    assert report.latency_percentile(90) < 2.5 * 15.4
    # Delta reporting: the LAN carries a few messages per user-minute.
    per_user_minute = sim.server.presence_updates_received / (20 * 20.0)
    assert per_user_minute < 3.0
    # Enrolment ran and respected the per-piconet limit.
    assert sum(ws.enrolled for ws in sim.workstations.values()) >= 20
    for workstation in sim.workstations.values():
        assert workstation.piconet.active_count <= 7
