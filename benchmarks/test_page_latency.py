"""Benchmark `page-latency`: connection setup on the slot-level pager.

Extension experiment for §3.2 (the paper measures only discovery).
Guards the physics the page machinery must produce:

* with a fresh clock estimate the master hits the slave's next
  page-scan window: mean latency well under one 1.28 s scan interval;
* staleness degrades gracefully — a scrambled estimate picks the wrong
  train ~50 % of the time and pays ~half a train dwell, never failing;
* everything connects within the 10.24 s HCI timeout.
"""

from __future__ import annotations

from conftest import save_result

from repro.experiments.page_latency import PageLatencyConfig, run_page_latency


def _run_full():
    result = run_page_latency(PageLatencyConfig(samples_per_case=300))
    save_result("page_latency", result.render())
    return result


def test_page_latency(benchmark):
    result = benchmark.pedantic(_run_full, rounds=1, iterations=1)

    fresh = result.case_for(0.0)
    half_flip = result.case_for(8.5)
    full_flip = result.case_for(17.5)

    # Everything connects within the 10.24 s timeout.
    for case in result.cases:
        assert case.timeouts == 0

    # Fresh estimate: correct train prediction, fast rendezvous.
    assert fresh.wrong_train_fraction < 0.15
    assert fresh.latency.mean < 1.28

    # An 8-period shift flips the predicted train for ~half the phase
    # positions; a 17-period shift for nearly all of them.
    assert 0.3 <= half_flip.wrong_train_fraction <= 0.7
    assert full_flip.wrong_train_fraction > 0.8

    # Wrong trains cost latency, bounded by about two scan intervals
    # plus a dwell.
    assert full_flip.latency.mean > fresh.latency.mean
    assert full_flip.latency.maximum < 4.0
    assert half_flip.latency.maximum < 4.5
