"""Ablation: BIPS under a lossy LAN, with and without soft-state refresh.

The paper's delta-only reporting (§2) assumes the office Ethernet never
drops a message.  This bench measures what loss does to end-to-end
tracking accuracy and how much the reproduction's soft-state refresh
(presence re-assertion every N cycles) buys back — the classic
hard-state-vs-soft-state trade.
"""

from __future__ import annotations

from conftest import save_result

from repro.analysis.tables import render_table
from repro.experiments.e2e import E2EConfig, run_e2e


SEEDS = range(600, 608)


def _one_run(loss: float, refresh: int, seed: int) -> tuple[float, float]:
    """Returns (mean accuracy, fraction of users correctly attributed
    at the end of the run)."""
    from repro.building.layouts import academic_department
    from repro.core.config import BIPSConfig
    from repro.core.simulation import BIPSSimulation

    sim = BIPSSimulation(
        plan=academic_department(),
        config=BIPSConfig(
            seed=seed,
            lan_loss_probability=loss,
            refresh_interval_cycles=refresh,
        ),
    )
    rooms = sim.plan.room_ids()
    rng = sim.rng.child("loss-ablation")
    user_count = 6
    for index in range(user_count):
        userid = f"u-{index}"
        sim.add_user(userid, f"U{index}")
        sim.login(userid)
        sim.walk(userid, start_room=rng.choice(rooms), hops=4,
                 start_at_seconds=rng.uniform(0.0, 30.0))
    sim.run(until_seconds=500.0)
    correct_at_end = 0
    for index in range(user_count):
        user = sim.user(f"u-{index}")
        truth = user.timeline.room_at(sim.kernel.now - 1)
        belief = sim.server.location_db.current_room(user.device.address)
        if truth == belief:
            correct_at_end += 1
    return sim.tracking_report().mean_accuracy, correct_at_end / user_count


def _cell(loss: float, refresh: int) -> tuple[float, float]:
    accuracies, finals = [], []
    for seed in SEEDS:
        accuracy, final = _one_run(loss, refresh, seed)
        accuracies.append(accuracy)
        finals.append(final)
    return sum(accuracies) / len(accuracies), sum(finals) / len(finals)


def _run_grid():
    grid = {}
    for loss in (0.0, 0.3):
        for refresh in (0, 4):
            grid[(loss, refresh)] = _cell(loss, refresh)
    rows = []
    for loss in (0.0, 0.3):
        for refresh in (0, 4):
            accuracy, final = grid[(loss, refresh)]
            rows.append(
                [
                    f"{loss:.0%}",
                    "delta only" if refresh == 0 else "refresh/4 cycles",
                    f"{accuracy * 100:.1f}%",
                    f"{final * 100:.1f}%",
                ]
            )
    save_result(
        "ablation_lan_loss",
        render_table(
            ["LAN loss", "reporting", "mean accuracy", "correct at end"],
            rows,
            title=(
                "Tracking vs LAN loss, 8 seeds x 6 walking users, 500 s "
                "(soft-state refresh heals stranded attributions)"
            ),
        ),
    )
    return grid


def test_lan_loss_and_refresh(benchmark):
    grid = benchmark.pedantic(_run_grid, rounds=1, iterations=1)

    # Lossless: both configurations track well.
    assert grid[(0.0, 0)][0] > 0.80
    assert grid[(0.0, 4)][0] > 0.80

    # Loss hurts pure delta reporting.
    assert grid[(0.3, 0)][0] < grid[(0.0, 0)][0]

    # Soft-state refresh wins where it should: devices stranded with a
    # wrong final attribution are healed within a refresh period.
    assert grid[(0.3, 4)][1] > grid[(0.3, 0)][1]
    assert grid[(0.3, 4)][1] > 0.9
    # ...and does not hurt overall accuracy.
    assert grid[(0.3, 4)][0] >= grid[(0.3, 0)][0] - 0.02


def test_e2e_with_loss_smoke(benchmark):
    result = benchmark.pedantic(
        lambda: run_e2e(
            E2EConfig(user_count=5, duration_seconds=400.0, lan_loss_probability=0.1)
        ),
        rounds=1,
        iterations=1,
    )
    assert result.lan_dropped > 0
    assert result.report.mean_accuracy > 0.5
