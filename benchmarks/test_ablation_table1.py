"""Ablations on the Table-1 modelling choices (DESIGN.md §5, items 1/2/6).

Shows how each choice moves the discovery-time table, and guards the
directions the Bluetooth timing arithmetic predicts.
"""

from __future__ import annotations

from conftest import save_result

from repro.experiments.sweep import (
    sweep_table1_backoff_reentry,
    sweep_table1_phase_mode,
    sweep_table1_scan_interleaving,
)


def test_ablation_phase_mode(benchmark):
    sweep = benchmark.pedantic(
        lambda: sweep_table1_phase_mode(trials=300), rounds=1, iterations=1
    )
    save_result("ablation_table1_phase_mode", sweep.render())
    fixed = sweep.row("fixed")
    sequence = sweep.row("sequence")
    # Both modes preserve the headline shape: same < mixed < different.
    for row in (fixed, sequence):
        assert row.values[0] < row.values[2] < row.values[1]
    # The walking phase leaks train membership across a trial, which can
    # only blur the classification: the same-train mean rises.
    assert sequence.values[0] >= fixed.values[0] - 0.15


def test_ablation_backoff_reentry(benchmark):
    sweep = benchmark.pedantic(
        lambda: sweep_table1_backoff_reentry(trials=300), rounds=1, iterations=1
    )
    save_result("ablation_table1_backoff_reentry", sweep.render())
    immediate = sweep.row("immediate")
    next_window = sweep.row("next_window")
    # Waiting for the next scheduled scan window after the backoff adds
    # up to a full 2.56 s interval to every discovery.
    assert next_window.values[0] > immediate.values[0] + 0.5
    assert next_window.values[1] > immediate.values[1] + 0.5


def test_ablation_scan_interleaving(benchmark):
    sweep = benchmark.pedantic(
        lambda: sweep_table1_scan_interleaving(trials=300), rounds=1, iterations=1
    )
    save_result("ablation_table1_scan_interleaving", sweep.render())
    interleaved = sweep.row("inquiry+page scan (paper)")
    pure = sweep.row("inquiry scan only")
    # Halving the inquiry-scan rate (to make room for page scan) costs
    # about half a scan interval on the same-train mean.
    assert interleaved.values[0] > pure.values[0] + 0.3
    # The paper's own observation: an interleaved slave is still "close
    # to the results obtained in the case in which the slave is
    # continuously listening" — within roughly a second.
    assert interleaved.values[0] - pure.values[0] < 1.5
