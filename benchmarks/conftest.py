"""Shared helpers for the benchmark suite.

Every experiment bench writes its rendered output (the reproduced table
or figure) to ``results/<name>.txt`` at the repository root, so the
regenerated artefacts are inspectable after a benchmark run.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def save_result(name: str, text: str) -> None:
    """Persist a rendered experiment result.

    ``name`` may carry its own extension (e.g. ``.csv``); plain names
    get ``.txt``.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    filename = name if "." in name else f"{name}.txt"
    (RESULTS_DIR / filename).write_text(text + "\n", encoding="utf-8")
