"""Benchmark `serving`: slave service under the §5 schedule (extension).

§5 reserves 11.56 s per cycle for "serving the slaves applications" but
never quantifies the service.  Guards the arithmetic the DM1 link model
must produce: per-slave goodput divides exactly by occupancy, a BIPS
navigation answer (500 B) reaches a full seven-slave piconet well
within one cycle, and the serving window is vastly over-provisioned for
BIPS's own traffic.
"""

from __future__ import annotations

import pytest
from conftest import save_result

from repro.experiments.serving import ServingConfig, run_serving


def _run_full():
    result = run_serving(ServingConfig())
    save_result("serving_capacity", result.render())
    return result


def test_serving_capacity(benchmark):
    result = benchmark.pedantic(_run_full, rounds=1, iterations=1)

    one = result.point_for(1)
    seven = result.point_for(7)

    # Goodput divides exactly by occupancy (round-robin fairness).
    assert one.goodput_bytes_per_second == pytest.approx(
        7 * seven.goodput_bytes_per_second
    )
    # A lone slave sees ~10 kB/s of DM1 payload under the §5 schedule.
    assert 9_000 < one.goodput_bytes_per_second < 11_000

    # Every navigation answer is delivered, even at full occupancy...
    for point in result.points:
        assert point.messages_pending == 0
    # ...and within a third of a second (30 DM1 rounds x 7 slaves).
    assert seven.message_latency.maximum < 0.35

    # Latency grows linearly-ish with occupancy.
    latencies = [point.message_latency.mean for point in result.points]
    assert latencies == sorted(latencies)

    # BIPS's own traffic barely dents the serving window.
    assert seven.payload_fraction < 0.05
