"""Ablations on the Figure-2 contention mechanisms (DESIGN.md §5, item 3).

Quantifies what each mechanism — single-receiver FHS capture, enrolment,
and the response-mode reading — contributes to the "≈90 % in window 1"
behaviour the paper reports for 10 slaves.
"""

from __future__ import annotations

from conftest import save_result

from repro.experiments.sweep import sweep_figure2_contention, sweep_inquiry_window


def test_ablation_contention_mechanisms(benchmark):
    sweep = benchmark.pedantic(
        lambda: sweep_figure2_contention(replications=30), rounds=1, iterations=1
    )
    save_result("ablation_figure2_contention", sweep.render())
    full = sweep.row("full model (paper)")
    no_capture = sweep.row("no receiver capture")
    no_enrol = sweep.row("no enrolment")
    backoff_each = sweep.row("backoff after every response")

    # Columns: (n=10 by w1, n=10 by w2, n=20 by w1, n=20 by w2).
    # Receiver capture contributes real window-1 loss: removing it
    # improves discovery, but same-frequency FHS collisions (the
    # authors' BlueHoc extension) remain, so it does not reach 100 %.
    assert no_capture.values[0] > full.values[0]
    assert 0.85 <= no_capture.values[0] < 0.99

    # Re-backing-off after every response thins the air so much that
    # contention almost disappears — the alternative spec reading cannot
    # produce the paper's ≈90 % knee.
    assert backoff_each.values[0] > 0.95

    # Enrolment (discovered slaves leave inquiry scan) is what lets the
    # second window mop up the survivors.
    assert full.values[1] > no_enrol.values[1]
    assert full.values[3] > no_enrol.values[3]

    # With the full model, the second window recovers most of the gap.
    assert full.values[1] > full.values[0]
    assert full.values[3] > full.values[2]


def test_ablation_inquiry_window_knee(benchmark):
    sweep = benchmark.pedantic(
        lambda: sweep_inquiry_window(replications=40), rounds=1, iterations=1
    )
    save_result("ablation_inquiry_window", sweep.render())
    fractions = {row.label: row.values[0] for row in sweep.rows}

    # Below one train dwell, only the same-train half is reachable.
    assert fractions["1.28s"] < 0.75

    # One dwell (2.56 s) already covers the same-train half completely.
    assert fractions["2.56s"] > fractions["1.28s"]

    # The paper's 3.84 s recommendation is the knee: it buys a large
    # jump over 2.56 s...
    assert fractions["3.84s"] > fractions["2.56s"] + 0.1

    # ...while doubling beyond it (10.24 s) buys comparatively little.
    assert fractions["10.24s"] - fractions["3.84s"] < 0.15

    # Monotone non-decreasing in window length (small-sample slack).
    ordered = [fractions[label] for label in
               ("1.28s", "2.56s", "3.84s", "5.12s", "7.68s", "10.24s")]
    for a, b in zip(ordered, ordered[1:]):
        assert b >= a - 0.03
