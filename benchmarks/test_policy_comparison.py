"""Benchmark `policies`: alternative master schedules at equal budget.

Validates the §5 design end to end: of the ways to spend a ≈25 %
tracking budget, the paper's 3.84 s-per-15.4 s window is the sweet
spot —

* halving the window (1.92 s < one 2.56 s train dwell) can never catch
  the other-train half of the users in one window, so presence flaps
  and accuracy collapses;
* doubling the window halves the evaluation cadence and roughly doubles
  detection latency;
* a fully dedicated (continuous-inquiry) master buys almost nothing
  over the paper's schedule while leaving zero time to serve slaves.
"""

from __future__ import annotations

from conftest import save_result

from repro.experiments.policies import PolicyComparisonConfig, run_policy_comparison


def _run_full():
    result = run_policy_comparison(PolicyComparisonConfig())
    save_result("policy_comparison", result.render())
    return result


def test_policy_comparison(benchmark):
    result = benchmark.pedantic(_run_full, rounds=1, iterations=1)
    paper = result.outcome_for("paper 3.84/15.4")
    split = result.outcome_for("split 1.92/7.7")
    double = result.outcome_for("double 7.68/30.8")
    continuous = result.outcome_for("continuous")

    # Everyone detects essentially all transitions (dwells >> cycles).
    for outcome in result.outcomes:
        assert outcome.detection_rate > 0.9

    # The sub-dwell window flaps: clearly worst accuracy.
    assert split.mean_accuracy < paper.mean_accuracy - 0.1

    # The double-length cycle pays in detection latency.
    assert (
        double.mean_detection_latency_seconds
        > paper.mean_detection_latency_seconds * 1.3
    )

    # Dedicating the whole radio buys no meaningful accuracy over the
    # paper's schedule (and costs all serving time).
    assert continuous.mean_accuracy <= paper.mean_accuracy + 0.03

    # The paper's policy is on the accuracy Pareto front of the set.
    assert paper.mean_accuracy >= max(
        o.mean_accuracy for o in result.outcomes
    ) - 0.03
