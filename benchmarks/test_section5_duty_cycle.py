"""Benchmark `section5`: regenerates the scheduling-policy numbers of §5.

Paper reference: a 3.84 s inquiry window discovers ≈95 % of 20 slaves;
a walking user crosses the 20 m piconet in ≈15.4 s; the tracking load is
≈24 % of the operational cycle.

The paper's 95 % is an analytical projection (50 % same-train fully
discovered + 90 % of the other train) that ignores response contention;
the full simulation with FHS collisions and receiver capture lands in
the high 80s, and the contention-free ablation
(`test_ablation_figure2.py`) brackets it from above at ≈99 %.
"""

from __future__ import annotations

from conftest import save_result

from repro.experiments.duty_cycle import (
    PAPER_REFERENCE,
    Section5Config,
    run_section5,
)


def _run_full():
    result = run_section5(Section5Config(replications=100))
    save_result("section5_duty_cycle", result.render())
    return result


def test_section5_reproduction(benchmark):
    result = benchmark.pedantic(_run_full, rounds=1, iterations=1)

    # Crossing time: 20 m / 1.3 m/s — matches to three digits.
    assert abs(result.crossing_seconds - PAPER_REFERENCE["crossing_seconds"]) < 0.05

    # Tracking load ≈ 24 %.
    assert 0.23 <= result.tracking_load <= 0.26

    # Discovery fraction: clearly above the one-train bound (~50 %+ε)
    # and within 15 % of the paper's analytic 95 %.
    fraction = result.discovered_fraction
    assert 0.80 <= fraction <= 1.0
    assert abs(fraction - PAPER_REFERENCE["discovered_fraction"]) < 0.15

    # Statistical quality: the Wilson interval is tight at n = 2000.
    low, high = result.discovered_ci95
    assert high - low < 0.05
