"""Ablation: coverage overlap vs the room-granule location model.

BIPS assumes one device is heard by exactly one workstation (§2's room
granule).  Real 10 m coverage discs spill past walls; this bench
measures how tracking degrades when a device near a boundary also
answers a neighbouring piconet for a growing fraction of each dwell,
and that the server's invalidation machinery keeps the database from
deadlocking on double claims.
"""

from __future__ import annotations

from conftest import save_result

from repro.analysis.tables import render_table
from repro.building.layouts import academic_department
from repro.core.config import BIPSConfig
from repro.core.simulation import BIPSSimulation

SEEDS = (700, 701, 702, 703)
FRACTIONS = (0.0, 0.1, 0.2, 0.3)


def _one_run(fraction: float, seed: int) -> tuple[float, int]:
    sim = BIPSSimulation(
        plan=academic_department(),
        config=BIPSConfig(seed=seed, coverage_overlap_fraction=fraction),
    )
    rng = sim.rng.child("overlap-ablation")
    rooms = sim.plan.room_ids()
    for index in range(5):
        userid = f"u-{index}"
        sim.add_user(userid, f"U{index}")
        sim.login(userid)
        sim.walk(userid, start_room=rng.choice(rooms), hops=4,
                 start_at_seconds=rng.uniform(0.0, 30.0))
    sim.run(until_seconds=500.0)
    return sim.tracking_report().mean_accuracy, sim.server.invalidations_sent


def _run_grid():
    grid = {}
    for fraction in FRACTIONS:
        accuracies = []
        invalidations = []
        for seed in SEEDS:
            accuracy, sent = _one_run(fraction, seed)
            accuracies.append(accuracy)
            invalidations.append(sent)
        grid[fraction] = (
            sum(accuracies) / len(accuracies),
            sum(invalidations) / len(invalidations),
        )
    save_result(
        "ablation_coverage_overlap",
        render_table(
            ["overlap fraction", "mean accuracy", "invalidations/run"],
            [
                [f"{fraction:.0%}", f"{grid[fraction][0] * 100:.1f}%",
                 f"{grid[fraction][1]:.1f}"]
                for fraction in FRACTIONS
            ],
            title=(
                "Coverage spill vs tracking accuracy "
                "(4 seeds x 5 walking users, 500 s)"
            ),
        ),
    )
    return grid


def test_coverage_overlap_degrades_gracefully(benchmark):
    grid = benchmark.pedantic(_run_grid, rounds=1, iterations=1)

    # The idealised radio tracks well.
    assert grid[0.0][0] > 0.85

    # Accuracy decreases with spill, but degrades — never collapses.
    accuracies = [grid[f][0] for f in FRACTIONS]
    assert accuracies[-1] < accuracies[0]
    assert accuracies[-1] > 0.55

    # Double claims exercise the invalidation machinery increasingly.
    invalidations = [grid[f][1] for f in FRACTIONS]
    assert invalidations[-1] > invalidations[0]
