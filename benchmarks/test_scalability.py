"""Benchmark `scalability`: server load vs building size.

Guards the §2 architecture claim: with delta reporting, the central
server's presence traffic is driven by user movement, not by how many
workstations are deployed.
"""

from __future__ import annotations

from conftest import save_result

from repro.experiments.scalability import ScalabilityConfig, run_scalability


def _run_full():
    result = run_scalability(ScalabilityConfig())
    save_result("scalability", result.render())
    return result


def test_scaling_with_building_size(benchmark):
    result = benchmark.pedantic(_run_full, rounds=1, iterations=1)
    smallest = result.point_for(4)
    largest = result.point_for(32)

    # Presence traffic tracks movement (same users, same walks): an 8x
    # larger deployment must not inflate deltas by more than ~2x (walks
    # on a bigger graph can differ a bit).
    assert largest.presence_updates <= 2.5 * max(1, smallest.presence_updates)

    # Total LAN messages grow only by the per-workstation hello and the
    # spread of walks, far below proportionally.
    assert largest.lan_messages < smallest.lan_messages + 3 * (32 - 4) + 100

    # Tracking quality is independent of deployment size.
    for point in result.points:
        assert point.mean_accuracy > 0.75

    # Idle workstations are cheap: per-room event cost must not grow
    # with deployment size (it in fact shrinks, since walkers cover a
    # smaller fraction of rooms).
    assert largest.events_per_room <= smallest.events_per_room
