"""Benchmark `figure2`: regenerates Figure 2 (discovery probability vs time).

Paper reference (BlueHoc/ns-2 simulation, 1 s inquiry per 5 s cycle,
train A only, 2-20 slaves):

* ≤10 slaves: ≈90 % discovered within the first 1 s inquiry window;
* 100 % within the second operational cycle;
* 15-20 slaves: all discovered within two cycles;
* curves ordered by population (more slaves → slower).
"""

from __future__ import annotations

from conftest import save_result

from repro.experiments.figure2 import Figure2Config, run_figure2


def _run_full():
    result = run_figure2(Figure2Config(replications=60))
    save_result("figure2_discovery_probability", result.render())
    save_result("figure2_discovery_probability.csv", result.to_csv())
    return result


def test_figure2_reproduction(benchmark):
    result = benchmark.pedantic(_run_full, rounds=1, iterations=1)
    window = result.config.inquiry_window_seconds  # 1 s
    second_cycle = result.config.cycle_period_seconds + window  # 6 s

    by_window1 = {c.slave_count: c.probability_by(window) for c in result.curves}
    by_window2 = {c.slave_count: c.probability_by(second_cycle) for c in result.curves}

    # Curves are ordered: each larger population discovers no faster in
    # window 1 (allowing small-sample noise of a few percent).
    counts = sorted(by_window1)
    for smaller, larger in zip(counts, counts[1:]):
        assert by_window1[larger] <= by_window1[smaller] + 0.05

    # Small populations essentially complete within the first window.
    assert by_window1[2] > 0.90

    # 10 slaves: "about 90 %" in the first second (band: 75-97 %),
    # and (nearly) everything by the second cycle.
    assert 0.75 <= by_window1[10] <= 0.97
    assert by_window2[10] > 0.95

    # 15-20 slaves: clearly contended in window 1, (nearly) all within
    # two cycles.
    assert by_window1[20] < by_window1[2]
    assert by_window2[15] > 0.90
    assert by_window2[20] > 0.88

    # Between windows the master serves connections: curves are flat.
    for curve in result.curves:
        assert curve.probability_by(4.9) == curve.probability_by(1.05)

    # Contention artefacts exist and grow with population.
    assert result.curve_for(20).collisions > result.curve_for(2).collisions
    assert result.curve_for(20).blocked_responses > 0
