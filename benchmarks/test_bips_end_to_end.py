"""Benchmark `bips-e2e`: the full BIPS system under walking users.

The paper publishes no end-to-end table; this bench records the numbers
its §2/§5 design implies and guards them as the reproduction's own
reference:

* detection latency bounded by about one operational cycle (15.4 s);
* tracking accuracy well above chance at room granularity;
* LAN load: presence *deltas* only — a handful of messages per
  user-minute, which is the point of the delta-reporting design.
"""

from __future__ import annotations

from conftest import save_result

from repro.experiments.e2e import E2EConfig, run_e2e


def _run_full():
    result = run_e2e(E2EConfig(user_count=8, hops_per_user=6, duration_seconds=600.0))
    save_result("bips_end_to_end", result.render())
    return result


def test_end_to_end_tracking(benchmark):
    result = benchmark.pedantic(_run_full, rounds=1, iterations=1)
    report = result.report

    # The system tracks everyone who walked.
    assert len(report.users) == 8

    # Room-granule accuracy: the DB matches ground truth most of the time.
    assert report.mean_accuracy > 0.75

    # Detection latency: bounded by ~one cycle (+ stagger slack).
    latency = report.mean_detection_latency_seconds
    assert latency is not None
    assert latency < 15.4 * 1.5

    # Nearly all room transitions are noticed.
    detection_rates = [u.detection_rate for u in report.users]
    assert sum(detection_rates) / len(detection_rates) > 0.8

    # Delta reporting keeps the LAN quiet: a few updates per user-minute.
    assert 0.2 <= result.updates_per_user_minute <= 6.0
    assert result.lan_dropped == 0

    # The query path works end to end after tracking has settled.
    assert result.queries_ok >= result.queries_total * 0.5
