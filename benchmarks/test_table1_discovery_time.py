"""Benchmark `table1`: regenerates the §4.1 device-discovery-time table.

Paper reference (500 hardware trials):

    Same       236 cases   1.6028 s
    Different  264 cases   4.1320 s
    Mixed      500 cases   2.865 s

We assert the reproduction *shape*: same-train discovery clearly faster,
the different-train penalty equal to roughly one 2.56 s train dwell,
the mixed mean the ~50/50 blend, and every magnitude within a generous
band of the paper's value (our substrate is a simulator, not the
authors' 3COM/TI cards — see EXPERIMENTS.md for the full discussion).
"""

from __future__ import annotations

from conftest import save_result

from repro.experiments.table1 import PAPER_REFERENCE, Table1Config, run_table1


def _run_full():
    result = run_table1(Table1Config(trials=500))
    save_result("table1_discovery_time", result.render())
    save_result("table1_discovery_cdf", result.render_cdf())
    save_result("table1_trials.csv", result.to_csv())
    return result


def test_table1_reproduction(benchmark):
    result = benchmark.pedantic(_run_full, rounds=1, iterations=1)

    same = result.same_summary
    different = result.different_summary
    mixed = result.mixed_summary

    # Every trial discovers the slave (the paper's setup always does).
    assert result.undiscovered == 0

    # ~50 % probability of starting on the same train.
    assert 0.40 <= same.count / 500 <= 0.60

    # Shape: same < mixed < different.
    assert same.mean < mixed.mean < different.mean

    # The different-train penalty is about one train dwell (2.56 s).
    gap = different.mean - same.mean
    assert 2.0 <= gap <= 3.2

    # Magnitudes near the paper's measurements (±35 %).
    assert abs(same.mean - PAPER_REFERENCE["same"]) / PAPER_REFERENCE["same"] < 0.35
    assert (
        abs(different.mean - PAPER_REFERENCE["different"])
        / PAPER_REFERENCE["different"]
        < 0.35
    )
    assert abs(mixed.mean - PAPER_REFERENCE["mixed"]) / PAPER_REFERENCE["mixed"] < 0.35

    # The mixed mean is the case-weighted blend of the two populations.
    blend = (
        same.mean * same.count + different.mean * different.count
    ) / (same.count + different.count)
    assert abs(mixed.mean - blend) < 1e-9

    # Distribution shape: the same-train CDF stochastically dominates
    # the different-train CDF (discovery is never slower same-train).
    same_cdf = result.cdf(True)
    different_cdf = result.cdf(False)
    for t in (0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
        assert same_cdf.value(t) >= different_cdf.value(t)
    # Nearly nobody on the other train is found before the first train
    # switch at 2.56 s, while most same-train slaves already are.
    assert different_cdf.value(2.5) < 0.1
    assert same_cdf.value(2.5) > 0.6
