"""Microbenchmarks of the load-bearing primitives.

These are classic pytest-benchmark timing runs (many iterations) — they
guard the performance envelope that keeps the experiment harnesses fast:
the O(1) hopping inverse lookup, kernel event throughput, Dijkstra
all-pairs precomputation, and location-database updates.
"""

from __future__ import annotations

from repro.bluetooth.address import BDAddr
from repro.bluetooth.hopping import Train, TrainStrategy, continuous_inquiry, periodic_inquiry
from repro.building.layouts import academic_department
from repro.core.location_db import LocationDatabase
from repro.core.pathfinding import AllPairsPaths, Graph
from repro.sim.kernel import Kernel


def test_next_tx_lookup_speed(benchmark):
    schedule = periodic_inquiry(
        window_ticks=12288, period_ticks=49280, strategy=TrainStrategy.ALTERNATE
    )

    def lookup():
        total = 0
        for position in range(32):
            tick = schedule.next_tx_of_position(position, 100_000, 1_000_000)
            if tick is not None:
                total += tick
        return total

    assert benchmark(lookup) > 0


def test_kernel_event_throughput(benchmark):
    def churn():
        kernel = Kernel()
        count = 10_000
        fired = []
        for i in range(count):
            kernel.schedule_at(i, lambda: fired.append(None))
        kernel.run_until(count)
        return len(fired)

    assert benchmark(churn) == 10_000


def test_all_pairs_precomputation(benchmark):
    plan = academic_department()

    def precompute():
        return AllPairsPaths.from_floorplan(plan)

    all_pairs = benchmark(precompute)
    assert all_pairs.diameter() > 0


def test_path_lookup_is_table_lookup(benchmark):
    all_pairs = AllPairsPaths.from_floorplan(academic_department())

    def lookup():
        return all_pairs.path("lab-1", "lounge")

    result = benchmark(lookup)
    assert result is not None and result.total_distance_m > 0


def test_dijkstra_single_source(benchmark):
    graph = Graph.from_floorplan(academic_department())

    def run():
        distance, _ = graph.dijkstra("lab-1")
        return len(distance)

    assert benchmark(run) == 12


def test_location_db_update_rate(benchmark):
    def churn():
        db = LocationDatabase(history_limit=100)
        rooms = ["a", "b", "c"]
        for i in range(3000):
            db.apply_presence(BDAddr(i % 50), rooms[i % 3], i, "ws")
        return db.tracked_count

    assert benchmark(churn) == 50


def test_continuous_inquiry_train_at(benchmark):
    schedule = continuous_inquiry(start_train=Train.A)

    def probe():
        hits = 0
        for tick in range(0, 200_000, 997):
            if schedule.train_at(tick) is Train.A:
                hits += 1
        return hits

    assert benchmark(probe) > 0
