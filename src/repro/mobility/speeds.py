"""Pedestrian speed models.

The paper's assumptions (§2, §5):

* mobile users move at a *maximum* of 2 m/s;
* a user "normally walks with a speed in the range [0, 1.5] meters per
  second";
* the average *walking* (non-stationary) speed used in the §5 sizing is
  1.3 m/s — "20m : 1.3m/s" gives the 15.4 s piconet crossing time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.rng import RandomStream

#: Hard cap from §2: BIPS need not track anything faster than this.
MAX_TRACKED_SPEED_MPS = 2.0

#: The walking-speed band of §5.
WALKING_SPEED_RANGE_MPS = (0.0, 1.5)

#: The mean walking speed the paper divides by (§5).
MEAN_WALKING_SPEED_MPS = 1.3


@dataclass(frozen=True)
class PedestrianSpeedModel:
    """Draws pedestrian speeds consistent with the paper's §5 numbers.

    Users are stationary with probability ``stationary_probability``
    (standing users are explicitly in scope: BIPS tracks "mobile users
    standing or walking").  Walking speeds are uniform on
    ``[walk_low, walk_high]``, whose default (1.1..1.5 m/s) averages to
    the paper's 1.3 m/s while staying inside the [0, 1.5] band.
    """

    walk_low_mps: float = 1.1
    walk_high_mps: float = 1.5
    stationary_probability: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.walk_low_mps <= self.walk_high_mps:
            raise ValueError(
                f"invalid walking band: [{self.walk_low_mps}, {self.walk_high_mps}]"
            )
        if self.walk_high_mps > MAX_TRACKED_SPEED_MPS:
            raise ValueError(
                f"walking speed {self.walk_high_mps} exceeds the tracked "
                f"maximum {MAX_TRACKED_SPEED_MPS}"
            )
        if not 0.0 <= self.stationary_probability <= 1.0:
            raise ValueError(
                f"stationary probability out of range: {self.stationary_probability}"
            )

    @property
    def mean_walking_speed_mps(self) -> float:
        """Mean of the walking-speed distribution."""
        return (self.walk_low_mps + self.walk_high_mps) / 2.0

    def draw_speed(self, rng: RandomStream) -> float:
        """One speed sample: 0.0 when stationary, else a walking speed."""
        if self.stationary_probability and rng.random() < self.stationary_probability:
            return 0.0
        return rng.uniform(self.walk_low_mps, self.walk_high_mps)

    def draw_walking_speed(self, rng: RandomStream) -> float:
        """A strictly positive walking-speed sample."""
        return rng.uniform(self.walk_low_mps, self.walk_high_mps)
