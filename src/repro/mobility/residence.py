"""Piconet residence and crossing times.

§5 of the paper sizes the master's operational cycle from the time an
average walking user needs to cross a piconet: 20 m diameter at
1.3 m/s ≈ 15.4 s.  This module provides that calculation, a more
careful chord-based version (users rarely walk exactly through the
centre), and Monte-Carlo residence estimation for arbitrary speeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.rng import RandomStream

from .speeds import MEAN_WALKING_SPEED_MPS, PedestrianSpeedModel

#: Coverage diameter of a BIPS piconet (§5: "about 20m").
PICONET_DIAMETER_M = 20.0


def crossing_time_seconds(
    diameter_m: float = PICONET_DIAMETER_M,
    speed_mps: float = MEAN_WALKING_SPEED_MPS,
) -> float:
    """The paper's §5 estimate: diameter / mean walking speed.

    >>> round(crossing_time_seconds(), 1)
    15.4
    """
    if diameter_m <= 0:
        raise ValueError(f"diameter must be positive: {diameter_m}")
    if speed_mps <= 0:
        raise ValueError(f"speed must be positive: {speed_mps}")
    return diameter_m / speed_mps


def mean_chord_length(diameter_m: float = PICONET_DIAMETER_M) -> float:
    """Mean chord of a disc for a uniformly random straight crossing.

    A walker entering at a uniformly random boundary point in a
    uniformly random feasible direction traverses a chord whose mean
    length is (4/π)·r ≈ 0.637·d.  The paper uses the full diameter — a
    deliberate worst-case; this gives the typical case for the
    ablations.
    """
    if diameter_m <= 0:
        raise ValueError(f"diameter must be positive: {diameter_m}")
    return (4.0 / math.pi) * (diameter_m / 2.0)


@dataclass(frozen=True)
class ResidenceEstimate:
    """Monte-Carlo residence time summary (seconds)."""

    mean_seconds: float
    p10_seconds: float
    p90_seconds: float
    samples: int


def estimate_residence_time(
    rng: RandomStream,
    speed_model: PedestrianSpeedModel,
    diameter_m: float = PICONET_DIAMETER_M,
    samples: int = 10_000,
    chord_crossings: bool = False,
) -> ResidenceEstimate:
    """Monte-Carlo the time a walking user spends inside one piconet.

    Args:
        chord_crossings: sample random chords instead of assuming the
            walker crosses along the full diameter.
    """
    if samples <= 0:
        raise ValueError(f"samples must be positive: {samples}")
    radius = diameter_m / 2.0
    times = []
    for _ in range(samples):
        speed = speed_model.draw_walking_speed(rng)
        if chord_crossings:
            # A uniformly random chord via a random offset from centre.
            offset = rng.uniform(0.0, radius)
            length = 2.0 * math.sqrt(max(radius * radius - offset * offset, 0.0))
        else:
            length = diameter_m
        times.append(length / speed)
    times.sort()
    mean = sum(times) / len(times)
    p10 = times[int(0.10 * (len(times) - 1))]
    p90 = times[int(0.90 * (len(times) - 1))]
    return ResidenceEstimate(mean_seconds=mean, p10_seconds=p10, p90_seconds=p90, samples=samples)


def tracking_load_fraction(
    inquiry_window_seconds: float, operational_cycle_seconds: float
) -> float:
    """Fraction of the master's cycle spent on discovery (§5: ≈24 %)."""
    if inquiry_window_seconds < 0:
        raise ValueError(f"negative inquiry window: {inquiry_window_seconds}")
    if operational_cycle_seconds <= 0:
        raise ValueError(f"cycle must be positive: {operational_cycle_seconds}")
    if inquiry_window_seconds > operational_cycle_seconds:
        raise ValueError("inquiry window longer than the operational cycle")
    return inquiry_window_seconds / operational_cycle_seconds
