"""Pedestrian mobility: speeds, residence times, waypoint and room walks."""

from .residence import (
    PICONET_DIAMETER_M,
    ResidenceEstimate,
    crossing_time_seconds,
    estimate_residence_time,
    mean_chord_length,
    tracking_load_fraction,
)
from .speeds import (
    MAX_TRACKED_SPEED_MPS,
    MEAN_WALKING_SPEED_MPS,
    WALKING_SPEED_RANGE_MPS,
    PedestrianSpeedModel,
)
from .walker import BuildingWalker, RoomVisit, WalkTimeline
from .waypoint import RandomWaypoint, WaypointLeg

__all__ = [
    "PICONET_DIAMETER_M",
    "ResidenceEstimate",
    "crossing_time_seconds",
    "estimate_residence_time",
    "mean_chord_length",
    "tracking_load_fraction",
    "MAX_TRACKED_SPEED_MPS",
    "MEAN_WALKING_SPEED_MPS",
    "WALKING_SPEED_RANGE_MPS",
    "PedestrianSpeedModel",
    "BuildingWalker",
    "RoomVisit",
    "WalkTimeline",
    "RandomWaypoint",
    "WaypointLeg",
]
