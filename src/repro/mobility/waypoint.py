"""Random-waypoint movement inside a single room.

Models what a user does *within* a room: walk to a random point, pause,
repeat.  The BIPS location granule is the room, so intra-room movement
matters only for how long the user stays (and, in the geometric
extension studies, whether they stray near the coverage boundary).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.building.geometry import Point, Rect
from repro.sim.rng import RandomStream

from .speeds import PedestrianSpeedModel


@dataclass(frozen=True)
class WaypointLeg:
    """One leg of a random-waypoint walk."""

    start: Point
    end: Point
    speed_mps: float
    pause_seconds: float

    @property
    def travel_seconds(self) -> float:
        """Walking time for the leg (excludes the pause)."""
        if self.speed_mps <= 0:
            return 0.0
        return self.start.distance_to(self.end) / self.speed_mps

    @property
    def total_seconds(self) -> float:
        """Walking plus pausing time."""
        return self.travel_seconds + self.pause_seconds


@dataclass(frozen=True)
class RandomWaypoint:
    """Generates random-waypoint legs inside a room footprint."""

    room: Rect
    speed_model: PedestrianSpeedModel = PedestrianSpeedModel()
    pause_low_seconds: float = 2.0
    pause_high_seconds: float = 30.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.pause_low_seconds <= self.pause_high_seconds:
            raise ValueError(
                f"invalid pause band: [{self.pause_low_seconds}, {self.pause_high_seconds}]"
            )

    def legs(self, rng: RandomStream, start: Point) -> Iterator[WaypointLeg]:
        """Endless leg generator beginning at ``start``."""
        position = self.room.clamp(start)
        while True:
            target = self.room.random_point(rng)
            speed = self.speed_model.draw_walking_speed(rng)
            pause = rng.uniform(self.pause_low_seconds, self.pause_high_seconds)
            yield WaypointLeg(start=position, end=target, speed_mps=speed, pause_seconds=pause)
            position = target

    def dwell_time(self, rng: RandomStream, start: Point, legs: int) -> float:
        """Total seconds spent on the first ``legs`` legs."""
        if legs <= 0:
            raise ValueError(f"legs must be positive: {legs}")
        total = 0.0
        for index, leg in enumerate(self.legs(rng, start)):
            total += leg.total_seconds
            if index + 1 >= legs:
                break
        return total
