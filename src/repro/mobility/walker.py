"""Room-to-room walks through a building.

A :class:`BuildingWalker` produces the *room visit timeline* of one
mobile user: which room they are in, from when to when.  This is the
ground truth the BIPS tracker is measured against in the end-to-end
experiments (tracking accuracy = fraction of time the location database
agrees with the timeline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.building.floorplan import FloorPlan
from repro.sim.clock import ticks_from_seconds
from repro.sim.rng import RandomStream

from .speeds import PedestrianSpeedModel


@dataclass(frozen=True)
class RoomVisit:
    """One stay in one room: ``[enter_tick, leave_tick)``.

    ``leave_tick`` is None for the final (open-ended) visit.
    """

    room_id: str
    enter_tick: int
    leave_tick: Optional[int]

    def contains(self, tick: int) -> bool:
        """Whether the user is in this room at ``tick``."""
        if tick < self.enter_tick:
            return False
        return self.leave_tick is None or tick < self.leave_tick


@dataclass
class WalkTimeline:
    """The full movement history of one user."""

    visits: list[RoomVisit] = field(default_factory=list)

    def room_at(self, tick: int) -> Optional[str]:
        """Ground-truth room at ``tick`` (None before the walk starts)."""
        for visit in self.visits:
            if visit.contains(tick):
                return visit.room_id
        return None

    @property
    def rooms_visited(self) -> list[str]:
        """Rooms in visit order (with repeats)."""
        return [visit.room_id for visit in self.visits]

    def transitions(self) -> Iterator[tuple[int, str, str]]:
        """(tick, from_room, to_room) for each room change."""
        for previous, current in zip(self.visits, self.visits[1:]):
            yield current.enter_tick, previous.room_id, current.room_id


class BuildingWalker:
    """Generates a user's movement through a floor plan.

    Movement alternates dwells (random-waypoint-style stays, here
    reduced to a dwell duration) and transits along passages at a drawn
    walking speed.  The route is a random walk on the room graph, or a
    fixed itinerary when one is supplied.
    """

    def __init__(
        self,
        plan: FloorPlan,
        rng: RandomStream,
        speed_model: Optional[PedestrianSpeedModel] = None,
        dwell_low_seconds: float = 20.0,
        dwell_high_seconds: float = 120.0,
    ) -> None:
        if not 0.0 <= dwell_low_seconds <= dwell_high_seconds:
            raise ValueError(
                f"invalid dwell band: [{dwell_low_seconds}, {dwell_high_seconds}]"
            )
        plan.validate()
        self.plan = plan
        self.rng = rng
        self.speed_model = speed_model if speed_model is not None else PedestrianSpeedModel()
        self.dwell_low_seconds = dwell_low_seconds
        self.dwell_high_seconds = dwell_high_seconds

    def _draw_dwell_ticks(self) -> int:
        seconds = self.rng.uniform(self.dwell_low_seconds, self.dwell_high_seconds)
        return max(1, ticks_from_seconds(seconds))

    def _transit_ticks(self, distance_m: float) -> int:
        speed = self.speed_model.draw_walking_speed(self.rng)
        return max(1, ticks_from_seconds(distance_m / speed))

    def random_route(self, start_room: str, hops: int) -> list[str]:
        """A random walk of ``hops`` moves starting at ``start_room``."""
        if start_room not in self.plan.rooms:
            raise ValueError(f"unknown start room {start_room!r}")
        if hops < 0:
            raise ValueError(f"hops must be non-negative: {hops}")
        route = [start_room]
        current = start_room
        for _ in range(hops):
            neighbors = self.plan.neighbors(current)
            next_room = self.rng.choice([room for room, _ in neighbors])
            route.append(next_room)
            current = next_room
        return route

    def timeline(
        self,
        route: Sequence[str],
        start_tick: int = 0,
        end_open: bool = True,
    ) -> WalkTimeline:
        """Timestamp a route into a :class:`WalkTimeline`.

        Transit time between consecutive rooms comes from the passage
        distance and a per-leg speed draw; the user "belongs" to the
        destination room from the moment they leave the previous one
        (the corridor hand-off is attributed to the destination, which
        matches how a BIPS workstation would first discover them).
        """
        if not route:
            raise ValueError("route is empty")
        visits: list[RoomVisit] = []
        tick = start_tick
        for index, room_id in enumerate(route):
            if room_id not in self.plan.rooms:
                raise ValueError(f"unknown room {room_id!r} in route")
            enter = tick
            tick += self._draw_dwell_ticks()
            if index + 1 < len(route):
                passage = self.plan.passage_between(room_id, route[index + 1])
                if passage is None:
                    raise ValueError(
                        f"route steps between non-adjacent rooms "
                        f"{room_id!r} -> {route[index + 1]!r}"
                    )
                tick += self._transit_ticks(passage.distance_m)
                visits.append(RoomVisit(room_id, enter, tick))
            else:
                leave = None if end_open else tick
                visits.append(RoomVisit(room_id, enter, leave))
        return WalkTimeline(visits=visits)

    def random_timeline(self, start_room: str, hops: int, start_tick: int = 0) -> WalkTimeline:
        """Convenience: random route + timestamps."""
        return self.timeline(self.random_route(start_room, hops), start_tick=start_tick)
