"""Command-line entry points: regenerate any paper result from a shell.

Installed as ``bips`` (and reachable as ``python -m repro``)::

    bips table1 --trials 500
    bips figure2 --replications 60
    bips section5
    bips e2e --users 8 --duration 600
    bips sweeps --fast --jobs 4
    bips metrics --duration 300
    bips table1 --trials 100 --metrics-out metrics.jsonl
    bips figure2 --jobs 8 --no-cache
    bips trace --sample 1.0 --format chrome
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.experiments.duty_cycle import Section5Config, run_section5
from repro.experiments.e2e import E2EConfig, run_e2e
from repro.experiments.figure2 import Figure2Config, run_figure2
from repro.experiments.page_latency import PageLatencyConfig, run_page_latency
from repro.core.planner import plan_deployment
from repro.experiments.policies import run_policy_comparison
from repro.experiments.sweep import run_all_sweeps
from repro.experiments.table1 import Table1Config, run_table1
from repro.obs.metrics import MetricsRegistry
from repro.runner import ExperimentRunner, build_runner
from repro.runner.cache import DEFAULT_CACHE_DIR


def _add_metrics_out(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write a metrics snapshot to PATH as JSON lines after the run",
    )


def _add_fault_args(subparser: argparse.ArgumentParser) -> None:
    """Fault-injection flags (chaos runs; see docs/fault-injection.md)."""
    from repro.faults import profile_names

    subparser.add_argument(
        "--faults",
        choices=profile_names(),
        default="none",
        metavar="PROFILE",
        help=f"fault profile to inject (one of: {', '.join(profile_names())})",
    )
    subparser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        metavar="SEED",
        help="seed of the fault plan's own random streams (the simulation "
        "seed is untouched, so a chaos run perturbs delivery, not draws)",
    )


def _add_runner_args(subparser: argparse.ArgumentParser) -> None:
    """Trial fan-out and result-cache flags (Monte-Carlo experiments)."""
    subparser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for trial fan-out (1 = serial; results are "
        "byte-identical for every N)",
    )
    subparser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every trial instead of reusing the on-disk result cache",
    )
    subparser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"result-cache location (default: {DEFAULT_CACHE_DIR})",
    )


def _runner_from_args(
    args: argparse.Namespace, metrics: Optional[MetricsRegistry] = None
) -> ExperimentRunner:
    return build_runner(
        jobs=args.jobs,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        metrics=metrics,
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bips",
        description=(
            "Reproduction of 'Experimenting an Indoor Bluetooth-based "
            "Positioning Service' (ICDCS Workshops 2003)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table1 = subparsers.add_parser(
        "table1", help="the §4.1 device-discovery-time table"
    )
    table1.add_argument("--trials", type=int, default=500)
    table1.add_argument("--seed", type=int, default=Table1Config().seed)
    _add_fault_args(table1)
    _add_runner_args(table1)
    _add_metrics_out(table1)

    figure2 = subparsers.add_parser(
        "figure2", help="Figure 2: discovery probability vs time, 2-20 slaves"
    )
    figure2.add_argument("--replications", type=int, default=60)
    figure2.add_argument("--seed", type=int, default=Figure2Config().seed)
    _add_runner_args(figure2)
    _add_metrics_out(figure2)

    section5 = subparsers.add_parser(
        "section5", help="the §5 scheduling-policy numbers"
    )
    section5.add_argument("--replications", type=int, default=100)
    section5.add_argument("--seed", type=int, default=Section5Config().seed)
    _add_runner_args(section5)
    _add_metrics_out(section5)

    e2e = subparsers.add_parser(
        "e2e", help="full-system run: tracking accuracy under walking users"
    )
    e2e.add_argument("--users", type=int, default=8)
    e2e.add_argument("--duration", type=float, default=600.0, help="simulated seconds")
    e2e.add_argument("--seed", type=int, default=E2EConfig().seed)
    _add_fault_args(e2e)
    _add_metrics_out(e2e)

    metrics = subparsers.add_parser(
        "metrics",
        help="run a small full-system simulation and print the metrics scoreboard",
    )
    metrics.add_argument("--users", type=int, default=4)
    metrics.add_argument("--duration", type=float, default=300.0,
                         help="simulated seconds")
    metrics.add_argument("--seed", type=int, default=E2EConfig().seed)
    _add_fault_args(metrics)
    _add_metrics_out(metrics)

    pages = subparsers.add_parser(
        "pages", help="page latency vs clock-estimate staleness (§3.2 extension)"
    )
    pages.add_argument("--samples", type=int, default=300)
    pages.add_argument("--seed", type=int, default=PageLatencyConfig().seed)

    subparsers.add_parser(
        "policies", help="master schedules at equal tracking budget (§5 extension)"
    )

    subparsers.add_parser(
        "serving", help="per-slave goodput/latency under the §5 schedule"
    )

    planner = subparsers.add_parser(
        "plan", help="assess a floor plan and derive the workstation rollout"
    )
    planner.add_argument(
        "--layout",
        default="academic",
        help="academic | wing:<rooms> | multifloor:<floors>",
    )
    planner.add_argument("--window", type=float, default=3.84,
                         help="inquiry window in seconds")

    sweeps = subparsers.add_parser("sweeps", help="all design-choice ablations")
    sweeps.add_argument(
        "--fast", action="store_true", help="reduced sample sizes for a quick look"
    )
    _add_runner_args(sweeps)
    _add_metrics_out(sweeps)

    from repro.bench.cli import add_bench_parser

    add_bench_parser(subparsers)

    from repro.obs.trace_cli import add_trace_parser

    add_trace_parser(subparsers)

    lint = subparsers.add_parser(
        "lint",
        help="determinism & protocol-invariant static analysis "
        "(see docs/static-analysis.md)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files/directories to lint (default: src if present, else .)",
    )
    lint.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (json is the stable CI interface)",
    )
    lint.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--ignore",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to skip",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    lint.add_argument(
        "--deep",
        action="store_true",
        help="also build the whole-program import/call graphs and run "
        "project-scoped rules (DET010, ARCH001, PERF001)",
    )
    lint.add_argument(
        "--graph-out",
        metavar="FILE",
        default=None,
        help="with --deep, dump the project graphs to FILE "
        "(.json for the versioned JSON schema, anything else Graphviz DOT)",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="with --deep, ratchet against this baseline file "
        "(default: lint-baseline.json if present); grandfathered findings "
        "pass, new findings fail, stale entries fail",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="with --deep, rewrite the baseline file from the current "
        "findings instead of failing on them",
    )
    return parser


def _resolve_layout(spec: str):
    """Parse the --layout argument of the `plan` subcommand."""
    from repro.building.layouts import (
        academic_department,
        linear_wing,
        multi_floor_department,
    )

    if spec == "academic":
        return academic_department()
    if spec.startswith("wing:"):
        return linear_wing(int(spec.split(":", 1)[1]))
    if spec.startswith("multifloor:"):
        return multi_floor_department(int(spec.split(":", 1)[1]))
    raise SystemExit(f"unknown layout {spec!r} (academic | wing:N | multifloor:N)")


def _flush_metrics(registry: MetricsRegistry, path: Optional[str]) -> None:
    """Write the snapshot if --metrics-out was given."""
    if path is None:
        return
    records = registry.write_jsonl(path)
    print(f"wrote {records} metric records to {path}")


def _run_lint(args: argparse.Namespace) -> int:
    """The `bips lint` subcommand; returns the process exit code."""
    from repro.lint import REGISTRY, lint_paths
    from repro.lint.graph import ProjectGraph

    if args.list_rules:
        for spec in REGISTRY:
            scope = " [deep]" if spec.scope == "project" else ""
            print(f"{spec.id}  {spec.name}: {spec.summary}{scope}")
        return 0
    for flag in ("graph_out", "baseline"):
        if getattr(args, flag) and not args.deep:
            print(
                f"bips lint: --{flag.replace('_', '-')} requires --deep",
                file=sys.stderr,
            )
            return 2
    if args.update_baseline and not args.deep:
        print("bips lint: --update-baseline requires --deep", file=sys.stderr)
        return 2
    paths = list(args.paths)
    if not paths:
        import os

        paths = ["src"] if os.path.isdir("src") else ["."]

    def split(value: str) -> list[str]:
        return [token.strip() for token in value.split(",") if token.strip()]

    graphs: list[ProjectGraph] = []
    try:
        report = lint_paths(
            paths,
            select=split(args.select) if args.select else None,
            ignore=split(args.ignore) if args.ignore else None,
            deep=args.deep,
            graph_sink=graphs,
        )
    except (FileNotFoundError, KeyError) as error:
        print(f"bips lint: {error}", file=sys.stderr)
        return 2

    if args.graph_out and graphs:
        from pathlib import Path as _Path

        graph = graphs[0]
        dump = graph.to_json() if args.graph_out.endswith(".json") else graph.to_dot()
        _Path(args.graph_out).write_text(dump, encoding="utf-8")
        print(f"wrote project graphs to {args.graph_out}", file=sys.stderr)

    if args.deep:
        exit_code = _apply_lint_baseline(args, report)
        if exit_code is not None:
            return exit_code
    output = report.to_json() if args.format == "json" else report.render_text()
    sys.stdout.write(output if output.endswith("\n") else output + "\n")
    return report.exit_code


def _apply_lint_baseline(args: argparse.Namespace, report) -> Optional[int]:
    """Baseline handling for ``bips lint --deep``.

    Returns the process exit code when a baseline took part in the
    decision, or None to fall through to plain report semantics (no
    baseline file in play).
    """
    import os

    from repro.lint.baseline import Baseline, apply_baseline

    baseline_path = args.baseline
    if baseline_path is None and os.path.isfile("lint-baseline.json"):
        baseline_path = "lint-baseline.json"

    if args.update_baseline:
        target = baseline_path or "lint-baseline.json"
        Baseline.from_report(report).save(target)
        print(
            f"wrote {len(report.diagnostics)} finding(s) to {target}",
            file=sys.stderr,
        )
        return 0

    if baseline_path is None:
        return None
    try:
        baseline = Baseline.load(baseline_path)
    except (OSError, ValueError, KeyError) as error:
        print(f"bips lint: baseline {baseline_path}: {error}", file=sys.stderr)
        return 2
    result = apply_baseline(report, baseline)
    if args.format == "json":
        sys.stdout.write(report.to_json())
        print(result.render_text(), file=sys.stderr)
    else:
        lines = result.render_text()
        sys.stdout.write(lines if lines.endswith("\n") else lines + "\n")
    return result.exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "lint":
        return _run_lint(args)
    if args.command == "bench":
        from repro.bench.cli import run_bench

        return run_bench(args)
    if args.command == "trace":
        from repro.obs.trace_cli import run_trace

        return run_trace(args)
    if args.command == "table1":
        registry = MetricsRegistry()
        result = run_table1(
            Table1Config(
                trials=args.trials,
                seed=args.seed,
                faults=args.faults,
                fault_seed=args.fault_seed,
            ),
            metrics=registry,
            runner=_runner_from_args(args, registry),
        )
        print(result.render())
        _flush_metrics(registry, args.metrics_out)
    elif args.command == "figure2":
        registry = MetricsRegistry()
        result = run_figure2(
            Figure2Config(replications=args.replications, seed=args.seed),
            runner=_runner_from_args(args, registry),
        )
        print(result.render())
        _flush_metrics(registry, args.metrics_out)
    elif args.command == "section5":
        registry = MetricsRegistry()
        result = run_section5(
            Section5Config(replications=args.replications, seed=args.seed),
            runner=_runner_from_args(args, registry),
        )
        print(result.render())
        _flush_metrics(registry, args.metrics_out)
    elif args.command == "e2e":
        registry = MetricsRegistry()
        result = run_e2e(
            E2EConfig(
                user_count=args.users,
                duration_seconds=args.duration,
                seed=args.seed,
                faults=args.faults,
                fault_seed=args.fault_seed,
            ),
            metrics=registry,
        )
        print(result.render())
        _flush_metrics(registry, args.metrics_out)
    elif args.command == "metrics":
        registry = MetricsRegistry()
        run_e2e(
            E2EConfig(
                user_count=args.users,
                duration_seconds=args.duration,
                seed=args.seed,
                faults=args.faults,
                fault_seed=args.fault_seed,
            ),
            metrics=registry,
        )
        print(registry.render_scoreboard("BIPS pipeline metrics"))
        _flush_metrics(registry, args.metrics_out)
    elif args.command == "pages":
        result = run_page_latency(
            PageLatencyConfig(samples_per_case=args.samples, seed=args.seed)
        )
        print(result.render())
    elif args.command == "policies":
        print(run_policy_comparison().render())
    elif args.command == "serving":
        from repro.experiments.serving import run_serving

        print(run_serving().render())
    elif args.command == "plan":
        print(plan_deployment(_resolve_layout(args.layout),
                              inquiry_window_seconds=args.window).render())
    elif args.command == "sweeps":
        registry = MetricsRegistry()
        for sweep in run_all_sweeps(
            fast=args.fast, runner=_runner_from_args(args, registry)
        ):
            print(sweep.render())
            print()
        _flush_metrics(registry, args.metrics_out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
