"""``python -m repro`` — same surface as the ``bips`` console script."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
