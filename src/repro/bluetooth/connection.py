"""Established baseband connections (the connection state of §3.2)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.sim.clock import seconds_from_ticks

from .address import BDAddr
from .constants import SUPERVISION_TIMEOUT_TICKS, TICKS_PER_SLOT


class ConnectionState(enum.Enum):
    """Lifecycle of a baseband link."""

    ACTIVE = "active"
    CLOSED = "closed"


class DisconnectReason(enum.Enum):
    """Why a link ended."""

    LOCAL_CLOSE = "local_close"
    REMOTE_CLOSE = "remote_close"
    SUPERVISION_TIMEOUT = "supervision_timeout"
    DEVICE_LEFT = "device_left"


@dataclass
class Connection:
    """One master↔slave link inside a piconet.

    Tracks liveness for supervision: every successful exchange updates
    ``last_heard_tick``; a master that has not heard the slave within
    ``supervision_timeout_ticks`` declares the link dead (this is how a
    BIPS workstation notices a *connected* user walked away).
    """

    master: BDAddr
    slave: BDAddr
    am_addr: int
    established_tick: int
    supervision_timeout_ticks: int = SUPERVISION_TIMEOUT_TICKS
    state: ConnectionState = ConnectionState.ACTIVE
    last_heard_tick: int = field(init=False)
    closed_tick: Optional[int] = None
    close_reason: Optional[DisconnectReason] = None
    packets_exchanged: int = 0
    payloads: list[Any] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 1 <= self.am_addr <= 7:
            raise ValueError(f"AM_ADDR must be 1..7, got {self.am_addr}")
        self.last_heard_tick = self.established_tick

    @property
    def active(self) -> bool:
        """Whether the link is up."""
        return self.state is ConnectionState.ACTIVE

    def exchange(self, tick: int, payload: Any = None) -> None:
        """Record a successful master↔slave exchange at ``tick``."""
        if not self.active:
            raise RuntimeError(f"exchange on closed link {self.master}->{self.slave}")
        if tick < self.last_heard_tick:
            raise ValueError(f"exchange tick {tick} precedes last heard")
        self.last_heard_tick = tick
        self.packets_exchanged += 1
        if payload is not None:
            self.payloads.append(payload)

    def is_supervision_expired(self, tick: int) -> bool:
        """Whether the supervision timeout has elapsed at ``tick``."""
        return self.active and tick - self.last_heard_tick > self.supervision_timeout_ticks

    def close(self, tick: int, reason: DisconnectReason) -> None:
        """Tear the link down; idempotent."""
        if not self.active:
            return
        self.state = ConnectionState.CLOSED
        self.closed_tick = tick
        self.close_reason = reason

    @property
    def duration_ticks(self) -> Optional[int]:
        """Link lifetime, once closed."""
        if self.closed_tick is None:
            return None
        return self.closed_tick - self.established_tick

    def describe(self) -> str:
        """One-line human-readable summary."""
        status = self.state.value
        if self.close_reason is not None:
            status = f"{status}({self.close_reason.value})"
        return (
            f"{self.slave} am={self.am_addr} since "
            f"{seconds_from_ticks(self.established_tick):.3f}s [{status}]"
        )


#: One DM1 exchange (master poll + slave data) occupies two slots.
DM1_ROUND_TRIP_TICKS = 2 * TICKS_PER_SLOT
