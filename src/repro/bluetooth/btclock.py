"""The Bluetooth native clock (CLKN).

Every device free-runs a 28-bit counter at 3.2 kHz (one increment per
312.5 µs half-slot).  Since the kernel tick *is* one half-slot, a
device's native clock is simply the kernel time plus a per-device
offset, wrapped to 28 bits.

The clock drives the scan-frequency phase: bits CLKN 16-12 change every
1.28 s (4096 ticks), which is why a scanning slave changes its listening
frequency at that cadence.
"""

from __future__ import annotations

from dataclasses import dataclass

from .constants import SCAN_FREQUENCY_CHANGE_TICKS

#: CLKN is a 28-bit counter; it wraps roughly every 23.3 hours.
CLKN_BITS = 28
CLKN_WRAP = 1 << CLKN_BITS


@dataclass(frozen=True)
class BluetoothClock:
    """A device's free-running native clock.

    Args:
        offset: the device's clock offset in ticks relative to simulated
            time zero.  Each physical device powers up at a random
            moment, so offsets are typically drawn uniformly from
            ``[0, CLKN_WRAP)``.
    """

    offset: int = 0

    def clkn(self, tick: int) -> int:
        """Native clock value at kernel time ``tick``."""
        return (tick + self.offset) % CLKN_WRAP

    def scan_phase(self, tick: int, modulus: int) -> int:
        """Scan-frequency phase at ``tick``.

        The phase advances by one every 1.28 s (when CLKN bits 16-12
        change) and indexes into the 32-entry inquiry-scan hopping
        sequence (``modulus`` is 32, or 16 for train-locked scanning).
        """
        if modulus <= 0:
            raise ValueError(f"modulus must be positive, got {modulus}")
        return (self.clkn(tick) // SCAN_FREQUENCY_CHANGE_TICKS) % modulus

    def ticks_to_next_phase_change(self, tick: int) -> int:
        """Ticks from ``tick`` until the scan phase next advances.

        Always in ``[1, 4096]``: if ``tick`` sits exactly on a boundary
        the *next* change is a full period away.
        """
        position = self.clkn(tick) % SCAN_FREQUENCY_CHANGE_TICKS
        return SCAN_FREQUENCY_CHANGE_TICKS - position
