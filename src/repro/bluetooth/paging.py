"""Slot-level page procedure (§3.2), mechanically simulated.

Unlike :mod:`repro.bluetooth.page` — an analytic model good enough for
the BIPS core — this module plays the page phase out on the air, with
the same machinery as inquiry:

* the master transmits ID packets over the **slave's** page hopping
  sequence (derived from the slave's LAP), two per even slot, in
  16-frequency trains repeated N_page = 128 times (1.28 s) per dwell;
* the slave opens page-scan windows (default 11.25 ms every 1.28 s) on
  a frequency whose phase advances with its native clock;
* the master predicts the slave's current scan frequency from the
  clock snapshot in the FHS inquiry response.  A fresh estimate puts
  the master's starting train on the slave's frequency; a stale one
  (the slave's free-running clock has drifted past a 1.28 s phase
  boundary since the FHS) can pick the wrong train, costing a train
  dwell before the alternation recovers — which is exactly the
  same/different-train asymmetry the inquiry experiment measures;
* on the first heard ID the slave answers immediately (no inquiry-style
  backoff: the page is addressed to it alone) and the six-packet
  handshake (slave ID → master FHS → slave ID → master POLL → slave
  NULL, plus the first data slot) completes the connection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.kernel import EventHandle, Kernel

from .btclock import CLKN_WRAP, BluetoothClock
from .constants import (
    NUM_INQUIRY_FREQUENCIES,
    T_PAGE_SCAN_TICKS,
    T_W_PAGE_SCAN_TICKS,
    TICKS_PER_SLOT,
)
from .device import BluetoothDevice
from .hopping import (
    InquiryTransmitSchedule,
    PeriodicWindows,
    Train,
    TrainStrategy,
    train_of_position,
)
from .page import PageOutcome, PageResult
from .scan import next_listen_rendezvous

#: The page response/handshake occupies six slots.
PAGE_HANDSHAKE_TICKS = 6 * TICKS_PER_SLOT

#: N_page for the mandatory R1 scan mode: each page train repeats 128
#: times (1.28 s) before the master switches trains.
N_PAGE = 128


@dataclass(frozen=True)
class SlotLevelPageOutcome:
    """Everything a slot-level page attempt reveals."""

    result: PageResult
    rendezvous_tick: Optional[int]
    predicted_train: Train
    actual_train_at_start: Train

    @property
    def train_prediction_correct(self) -> bool:
        """Whether the clock estimate put the master on the right train."""
        return self.predicted_train is self.actual_train_at_start


PageCallback = Callable[[SlotLevelPageOutcome], None]


class SlotLevelPager:
    """Pages one slave by simulating the §3.2 rendezvous on the air."""

    def __init__(self, kernel: Kernel, name: str = "pager") -> None:
        self.kernel = kernel
        self.name = name
        self.attempts = 0
        self.connected = 0
        self.timeouts = 0
        self.wrong_train_attempts = 0
        self._pending: dict[object, EventHandle] = {}

    # -- clock estimation ----------------------------------------------------

    @staticmethod
    def _scan_position(device: BluetoothDevice, clkn: int) -> int:
        """Page-scan sequence position for a native-clock value."""
        return (device.base_phase + clkn // 4096) % NUM_INQUIRY_FREQUENCIES

    def predict_train(
        self, target: BluetoothDevice, start_tick: int, estimate_error_ticks: int
    ) -> Train:
        """The train the master believes contains the slave's frequency.

        ``estimate_error_ticks`` models clock drift accumulated since
        the FHS snapshot (a 20 ppm crystal drifts one 1.28 s phase
        period in about 18 hours; large errors model paging from a very
        old inquiry result).
        """
        estimated_clock = BluetoothClock(
            offset=(target.clock.offset + estimate_error_ticks) % CLKN_WRAP
        )
        position = self._scan_position(target, estimated_clock.clkn(start_tick))
        return train_of_position(position)

    # -- paging ------------------------------------------------------------------

    def page(
        self,
        target: BluetoothDevice,
        callback: PageCallback,
        timeout_ticks: int = 4 * N_PAGE * 32,
        estimate_error_ticks: int = 0,
        scanning: bool = True,
        window_ticks: int = T_W_PAGE_SCAN_TICKS,
        interval_ticks: int = T_PAGE_SCAN_TICKS,
    ) -> None:
        """Page ``target``; ``callback`` fires with the outcome.

        Args:
            timeout_ticks: HCI page timeout (default two full A+B train
                cycles, 5.12 s).
            estimate_error_ticks: error of the master's clock estimate.
            scanning: False models a powered-down / departed slave.
        """
        self.attempts += 1
        start = self.kernel.now
        predicted = self.predict_train(target, start, estimate_error_ticks)
        actual_position = self._scan_position(target, target.clock.clkn(start))
        actual = train_of_position(actual_position)
        if predicted is not actual:
            self.wrong_train_attempts += 1

        # The master transmits the slave's page hopping sequence for the
        # whole timeout, starting on the predicted train and alternating
        # every N_page passes.
        schedule = InquiryTransmitSchedule(
            windows=PeriodicWindows(
                start=start,
                window_ticks=timeout_ticks,
                period_ticks=timeout_ticks,
                count=1,
            ),
            strategy=TrainStrategy.ALTERNATE,
            start_train=predicted,
            passes_per_dwell=N_PAGE,
            lap=target.address.lap,
        )

        rendezvous: Optional[int] = None
        if scanning:
            rendezvous = next_listen_rendezvous(
                schedule=schedule,
                listen_position=lambda tick: self._scan_position(
                    target, target.clock.clkn(tick)
                ),
                clock=target.clock,
                fixed_phase=False,
                window_ticks=window_ticks,
                interval_ticks=interval_ticks,
                window_anchor=target.clock.offset % interval_ticks,
                from_tick=start,
                before_tick=start + timeout_ticks,
            )
        if rendezvous is not None and (
            rendezvous + PAGE_HANDSHAKE_TICKS <= start + timeout_ticks
        ):
            finish = rendezvous + PAGE_HANDSHAKE_TICKS
            outcome = PageOutcome.CONNECTED
        else:
            rendezvous = None
            finish = start + timeout_ticks
            outcome = PageOutcome.TIMEOUT

        token = object()
        self._pending[token] = self.kernel.schedule_at(
            finish,
            lambda: self._finish(
                token, target, outcome, start, rendezvous, predicted, actual, callback
            ),
            label=f"slotpage:{self.name}",
        )

    def _finish(
        self,
        token: object,
        target: BluetoothDevice,
        outcome: PageOutcome,
        started: int,
        rendezvous: Optional[int],
        predicted: Train,
        actual: Train,
        callback: PageCallback,
    ) -> None:
        self._pending.pop(token, None)
        if outcome is PageOutcome.CONNECTED:
            self.connected += 1
        else:
            self.timeouts += 1
        callback(
            SlotLevelPageOutcome(
                result=PageResult(
                    address=target.address,
                    outcome=outcome,
                    started_tick=started,
                    finished_tick=self.kernel.now,
                ),
                rendezvous_tick=rendezvous,
                predicted_train=predicted,
                actual_train_at_start=actual,
            )
        )
