"""The page / page-scan procedure: initial connection setup (§3.2).

After inquiry, the master knows a slave's BD_ADDR and native clock
(from the FHS response).  Paging transmits ID packets on the *slave's*
page hopping sequence; the slave periodically opens page-scan windows
(defaults equal the inquiry-scan defaults: 11.25 ms every 1.28 s).
Because the master predicts the slave's listening frequency from the
FHS clock snapshot, it almost always probes the correct train, and the
page latency is dominated by waiting for the slave's next page-scan
window.

The model is event-driven at the same abstraction as the inquiry
machinery: the page completes at the first page-scan window after the
page starts, plus the six-packet master/slave handshake
(ID → ID → FHS → ID → POLL → NULL), plus a train-dwell penalty when the
master's clock estimate has gone stale.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro.sim.kernel import EventHandle, Kernel
from repro.sim.rng import RandomStream

from .address import BDAddr
from .constants import (
    T_PAGE_SCAN_TICKS,
    T_W_PAGE_SCAN_TICKS,
    TICKS_PER_SLOT,
    TICKS_PER_TRAIN_DWELL,
)

#: The page handshake exchanges six packets in consecutive slots.
PAGE_HANDSHAKE_TICKS = 6 * TICKS_PER_SLOT


class PageOutcome(enum.Enum):
    """Terminal states of one page attempt."""

    CONNECTED = "connected"
    TIMEOUT = "timeout"
    ABORTED = "aborted"


@dataclass(frozen=True)
class PageScanBehavior:
    """The target slave's page-scan configuration.

    ``window_anchor`` fixes where the periodic scan windows sit on the
    time axis (a property of the slave's free-running clock).
    """

    window_anchor: int = 0
    window_ticks: int = T_W_PAGE_SCAN_TICKS
    interval_ticks: int = T_PAGE_SCAN_TICKS
    #: Set False to model a slave that stopped page scanning (left the
    #: area or powered down) — the page then times out.
    scanning: bool = True

    def next_window_start(self, tick: int) -> int:
        """Start of the first page-scan window at or after ``tick``."""
        index = -((tick - self.window_anchor) // -self.interval_ticks)  # ceil
        return self.window_anchor + index * self.interval_ticks


@dataclass(frozen=True)
class PageResult:
    """What a page attempt produced."""

    address: BDAddr
    outcome: PageOutcome
    started_tick: int
    finished_tick: int

    @property
    def latency_ticks(self) -> int:
        """Page latency in ticks."""
        return self.finished_tick - self.started_tick


PageCallback = Callable[[PageResult], None]


class PageProcedure:
    """Pages one slave and reports when the connection is established."""

    def __init__(
        self,
        kernel: Kernel,
        rng: RandomStream,
        clock_estimate_fresh_probability: float = 0.98,
        name: str = "pager",
    ) -> None:
        if not 0.0 <= clock_estimate_fresh_probability <= 1.0:
            raise ValueError(
                f"probability out of range: {clock_estimate_fresh_probability}"
            )
        self.kernel = kernel
        self.rng = rng
        self.clock_estimate_fresh_probability = clock_estimate_fresh_probability
        self.name = name
        self.attempts = 0
        self.connected = 0
        self.timeouts = 0
        self._pending: dict[BDAddr, EventHandle] = {}

    def page(
        self,
        address: BDAddr,
        behavior: PageScanBehavior,
        callback: PageCallback,
        timeout_ticks: int = 2 * TICKS_PER_TRAIN_DWELL,
    ) -> None:
        """Start paging ``address``; ``callback`` fires on completion.

        Args:
            behavior: the slave's page-scan timing (how a real slave
                would answer).
            timeout_ticks: give up after this long (HCI page timeout,
                default one full A+B train cycle of 5.12 s).
        """
        if address in self._pending:
            raise RuntimeError(f"already paging {address}")
        self.attempts += 1
        start = self.kernel.now

        if not behavior.scanning:
            finish = start + timeout_ticks
            self._pending[address] = self.kernel.schedule_at(
                finish,
                lambda: self._finish(address, PageOutcome.TIMEOUT, start, callback),
                label=f"page-timeout:{self.name}",
            )
            return

        rendezvous = behavior.next_window_start(start)
        if self.rng.random() >= self.clock_estimate_fresh_probability:
            # Stale clock estimate: the master probes the wrong train for
            # one full dwell before switching catches the slave.
            rendezvous = behavior.next_window_start(start + TICKS_PER_TRAIN_DWELL)
        finish = rendezvous + PAGE_HANDSHAKE_TICKS
        if finish - start > timeout_ticks:
            finish = start + timeout_ticks
            outcome = PageOutcome.TIMEOUT
        else:
            outcome = PageOutcome.CONNECTED
        self._pending[address] = self.kernel.schedule_at(
            finish,
            lambda: self._finish(address, outcome, start, callback),
            label=f"page:{self.name}",
        )

    def abort(self, address: BDAddr) -> bool:
        """Cancel an in-flight page attempt; True if one was pending."""
        handle = self._pending.pop(address, None)
        if handle is None:
            return False
        handle.cancel()
        return True

    def _finish(
        self, address: BDAddr, outcome: PageOutcome, started: int, callback: PageCallback
    ) -> None:
        self._pending.pop(address, None)
        if outcome is PageOutcome.CONNECTED:
            self.connected += 1
        else:
            self.timeouts += 1
        callback(
            PageResult(
                address=address,
                outcome=outcome,
                started_tick=started,
                finished_tick=self.kernel.now,
            )
        )

    @property
    def in_flight(self) -> int:
        """Number of page attempts currently outstanding."""
        return len(self._pending)
