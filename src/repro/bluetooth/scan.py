"""The slave side of device discovery: inquiry scan.

Implements the Bluetooth 1.1 inquiry-scan / inquiry-response protocol
the paper describes in §3.1:

1. The slave periodically opens a scan window (default 11.25 ms every
   1.28 s) and listens on a single inquiry frequency; the frequency's
   phase advances every 1.28 s, driven by the slave's native clock.
2. On hearing an ID packet it does **not** answer immediately: it draws
   a random backoff of 0..1023 slots (collision avoidance), sleeps,
   then listens again.
3. On the next ID packet heard it transmits an FHS response exactly one
   slot (625 µs) later on the paired response channel.
4. Per the spec the slave then re-enters the backoff/respond loop (it
   cannot know it has been discovered); ``respond_once`` models
   BlueHoc-style enrolment where a slave answers a given master once.

The scanner is event-driven but tick-exact: it asks the master's
:class:`~repro.bluetooth.hopping.InquiryTransmitSchedule` when its
current listening frequency is next on the air, and sleeps until then.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.radio.channel import ResponseChannel
from repro.sim.kernel import EventHandle, Kernel
from repro.sim.rng import RandomStream

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

from .address import BDAddr
from .btclock import BluetoothClock
from .constants import (
    BACKOFF_MAX_SLOTS,
    INQUIRY_RESPONSE_DELAY_TICKS,
    NUM_INQUIRY_FREQUENCIES,
    T_INQUIRY_SCAN_TICKS,
    T_W_INQUIRY_SCAN_TICKS,
    TICKS_PER_SLOT,
    TRAIN_SIZE,
)
from .hopping import InquiryTransmitSchedule
from .packets import FHSPacket


class PhaseMode(enum.Enum):
    """How the slave's listening frequency evolves over time.

    * ``SEQUENCE`` — spec behaviour: the phase steps through all 32
      sequence positions, one step per 1.28 s.
    * ``TRAIN_LOCKED`` — the phase steps through the 16 positions of the
      slave's starting train only.  This models the Figure-2 scenario
      ("slaves ... start listening on frequencies of train A" and are
      all discoverable by an A-only master).
    * ``FIXED`` — the phase never moves; useful for controlled tests.
    """

    SEQUENCE = "sequence"
    TRAIN_LOCKED = "train_locked"
    FIXED = "fixed"


class BackoffReentry(enum.Enum):
    """Where the slave listens after its random backoff expires.

    * ``IMMEDIATE`` — re-enters listening right away and stays listening
      until it hears the next ID (BlueZ-like behaviour; what the
      Table-1 timings imply).
    * ``NEXT_WINDOW`` — resumes the normal scan-window schedule
      (strictest reading of the scan interval); ablated in the benches.
    """

    IMMEDIATE = "immediate"
    NEXT_WINDOW = "next_window"


class ResponseMode(enum.Enum):
    """What the slave does after its first FHS response.

    A slave can never know whether its response was received (inquiry
    responses are not acknowledged), so the choices are:

    * ``CONTINUOUS`` — keep answering every subsequently heard ID with
      no further backoff (the reading of Bluetooth 1.1 where the random
      backoff precedes only the *first* response).  This is the mode
      that reproduces the Figure-2 contention: a slave whose responses
      keep losing the master's single receiver stays undiscovered until
      the scan phases diverge.
    * ``BACKOFF_EACH`` — draw a fresh random backoff after every
      response (the alternative spec reading); ablated in the benches.
    * ``SINGLE`` — stop after one response (BlueHoc-style enrolment).
    """

    CONTINUOUS = "continuous"
    BACKOFF_EACH = "backoff_each"
    SINGLE = "single"


class ScannerState(enum.Enum):
    """Lifecycle of one scanner."""

    IDLE = "idle"
    SEEKING = "seeking"  # waiting to hear a first ID
    BACKOFF = "backoff"  # sleeping out the random backoff
    RESPONDING = "responding"  # waiting to hear the ID it will answer
    DONE = "done"  # respond_once satisfied
    EXHAUSTED = "exhausted"  # nothing more to hear before the horizon
    STOPPED = "stopped"


@dataclass(frozen=True)
class ScanConfig:
    """Inquiry-scan behaviour knobs.

    Defaults are the Bluetooth 1.1 defaults quoted in the paper
    (T_w = 11.25 ms, T_scan = 1.28 s).
    """

    window_ticks: int = T_W_INQUIRY_SCAN_TICKS
    interval_ticks: int = T_INQUIRY_SCAN_TICKS
    phase_mode: PhaseMode = PhaseMode.SEQUENCE
    backoff_reentry: BackoffReentry = BackoffReentry.IMMEDIATE
    backoff_max_slots: int = BACKOFF_MAX_SLOTS
    response_mode: ResponseMode = ResponseMode.CONTINUOUS
    #: inqrespTO: if the air goes quiet for longer than this while the
    #: slave is in the response phase, it reverts to plain inquiry scan
    #: and the next ID heard triggers a fresh random backoff.  This is
    #: what re-randomises contention between master inquiry windows.
    response_timeout_ticks: int = 128 * TICKS_PER_SLOT

    def __post_init__(self) -> None:
        if self.window_ticks <= 0:
            raise ValueError(f"window_ticks must be positive: {self.window_ticks}")
        if self.interval_ticks < self.window_ticks:
            raise ValueError(
                f"interval {self.interval_ticks} < window {self.window_ticks}"
            )
        if self.backoff_max_slots < 0:
            raise ValueError(f"backoff_max_slots negative: {self.backoff_max_slots}")

    @property
    def is_continuous(self) -> bool:
        """True when the slave listens 100 % of the time."""
        return self.window_ticks >= self.interval_ticks

    @classmethod
    def continuous(cls, **overrides: object) -> "ScanConfig":
        """A slave permanently in inquiry scan (the Figure-2 slaves)."""
        return cls(window_ticks=1, interval_ticks=1, **overrides)  # type: ignore[arg-type]

    @classmethod
    def interleaved_with_page_scan(cls, **overrides: object) -> "ScanConfig":
        """The Table-1 slave: alternating inquiry scan and page scan.

        Each 1.28 s scan interval is spent on one scan type in turn, so
        an *inquiry* scan window opens only every 2.56 s.
        """
        return cls(
            window_ticks=T_W_INQUIRY_SCAN_TICKS,
            interval_ticks=2 * T_INQUIRY_SCAN_TICKS,
            **overrides,  # type: ignore[arg-type]
        )


def next_listen_rendezvous(
    schedule: InquiryTransmitSchedule,
    listen_position,
    clock: BluetoothClock,
    fixed_phase: bool,
    window_ticks: int,
    interval_ticks: int,
    window_anchor: int,
    from_tick: int,
    before_tick: int,
    always_listening: bool = False,
) -> Optional[int]:
    """First tick in ``[from_tick, before_tick)`` at which a scanning
    device hears the master.

    This is the air-rendezvous primitive shared by inquiry scan and page
    scan: intersect the scanner's periodic listen windows, its phase
    segments (the listening frequency holds for 1.28 s), and the
    master's transmit schedule.  ``listen_position(tick)`` maps a tick
    to the sequence position the device listens on.
    """
    tick = from_tick
    while tick < before_tick:
        if always_listening or window_ticks >= interval_ticks:
            segment_limit = before_tick
        else:
            index = (tick - window_anchor) // interval_ticks
            w_start = window_anchor + index * interval_ticks
            if w_start + window_ticks <= tick:
                w_start += interval_ticks
            if w_start >= before_tick:
                return None
            tick = max(tick, w_start)
            segment_limit = min(w_start + window_ticks, before_tick)
        if fixed_phase:
            segment_end = segment_limit
        else:
            segment_end = min(
                segment_limit, tick + clock.ticks_to_next_phase_change(tick)
            )
        heard = schedule.next_tx_of_position(listen_position(tick), tick, segment_end)
        if heard is not None:
            return heard
        tick = segment_end
    return None


@dataclass
class ScannerStats:
    """Per-scanner event counters and timestamps."""

    ids_heard: int = 0
    backoffs: int = 0
    responses: int = 0
    first_heard_tick: Optional[int] = None
    first_response_tick: Optional[int] = None
    response_ticks: list[int] = field(default_factory=list)


class InquiryScanner:
    """One slave device scanning for (and answering) one master's inquiry."""

    def __init__(
        self,
        kernel: Kernel,
        address: BDAddr,
        schedule: InquiryTransmitSchedule,
        channel: ResponseChannel,
        rng: RandomStream,
        config: Optional[ScanConfig] = None,
        clock: Optional[BluetoothClock] = None,
        base_phase: int = 0,
        window_anchor: Optional[int] = None,
        horizon_tick: int = 1 << 62,
        name: str = "",
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.kernel = kernel
        self.address = address
        self.schedule = schedule
        self.channel = channel
        self.rng = rng
        self.config = config if config is not None else ScanConfig()
        self.clock = clock if clock is not None else BluetoothClock()
        if not 0 <= base_phase < NUM_INQUIRY_FREQUENCIES:
            raise ValueError(f"base_phase out of range: {base_phase}")
        self.base_phase = base_phase
        # Scan windows are anchored by the device's own clock unless an
        # explicit anchor is given (experiments randomise it).
        anchor = window_anchor if window_anchor is not None else self.clock.offset
        self.window_anchor = anchor % self.config.interval_ticks
        self.horizon_tick = horizon_tick
        self.name = name or str(address)
        self.state = ScannerState.IDLE
        self.stats = ScannerStats()
        self._pending: Optional[EventHandle] = None
        if metrics is not None:
            self._m_ids_heard = metrics.counter("bt.scan.ids_heard")
            self._m_backoffs = metrics.counter("bt.scan.backoffs")
            self._m_responses = metrics.counter("bt.scan.responses_sent")
        else:
            self._m_ids_heard = None
            self._m_backoffs = None
            self._m_responses = None

    # -- frequency / window geometry --------------------------------------

    def listen_position(self, tick: int) -> int:
        """Sequence position the slave listens on at ``tick``."""
        step = self.clock.scan_phase(tick, NUM_INQUIRY_FREQUENCIES)
        mode = self.config.phase_mode
        if mode is PhaseMode.FIXED:
            return self.base_phase
        if mode is PhaseMode.SEQUENCE:
            return (self.base_phase + step) % NUM_INQUIRY_FREQUENCIES
        # TRAIN_LOCKED: walk the 16 positions of the starting train.
        train_start = (self.base_phase // TRAIN_SIZE) * TRAIN_SIZE
        local = (self.base_phase % TRAIN_SIZE + step) % TRAIN_SIZE
        return train_start + local

    def _window_at_or_after(self, tick: int) -> tuple[int, int]:
        """(start, end) of the first scan window with ``end > tick``."""
        interval = self.config.interval_ticks
        index = (tick - self.window_anchor) // interval
        start = self.window_anchor + index * interval
        if start + self.config.window_ticks <= tick:
            start += interval
        return start, start + self.config.window_ticks

    def next_hear(
        self, from_tick: int, before_tick: Optional[int] = None, ignore_windows: bool = False
    ) -> Optional[int]:
        """First tick >= ``from_tick`` at which this slave hears an ID.

        Intersects the slave's scan windows (unless ``ignore_windows``),
        its phase segments (listening frequency holds for 1.28 s), and
        the master's transmit schedule.
        """
        limit = self.horizon_tick if before_tick is None else min(before_tick, self.horizon_tick)
        return next_listen_rendezvous(
            schedule=self.schedule,
            listen_position=self.listen_position,
            clock=self.clock,
            fixed_phase=self.config.phase_mode is PhaseMode.FIXED,
            window_ticks=self.config.window_ticks,
            interval_ticks=self.config.interval_ticks,
            window_anchor=self.window_anchor,
            from_tick=from_tick,
            before_tick=limit,
            always_listening=ignore_windows or self.config.is_continuous,
        )

    # -- state machine ------------------------------------------------------

    def start(self, at_tick: Optional[int] = None) -> None:
        """Begin scanning (immediately, or at ``at_tick``)."""
        if self.state is not ScannerState.IDLE:
            raise RuntimeError(f"scanner {self.name} already started ({self.state})")
        begin = max(self.kernel.now, at_tick if at_tick is not None else self.kernel.now)
        self.state = ScannerState.SEEKING
        self._pending = self.kernel.schedule_at(
            begin, self._seek, label=f"scan-start:{self.name}"
        )

    def stop(self) -> None:
        """Abort scanning (device left coverage / powered down)."""
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self.state = ScannerState.STOPPED

    def _seek(self) -> None:
        self._pending = None
        heard = self.next_hear(self.kernel.now)
        if heard is None:
            self.state = ScannerState.EXHAUSTED
            return
        self.state = ScannerState.SEEKING
        self._pending = self.kernel.schedule_at(
            heard, self._on_first_hear, label=f"hear:{self.name}"
        )

    def _on_first_hear(self) -> None:
        self._pending = None
        self.stats.ids_heard += 1
        if self._m_ids_heard is not None:
            self._m_ids_heard.inc()
        if self.stats.first_heard_tick is None:
            self.stats.first_heard_tick = self.kernel.now
        self._begin_backoff()

    def _begin_backoff(self) -> None:
        self.stats.backoffs += 1
        if self._m_backoffs is not None:
            self._m_backoffs.inc()
        backoff_ticks = self.rng.backoff_slots(self.config.backoff_max_slots) * TICKS_PER_SLOT
        self.state = ScannerState.BACKOFF
        self._pending = self.kernel.schedule(
            backoff_ticks, self._after_backoff, label=f"backoff:{self.name}"
        )

    def _after_backoff(self) -> None:
        self._pending = None
        ignore_windows = self.config.backoff_reentry is BackoffReentry.IMMEDIATE
        heard = self.next_hear(self.kernel.now, ignore_windows=ignore_windows)
        if heard is None:
            self.state = ScannerState.EXHAUSTED
            return
        # inqrespTO: the timeout only measures *listening* time, so it
        # applies when the slave listens continuously (a wait for the
        # slave's own next scan window is not air silence).
        if (
            (ignore_windows or self.config.is_continuous)
            and heard - self.kernel.now > self.config.response_timeout_ticks
        ):
            # Expired before any ID arrived: back to plain scan; the
            # eventual hear counts as a first hear (fresh backoff).
            self.state = ScannerState.SEEKING
            self._pending = self.kernel.schedule_at(
                heard, self._on_first_hear, label=f"hear:{self.name}"
            )
            return
        self.state = ScannerState.RESPONDING
        self._pending = self.kernel.schedule_at(
            heard, self._respond, label=f"respond:{self.name}"
        )

    def _respond(self) -> None:
        self._pending = None
        hear_tick = self.kernel.now
        self.stats.ids_heard += 1
        if self._m_ids_heard is not None:
            self._m_ids_heard.inc()
        position = self.listen_position(hear_tick)
        rf_channel = self.schedule.sequence[position]
        tx_tick = hear_tick + INQUIRY_RESPONSE_DELAY_TICKS
        packet = FHSPacket(
            sender=self.address,
            clkn=self.clock.clkn(tx_tick),
            channel=rf_channel,
            tx_tick=tx_tick,
        )
        self.channel.schedule_fhs(tx_tick, rf_channel, packet)
        self.stats.responses += 1
        if self._m_responses is not None:
            self._m_responses.inc()
        self.stats.response_ticks.append(tx_tick)
        if self.stats.first_response_tick is None:
            self.stats.first_response_tick = tx_tick
        mode = self.config.response_mode
        if mode is ResponseMode.SINGLE:
            self.state = ScannerState.DONE
            return
        if mode is ResponseMode.BACKOFF_EACH:
            self._begin_backoff()
            return
        # CONTINUOUS: answer the next ID heard, with no further backoff —
        # unless the air goes quiet past inqrespTO, which drops the slave
        # back to plain inquiry scan (fresh backoff on the next hear).
        heard = self.next_hear(hear_tick + 1)
        if heard is None:
            self.state = ScannerState.EXHAUSTED
            return
        if (
            self.config.is_continuous
            and heard - hear_tick > self.config.response_timeout_ticks
        ):
            self.state = ScannerState.SEEKING
            self._pending = self.kernel.schedule_at(
                heard, self._on_first_hear, label=f"hear:{self.name}"
            )
            return
        self.state = ScannerState.RESPONDING
        self._pending = self.kernel.schedule_at(
            heard, self._respond, label=f"respond:{self.name}"
        )

    def __repr__(self) -> str:
        return (
            f"InquiryScanner(name={self.name!r}, state={self.state.value}, "
            f"responses={self.stats.responses})"
        )
