"""Bluetooth timing and protocol constants.

Every number here comes either from §3 of the paper or from the
Bluetooth 1.1 specification values the paper quotes.  All durations are
expressed in ticks (1 tick = 312.5 µs, see :mod:`repro.sim.clock`).
"""

from __future__ import annotations

from repro.sim.clock import ticks_from_milliseconds, ticks_from_seconds

# -- radio ---------------------------------------------------------------

#: Number of RF channels in the 2.4 GHz ISM band used by Bluetooth.
NUM_RF_CHANNELS = 79

#: Number of dedicated inquiry (and page) hopping frequencies.
NUM_INQUIRY_FREQUENCIES = 32

#: Frequencies per train (the 32 inquiry frequencies are split into
#: train A and train B of 16 each).
TRAIN_SIZE = 16

#: Number of trains.
NUM_TRAINS = 2

# -- slot timing ---------------------------------------------------------

#: One half-slot (one tick) is 312.5 µs; a slot is 625 µs = 2 ticks.
TICKS_PER_HALF_SLOT = 1
TICKS_PER_SLOT = 2

#: One inquiry train pass: 16 frequencies, two ID packets per even slot
#: with the odd slots interleaved for listening -> 16 slots = 10 ms.
TICKS_PER_TRAIN_PASS = 16 * TICKS_PER_SLOT  # 32 ticks = 10 ms

#: A slave that hears an ID packet answers with an FHS packet exactly
#: 625 µs (one slot) later.
INQUIRY_RESPONSE_DELAY_TICKS = TICKS_PER_SLOT

# -- inquiry -------------------------------------------------------------

#: Each train must be repeated at least N_inquiry = 256 times before the
#: master switches to the other train (256 passes * 10 ms = 2.56 s).
N_INQUIRY = 256

#: Ticks the master dwells on one train before switching.
TICKS_PER_TRAIN_DWELL = N_INQUIRY * TICKS_PER_TRAIN_PASS  # 8192 slots = 2.56 s

#: An error-free inquiry needs at least three train switches, hence the
#: canonical maximum inquiry length of 4 * 2.56 s = 10.24 s.
INQUIRY_MAX_TICKS = 4 * TICKS_PER_TRAIN_DWELL

#: Inquiry-response backoff: uniform in 0..1023 slots (Bluetooth 1.1).
BACKOFF_MAX_SLOTS = 1023

# -- scan (defaults quoted in the paper §3.1/§3.2) -------------------------

#: T_inquiry_scan: interval between the starts of consecutive inquiry
#: scan windows (default 1.28 s).
T_INQUIRY_SCAN_TICKS = ticks_from_seconds(1.28)  # 4096

#: T_w_inquiry_scan: length of one inquiry scan window (default 11.25 ms,
#: just over one 10 ms train pass so a full pass always fits).
T_W_INQUIRY_SCAN_TICKS = ticks_from_milliseconds(11.25)  # 36

#: Page scan defaults equal the inquiry scan defaults.
T_PAGE_SCAN_TICKS = T_INQUIRY_SCAN_TICKS
T_W_PAGE_SCAN_TICKS = T_W_INQUIRY_SCAN_TICKS

#: The slave's scan frequency changes every 1.28 s (driven by clock bits
#: CLKN 16-12, i.e. every 4096 ticks).
SCAN_FREQUENCY_CHANGE_TICKS = 4096

# -- piconet -------------------------------------------------------------

#: Maximum number of active slaves in a piconet (3-bit AM_ADDR, 0 is
#: reserved for broadcast).
MAX_ACTIVE_SLAVES = 7

#: Link supervision timeout default (spec default 20 s); BIPS uses a much
#: shorter presence timeout, configured at the core layer.
SUPERVISION_TIMEOUT_TICKS = ticks_from_seconds(20.0)

# -- paper §5 scheduling policy -------------------------------------------

#: Inquiry window the paper recommends for the BIPS master (3.84 s:
#: one full train dwell of 2.56 s plus 1.28 s on the second train).
BIPS_INQUIRY_WINDOW_TICKS = TICKS_PER_TRAIN_DWELL + TICKS_PER_TRAIN_DWELL // 2

#: Length of a complete BIPS master operational cycle (≈15.4 s: mean
#: time for a pedestrian to cross a 20 m piconet at 1.3 m/s).
BIPS_OPERATIONAL_CYCLE_TICKS = ticks_from_seconds(15.4)

#: General (unlimited) inquiry access code LAP, shared by all devices.
GIAC_LAP = 0x9E8B33
