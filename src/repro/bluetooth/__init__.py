"""Slot-accurate Bluetooth 1.1 baseband simulator (the BlueHoc substitute).

Layers:

* identity — :class:`BDAddr`, :class:`BluetoothClock`, :class:`BluetoothDevice`
* hopping — inquiry trains and the master transmit schedule
* discovery — :class:`InquiryProcedure` (master) and
  :class:`InquiryScanner` (slave, with the v1.1 random backoff)
* connection setup — :class:`PageProcedure`, :class:`Connection`,
  :class:`Piconet`
* :class:`HostController` — a BlueZ-like facade tying it together
"""

from .address import BDAddr, address_block
from .btclock import CLKN_WRAP, BluetoothClock
from .connection import Connection, ConnectionState, DisconnectReason
from .constants import (
    BACKOFF_MAX_SLOTS,
    BIPS_INQUIRY_WINDOW_TICKS,
    BIPS_OPERATIONAL_CYCLE_TICKS,
    GIAC_LAP,
    INQUIRY_MAX_TICKS,
    MAX_ACTIVE_SLAVES,
    N_INQUIRY,
    NUM_INQUIRY_FREQUENCIES,
    NUM_RF_CHANNELS,
    T_INQUIRY_SCAN_TICKS,
    T_W_INQUIRY_SCAN_TICKS,
    TICKS_PER_TRAIN_DWELL,
    TICKS_PER_TRAIN_PASS,
    TRAIN_SIZE,
)
from .device import BluetoothDevice, make_devices
from .hci import ConnectionCompleteEvent, HostController
from .link import (
    DM1_PAYLOAD_BYTES,
    AppMessage,
    RoundRobinLinkScheduler,
    SlaveLinkState,
)
from .hopping import (
    InquiryTransmitSchedule,
    PeriodicWindows,
    Train,
    TrainStrategy,
    Window,
    continuous_inquiry,
    inquiry_sequence,
    periodic_inquiry,
    train_of_position,
    tx_offset_of_position,
)
from .inquiry import InquiryProcedure, InquiryResult
from .packets import DM1Packet, FHSPacket, IDPacket, NullPacket, PacketType, PollPacket
from .page import PageOutcome, PageProcedure, PageResult, PageScanBehavior
from .paging import N_PAGE, SlotLevelPageOutcome, SlotLevelPager
from .piconet import Piconet, PiconetFullError
from .scan import (
    BackoffReentry,
    InquiryScanner,
    PhaseMode,
    ScanConfig,
    ScannerState,
    ScannerStats,
)

__all__ = [
    "BDAddr",
    "address_block",
    "CLKN_WRAP",
    "BluetoothClock",
    "Connection",
    "ConnectionState",
    "DisconnectReason",
    "BACKOFF_MAX_SLOTS",
    "BIPS_INQUIRY_WINDOW_TICKS",
    "BIPS_OPERATIONAL_CYCLE_TICKS",
    "GIAC_LAP",
    "INQUIRY_MAX_TICKS",
    "MAX_ACTIVE_SLAVES",
    "N_INQUIRY",
    "NUM_INQUIRY_FREQUENCIES",
    "NUM_RF_CHANNELS",
    "T_INQUIRY_SCAN_TICKS",
    "T_W_INQUIRY_SCAN_TICKS",
    "TICKS_PER_TRAIN_DWELL",
    "TICKS_PER_TRAIN_PASS",
    "TRAIN_SIZE",
    "BluetoothDevice",
    "make_devices",
    "ConnectionCompleteEvent",
    "HostController",
    "DM1_PAYLOAD_BYTES",
    "AppMessage",
    "RoundRobinLinkScheduler",
    "SlaveLinkState",
    "InquiryTransmitSchedule",
    "PeriodicWindows",
    "Train",
    "TrainStrategy",
    "Window",
    "continuous_inquiry",
    "inquiry_sequence",
    "periodic_inquiry",
    "train_of_position",
    "tx_offset_of_position",
    "InquiryProcedure",
    "InquiryResult",
    "DM1Packet",
    "FHSPacket",
    "IDPacket",
    "NullPacket",
    "PacketType",
    "PollPacket",
    "PageOutcome",
    "PageProcedure",
    "PageResult",
    "PageScanBehavior",
    "N_PAGE",
    "SlotLevelPageOutcome",
    "SlotLevelPager",
    "Piconet",
    "PiconetFullError",
    "BackoffReentry",
    "InquiryScanner",
    "PhaseMode",
    "ScanConfig",
    "ScannerState",
    "ScannerStats",
]
