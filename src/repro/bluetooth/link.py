"""Serving connected slaves: round-robin link scheduling over DM1 slots.

§5 splits the master's operational cycle into a discovery window and
"the remaining time to serve the slaves applications".  This module
models that remaining time: during each serving window the master polls
its active slaves round-robin; every poll round is a two-slot exchange
(master packet + slave response), and application payloads ride on DM1
packets carrying at most 17 bytes each.

The model yields the quantity the paper leaves unquantified: how much
application bandwidth each of up to seven slaves actually receives
under a given scheduling policy, and how long an application message
(say, the navigation path for the handheld's display) takes to deliver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.clock import seconds_from_ticks

from .connection import DM1_ROUND_TRIP_TICKS
from .packets import DM1Packet

#: Usable payload per two-slot DM1 round (one direction), bytes.
DM1_PAYLOAD_BYTES = DM1Packet.MAX_PAYLOAD_BYTES


@dataclass
class AppMessage:
    """One application payload queued for a slave."""

    payload_bytes: int
    enqueued_tick: int
    delivered_tick: Optional[int] = None
    bytes_sent: int = 0

    def __post_init__(self) -> None:
        if self.payload_bytes <= 0:
            raise ValueError(f"payload must be positive: {self.payload_bytes}")

    @property
    def delivered(self) -> bool:
        """Whether the full payload has been acknowledged."""
        return self.delivered_tick is not None

    @property
    def latency_seconds(self) -> Optional[float]:
        """Queueing + transmission time, once delivered."""
        if self.delivered_tick is None:
            return None
        return seconds_from_ticks(self.delivered_tick - self.enqueued_tick)

    @property
    def rounds_needed(self) -> int:
        """DM1 rounds required for the full payload."""
        return -(-self.payload_bytes // DM1_PAYLOAD_BYTES)


@dataclass
class SlaveLinkState:
    """Per-slave queue and counters."""

    slave_id: str
    queue: list[AppMessage] = field(default_factory=list)
    delivered: list[AppMessage] = field(default_factory=list)
    polls: int = 0
    idle_polls: int = 0
    bytes_delivered: int = 0


class RoundRobinLinkScheduler:
    """Simulates one serving window at a time, slot-exactly.

    The scheduler is pure arithmetic over the window's slot budget (no
    kernel events needed: inside a serving window nothing else contends
    for the radio), which keeps full-system simulations cheap while
    still accounting for every slot.
    """

    def __init__(self) -> None:
        self._slaves: dict[str, SlaveLinkState] = {}
        self._archived_delivered: list[AppMessage] = []
        self.windows_served = 0
        self.slots_used = 0
        self.slots_idle = 0

    # -- membership ----------------------------------------------------------

    def attach(self, slave_id: str) -> None:
        """Add a slave to the polling wheel; idempotent."""
        self._slaves.setdefault(slave_id, SlaveLinkState(slave_id))

    def detach(self, slave_id: str) -> Optional[SlaveLinkState]:
        """Remove a slave (undelivered messages are lost with the link).

        Messages already delivered to the slave stay in the scheduler's
        delivery record for later analysis.
        """
        state = self._slaves.pop(slave_id, None)
        if state is not None:
            self._archived_delivered.extend(state.delivered)
        return state

    @property
    def slave_count(self) -> int:
        """Number of slaves on the wheel."""
        return len(self._slaves)

    @property
    def slave_ids(self) -> list[str]:
        """Ids of the slaves currently on the wheel."""
        return list(self._slaves)

    def state_of(self, slave_id: str) -> SlaveLinkState:
        """One slave's link state."""
        return self._slaves[slave_id]

    # -- application traffic ---------------------------------------------------

    def enqueue(self, slave_id: str, payload_bytes: int, tick: int) -> AppMessage:
        """Queue an application message for delivery to ``slave_id``."""
        message = AppMessage(payload_bytes=payload_bytes, enqueued_tick=tick)
        self._slaves[slave_id].queue.append(message)
        return message

    # -- serving ------------------------------------------------------------------

    def serve_window(self, start_tick: int, end_tick: int) -> int:
        """Run one serving window; returns payload bytes delivered.

        Slaves are polled round-robin, one two-slot round each.  A poll
        carries up to 17 payload bytes of the slave's head-of-line
        message (or is a bare POLL/NULL keep-alive when the queue is
        empty).
        """
        if end_tick < start_tick:
            raise ValueError(f"window ends before it starts: {start_tick}..{end_tick}")
        self.windows_served += 1
        delivered_bytes = 0
        if not self._slaves:
            self.slots_idle += (end_tick - start_tick) // 2
            return 0
        wheel = list(self._slaves.values())
        position = 0
        tick = start_tick
        while tick + DM1_ROUND_TRIP_TICKS <= end_tick:
            state = wheel[position % len(wheel)]
            position += 1
            state.polls += 1
            self.slots_used += DM1_ROUND_TRIP_TICKS // 2
            if state.queue:
                message = state.queue[0]
                chunk = min(
                    DM1_PAYLOAD_BYTES, message.payload_bytes - message.bytes_sent
                )
                message.bytes_sent += chunk
                delivered_bytes += chunk
                state.bytes_delivered += chunk
                if message.bytes_sent >= message.payload_bytes:
                    message.delivered_tick = tick + DM1_ROUND_TRIP_TICKS
                    state.delivered.append(message)
                    state.queue.pop(0)
            else:
                state.idle_polls += 1
            tick += DM1_ROUND_TRIP_TICKS
        return delivered_bytes

    # -- analysis -------------------------------------------------------------------

    def per_slave_goodput_bytes_per_second(
        self, serving_seconds_per_cycle: float, cycle_seconds: float
    ) -> float:
        """Steady-state per-slave goodput under saturation.

        Each slave gets ``1/N`` of the serving window's DM1 rounds.
        """
        if self.slave_count == 0:
            return 0.0
        rounds_per_window = serving_seconds_per_cycle / (
            seconds_from_ticks(DM1_ROUND_TRIP_TICKS)
        )
        per_slave_rounds = rounds_per_window / self.slave_count
        return per_slave_rounds * DM1_PAYLOAD_BYTES / cycle_seconds

    def delivered_messages(self) -> list[AppMessage]:
        """All delivered messages, including to slaves since detached."""
        result: list[AppMessage] = list(self._archived_delivered)
        for state in self._slaves.values():  # lint: disable=DET003 -- dict preserves attach order, which is the documented delivery order
            result.extend(state.delivered)
        return result
