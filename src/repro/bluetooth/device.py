"""Device identity: the bundle of address, clock, and scan personality.

A :class:`BluetoothDevice` is what the higher layers (BIPS core,
mobility, experiments) pass around; the protocol machinery binds it to
scanners, pagers, and piconets as needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.sim.rng import RandomStream

from .address import BDAddr, address_block
from .btclock import CLKN_WRAP, BluetoothClock
from .constants import NUM_INQUIRY_FREQUENCIES
from .page import PageScanBehavior


@dataclass(frozen=True)
class BluetoothDevice:
    """One Bluetooth radio with its free-running clock.

    ``base_phase`` is the device's inquiry-scan phase at clock zero —
    together with the clock offset it determines which inquiry frequency
    the device listens on at any instant.
    """

    address: BDAddr
    clock: BluetoothClock = field(default_factory=BluetoothClock)
    base_phase: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        if not 0 <= self.base_phase < NUM_INQUIRY_FREQUENCIES:
            raise ValueError(f"base_phase out of range: {self.base_phase}")

    @property
    def label(self) -> str:
        """Display name: the given name, or the address."""
        return self.name or str(self.address)

    def page_scan_behavior(self, scanning: bool = True) -> PageScanBehavior:
        """This device's page-scan timing, anchored by its clock."""
        return PageScanBehavior(window_anchor=self.clock.offset % 4096, scanning=scanning)


def make_devices(
    count: int,
    rng: RandomStream,
    name_prefix: str = "dev",
    phase_range: Optional[tuple[int, int]] = None,
    start_address: int = 0x0002_5B00_0000,
) -> list[BluetoothDevice]:
    """Create ``count`` devices with random clocks and scan phases.

    Args:
        phase_range: inclusive bounds for the random ``base_phase``;
            default spans all 32 positions.  The Figure-2 scenario uses
            ``(0, 15)`` so every slave starts on a train-A frequency.
    """
    low, high = phase_range if phase_range is not None else (0, NUM_INQUIRY_FREQUENCIES - 1)
    if not 0 <= low <= high < NUM_INQUIRY_FREQUENCIES:
        raise ValueError(f"invalid phase range: {phase_range}")
    devices = []
    for index, address in enumerate(address_block(count, start=start_address)):
        devices.append(
            BluetoothDevice(
                address=address,
                clock=BluetoothClock(offset=rng.randint(0, CLKN_WRAP - 1)),
                base_phase=rng.randint(low, high),
                name=f"{name_prefix}-{index}",
            )
        )
    return devices


def device_addresses(devices: list[BluetoothDevice]) -> Iterator[BDAddr]:
    """The addresses of ``devices``, in order."""
    return (device.address for device in devices)
