"""Piconet membership management.

A piconet is the star-shaped network of §3: one master, up to seven
active slaves addressed by 3-bit AM_ADDRs.  The BIPS workstation is
always the master; handheld devices are always slaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .address import BDAddr
from .connection import Connection, DisconnectReason
from .constants import MAX_ACTIVE_SLAVES, SUPERVISION_TIMEOUT_TICKS


class PiconetFullError(Exception):
    """All seven active-member addresses are in use."""


@dataclass
class Piconet:
    """One master's piconet: AM_ADDR allocation and member links."""

    master: BDAddr
    supervision_timeout_ticks: int = SUPERVISION_TIMEOUT_TICKS
    _members: dict[BDAddr, Connection] = field(default_factory=dict)
    _history: list[Connection] = field(default_factory=list)

    @property
    def active_count(self) -> int:
        """Number of currently connected slaves."""
        return len(self._members)

    @property
    def is_full(self) -> bool:
        """Whether the active-member address space is exhausted."""
        return self.active_count >= MAX_ACTIVE_SLAVES

    @property
    def members(self) -> list[Connection]:
        """Live connections, ordered by AM_ADDR."""
        return sorted(self._members.values(), key=lambda c: c.am_addr)

    @property
    def history(self) -> list[Connection]:
        """All closed connections, in close order."""
        return list(self._history)

    def connection_of(self, slave: BDAddr) -> Optional[Connection]:
        """The live connection to ``slave``, if any."""
        return self._members.get(slave)

    def _free_am_addr(self) -> int:
        used = {conn.am_addr for conn in self._members.values()}  # lint: disable=DET003 -- membership set only; order cannot reach the result
        for am_addr in range(1, MAX_ACTIVE_SLAVES + 1):
            if am_addr not in used:
                return am_addr
        raise PiconetFullError(f"piconet of {self.master} is full")

    def attach(self, slave: BDAddr, tick: int) -> Connection:
        """Admit ``slave`` as an active member.

        Raises:
            PiconetFullError: if seven slaves are already active.
            ValueError: if the slave is already a member.
        """
        if slave in self._members:
            raise ValueError(f"{slave} is already in the piconet of {self.master}")
        if self.is_full:
            raise PiconetFullError(f"piconet of {self.master} is full")
        connection = Connection(
            master=self.master,
            slave=slave,
            am_addr=self._free_am_addr(),
            established_tick=tick,
            supervision_timeout_ticks=self.supervision_timeout_ticks,
        )
        self._members[slave] = connection
        return connection

    def detach(self, slave: BDAddr, tick: int, reason: DisconnectReason) -> Optional[Connection]:
        """Remove ``slave``; returns the closed connection, if present."""
        connection = self._members.pop(slave, None)
        if connection is None:
            return None
        connection.close(tick, reason)
        self._history.append(connection)
        return connection

    def expire_supervision(self, tick: int) -> list[Connection]:
        """Detach every member whose supervision timeout has lapsed."""
        expired = [
            conn
            for conn in self._members.values()  # lint: disable=DET003 -- dict preserves attach order; expiry reports the oldest member first by design
            if conn.is_supervision_expired(tick)
        ]
        for connection in expired:
            self.detach(connection.slave, tick, DisconnectReason.SUPERVISION_TIMEOUT)
        return expired

    def __contains__(self, slave: BDAddr) -> bool:
        return slave in self._members

    def __repr__(self) -> str:
        return f"Piconet(master={self.master}, active={self.active_count})"
