"""Bluetooth device addresses (BD_ADDR).

A BD_ADDR is 48 bits: LAP (lower address part, 24 bits), UAP (upper
address part, 8 bits) and NAP (non-significant address part, 16 bits).
The LAP seeds hopping sequences; the full address identifies a device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

_LAP_BITS = 24
_UAP_BITS = 8
_NAP_BITS = 16


@dataclass(frozen=True, order=True)
class BDAddr:
    """An immutable 48-bit Bluetooth device address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << 48):
            raise ValueError(f"BD_ADDR must be a 48-bit integer, got {self.value:#x}")

    @property
    def lap(self) -> int:
        """Lower address part (24 bits) — seeds the paging hop sequence."""
        return self.value & ((1 << _LAP_BITS) - 1)

    @property
    def uap(self) -> int:
        """Upper address part (8 bits)."""
        return (self.value >> _LAP_BITS) & ((1 << _UAP_BITS) - 1)

    @property
    def nap(self) -> int:
        """Non-significant address part (16 bits)."""
        return (self.value >> (_LAP_BITS + _UAP_BITS)) & ((1 << _NAP_BITS) - 1)

    @classmethod
    def from_parts(cls, nap: int, uap: int, lap: int) -> "BDAddr":
        """Assemble an address from its three parts."""
        if not 0 <= nap < (1 << _NAP_BITS):
            raise ValueError(f"NAP out of range: {nap:#x}")
        if not 0 <= uap < (1 << _UAP_BITS):
            raise ValueError(f"UAP out of range: {uap:#x}")
        if not 0 <= lap < (1 << _LAP_BITS):
            raise ValueError(f"LAP out of range: {lap:#x}")
        return cls((nap << (_LAP_BITS + _UAP_BITS)) | (uap << _LAP_BITS) | lap)

    @classmethod
    def parse(cls, text: str) -> "BDAddr":
        """Parse the conventional colon-separated hex form.

        >>> BDAddr.parse("00:11:22:33:44:55").format()
        '00:11:22:33:44:55'
        """
        parts = text.strip().split(":")
        if len(parts) != 6 or not all(len(p) == 2 for p in parts):
            raise ValueError(f"not a BD_ADDR: {text!r}")
        try:
            octets = [int(p, 16) for p in parts]
        except ValueError as exc:
            raise ValueError(f"not a BD_ADDR: {text!r}") from exc
        value = 0
        for octet in octets:
            value = (value << 8) | octet
        return cls(value)

    def format(self) -> str:
        """Colon-separated hex form, most significant octet first.

        The rendered string is cached on the instance: addresses are
        formatted once per collision record and per trace span, so a
        busy channel re-renders the same handful of devices thousands
        of times.  The cache is safe because the dataclass is frozen
        and equality/hash ignore non-field state.
        """
        cached = self.__dict__.get("_format_cache")
        if cached is None:
            octets = [(self.value >> shift) & 0xFF for shift in range(40, -8, -8)]
            cached = ":".join([format(octet, "02X") for octet in octets])
            object.__setattr__(self, "_format_cache", cached)
        return cached

    def __str__(self) -> str:
        return self.format()

    def __repr__(self) -> str:
        return f"BDAddr({self.format()!r})"


def address_block(count: int, start: int = 0x0002_5B00_0000) -> Iterator[BDAddr]:
    """Yield ``count`` consecutive unique addresses from a vendor block.

    Convenient for simulations that need many distinct devices.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    for offset in range(count):
        yield BDAddr(start + offset)
