"""Batched inquiry-scan: one kernel event advances a whole piconet.

:class:`InquiryScanSwarm` is the batched-engine counterpart of
:class:`~repro.bluetooth.scan.InquiryScanner`.  Where the object engine
gives every slave its own Python object and one kernel event (plus an
:class:`~repro.sim.kernel.EventHandle`) per state transition, the swarm
keeps all slaves of one piconet as rows of a
:class:`~repro.sim.batch.BatchStore` — clock offsets, hop phases, scan
anchors, lifecycle state and counters are parallel ``array('q')``
columns — and files each row under the tick at which it next acts.  One
handle-free kernel event per distinct due tick then advances every row
due at that tick (:meth:`InquiryScanSwarm._on_advance`), and all FHS
responses produced within one advance are announced to the radio
channel in a single batched call.

Equivalence contract (asserted by
``tests/sim/test_engine_equivalence.py`` and
``tests/bluetooth/test_swarm.py``): the swarm replays the
``InquiryScanner`` state machine transition for transition —

* every slave draws only from its own :class:`RandomStream`, at the
  same causal points, so draw sequences are identical;
* rows are filed in the same order the object engine would have
  scheduled per-slave events, and buckets are processed FIFO, so
  same-tick slaves act in the same relative order;
* within one master schedule, ID transmissions occupy ticks congruent
  to {0, 1} (mod 4) past the window start while FHS deliveries occupy
  {2, 3}, so hear/respond steps never share a tick with channel
  deliveries — the batched announce at the end of an advance cannot
  reorder anything observable (see docs/performance.md).

What is *not* byte-matched: kernel-internal telemetry (``sim.*``
event counts, queue depths, span/trace labels) — the swarm fires one
event where the object engine fires N, by design.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from types import MappingProxyType
from typing import TYPE_CHECKING, Mapping, Optional

from repro.radio.channel import ResponseChannel
from repro.sim.batch import BatchStore
from repro.sim.hotpath import hot_path
from repro.sim.kernel import Kernel
from repro.sim.rng import RandomStream

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

from .address import BDAddr
from .btclock import CLKN_WRAP, BluetoothClock
from .constants import (
    INQUIRY_RESPONSE_DELAY_TICKS,
    NUM_INQUIRY_FREQUENCIES,
    SCAN_FREQUENCY_CHANGE_TICKS,
    TICKS_PER_SLOT,
    TRAIN_SIZE,
)
from .hopping import InquiryTransmitSchedule
from .packets import FHSPacket
from .scan import (
    BackoffReentry,
    PhaseMode,
    ResponseMode,
    ScanConfig,
    ScannerState,
    ScannerStats,
)

#: Row lifecycle codes (the ``state`` column).  Values mirror
#: :class:`~repro.bluetooth.scan.ScannerState` one for one.
_IDLE = 0
_SEEKING = 1
_BACKOFF = 2
_RESPONDING = 3
_DONE = 4
_EXHAUSTED = 5
_STOPPED = 6

_STATE_NAMES: tuple[ScannerState, ...] = (
    ScannerState.IDLE,
    ScannerState.SEEKING,
    ScannerState.BACKOFF,
    ScannerState.RESPONDING,
    ScannerState.DONE,
    ScannerState.EXHAUSTED,
    ScannerState.STOPPED,
)

#: Pending-action codes (the ``action`` column): what a row does when
#: its due tick arrives.  Each maps to one object-engine callback.
_ACT_SEEK = 1  # InquiryScanner._seek
_ACT_HEAR = 2  # InquiryScanner._on_first_hear
_ACT_BACKOFF_END = 3  # InquiryScanner._after_backoff
_ACT_RESPOND = 4  # InquiryScanner._respond

#: Phase-mode codes (precomputed from the shared ScanConfig).
_PHASE_FIXED = 0
_PHASE_SEQUENCE = 1
_PHASE_TRAIN_LOCKED = 2

#: Response-mode codes.
_MODE_CONTINUOUS = 0
_MODE_BACKOFF_EACH = 1
_MODE_SINGLE = 2

_PHASE_CODES: Mapping[PhaseMode, int] = MappingProxyType(
    {
        PhaseMode.FIXED: _PHASE_FIXED,
        PhaseMode.SEQUENCE: _PHASE_SEQUENCE,
        PhaseMode.TRAIN_LOCKED: _PHASE_TRAIN_LOCKED,
    }
)

_MODE_CODES: Mapping[ResponseMode, int] = MappingProxyType(
    {
        ResponseMode.CONTINUOUS: _MODE_CONTINUOUS,
        ResponseMode.BACKOFF_EACH: _MODE_BACKOFF_EACH,
        ResponseMode.SINGLE: _MODE_SINGLE,
    }
)

#: Longest rendezvous segment the timetable cache serves.  One phase
#: segment is at most ``SCAN_FREQUENCY_CHANGE_TICKS`` long, so every
#: phase-bounded segment qualifies; only FIXED-phase segments (bounded
#: by the scan window alone) can exceed it and fall back to a direct
#: schedule walk.
_TX_SEGMENT_MAX = SCAN_FREQUENCY_CHANGE_TICKS

#: Span of each cached per-position transmit timetable.  Tables are
#: aligned to absolute ``[block * span, (block + 1) * span)`` blocks so
#: slaves querying the same position at scattered ticks (seek re-arms
#: are uniformly spread across a piconet) share tables regardless of
#: query order; a rolling start would be invalidated by every query
#: behind it.  Twice the segment bound, so one segment touches at most
#: two blocks.  (Bounding the span also keeps the underlying schedule
#: walk finite for never-transmitted positions.)
_TX_TABLE_SPAN = 2 * SCAN_FREQUENCY_CHANGE_TICKS


class InquiryScanSwarm:
    """All inquiry-scanning slaves of one piconet, advanced in batch.

    One swarm serves one master schedule/channel pair and one shared
    :class:`ScanConfig`; per-slave variation (clock offset, base phase,
    window anchor, horizon, RNG stream) lives in the store columns.
    """

    def __init__(
        self,
        kernel: Kernel,
        schedule: InquiryTransmitSchedule,
        channel: ResponseChannel,
        config: Optional[ScanConfig] = None,
        metrics: Optional["MetricsRegistry"] = None,
        name: str = "swarm",
    ) -> None:
        self.kernel = kernel
        self.schedule = schedule
        self.channel = channel
        self.config = config if config is not None else ScanConfig()
        self.name = name
        self.store = BatchStore(
            "offset",  # device clock offset (CLKN = tick + offset mod 2^28)
            "base",  # base sequence position (hop-frequency state)
            "anchor",  # scan-window anchor, already mod interval
            "horizon",  # scanning stops at this tick
            "state",  # lifecycle (power mode) code
            "action",  # pending-action code for the next due tick
            "ids_heard",
            "backoffs",
            "responses",
            "first_heard",  # -1 until the first ID is heard
            "first_response",  # -1 until the first FHS is sent
        )
        # Column aliases for the hot loop (array objects are stable).
        self._offset = self.store.column("offset")
        self._base = self.store.column("base")
        self._anchor = self.store.column("anchor")
        self._horizon = self.store.column("horizon")
        self._state = self.store.column("state")
        self._action = self.store.column("action")
        self._ids_heard = self.store.column("ids_heard")
        self._backoffs = self.store.column("backoffs")
        self._responses = self.store.column("responses")
        self._first_heard = self.store.column("first_heard")
        self._first_response = self.store.column("first_response")
        # Per-row Python objects the columns cannot hold.
        self._addresses: list[BDAddr] = []
        self._rngs: list[RandomStream] = []
        self._names: list[str] = []
        self._response_ticks: list[list[int]] = []
        # Shared-config scalars, predigested so the hot loop does no
        # enum dispatch or dataclass attribute chasing.
        cfg = self.config
        self._window_ticks = cfg.window_ticks
        self._interval_ticks = cfg.interval_ticks
        self._continuous = cfg.is_continuous
        self._phase_code = _PHASE_CODES[cfg.phase_mode]
        self._reentry_immediate = cfg.backoff_reentry is BackoffReentry.IMMEDIATE
        self._backoff_max = cfg.backoff_max_slots
        self._response_timeout = cfg.response_timeout_ticks
        self._mode_code = _MODE_CODES[cfg.response_mode]
        self._sequence = schedule.sequence
        self._label = f"swarm:{name}"
        # Reusable same-advance FHS batch (flushed every advance).
        self._batch: list[FHSPacket] = []
        # Shared per-position transmit timetables: sorted tx ticks of
        # position p within one block-aligned span, answered by
        # bisection.  One schedule walk per refilled block replaces one
        # walk per rendezvous query, and every slave of the piconet
        # shares the tables — the cross-slave sharing a per-object
        # scanner cannot express (its cache keys embed each slave's own
        # segment end).  Two slots per position (flat, index 2p/2p+1)
        # keep adjacent blocks live so stragglers behind a block
        # boundary don't evict the block everyone else is using.
        # Entries never go stale: the schedule is immutable.
        self._tt_tables: list[tuple[int, ...]] = [()] * (2 * NUM_INQUIRY_FREQUENCIES)
        self._tt_blocks = [-1] * (2 * NUM_INQUIRY_FREQUENCIES)
        if metrics is not None:
            self._m_ids_heard = metrics.counter("bt.scan.ids_heard")
            self._m_backoffs = metrics.counter("bt.scan.backoffs")
            self._m_responses = metrics.counter("bt.scan.responses_sent")
            self._m_advances = metrics.counter("sim.batch.advances")
            self._m_steps = metrics.counter("sim.batch.slave_steps")
        else:
            self._m_ids_heard = None
            self._m_backoffs = None
            self._m_responses = None
            self._m_advances = None
            self._m_steps = None

    # -- population -------------------------------------------------------

    @property
    def slave_count(self) -> int:
        """Number of slaves (rows) ever added to this swarm."""
        return self.store.size

    def add_slave(
        self,
        address: BDAddr,
        rng: RandomStream,
        clock: Optional[BluetoothClock] = None,
        base_phase: int = 0,
        window_anchor: Optional[int] = None,
        horizon_tick: int = 1 << 62,
        name: str = "",
    ) -> "SwarmSlave":
        """Add one slave; defaults mirror ``InquiryScanner.__init__``."""
        if clock is None:
            clock = BluetoothClock()
        if not 0 <= base_phase < NUM_INQUIRY_FREQUENCIES:
            raise ValueError(f"base_phase out of range: {base_phase}")
        anchor = window_anchor if window_anchor is not None else clock.offset
        row = self.store.add_row(
            offset=clock.offset,
            base=base_phase,
            anchor=anchor % self._interval_ticks,
            horizon=horizon_tick,
            state=_IDLE,
            action=0,
            first_heard=-1,
            first_response=-1,
        )
        self._addresses.append(address)
        self._rngs.append(rng)
        self._names.append(name or str(address))
        self._response_ticks.append([])
        return SwarmSlave(self, row)

    # -- per-row control (mirrors InquiryScanner.start/stop) ---------------

    def start_row(self, row: int, at_tick: Optional[int] = None) -> None:
        """Begin scanning for one row (immediately, or at ``at_tick``)."""
        if self._state[row] != _IDLE:
            raise RuntimeError(
                f"slave {self._names[row]} already started "
                f"({_STATE_NAMES[self._state[row]].value})"
            )
        now = self.kernel.now
        begin = max(now, at_tick if at_tick is not None else now)
        self._state[row] = _SEEKING
        self._action[row] = _ACT_SEEK
        self._queue(begin, row)

    def stop_row(self, row: int) -> None:
        """Abort scanning for one row (left coverage / powered down).

        The row's pending due entry is left in place and skipped when it
        surfaces — the batched analogue of the object engine's event
        tombstone.
        """
        self._state[row] = _STOPPED

    def state_of(self, row: int) -> ScannerState:
        """The row's lifecycle state as the object-engine enum."""
        return _STATE_NAMES[self._state[row]]

    def stats_of(self, row: int) -> ScannerStats:
        """The row's counters as an object-engine ``ScannerStats``."""
        first_heard = self._first_heard[row]
        first_response = self._first_response[row]
        return ScannerStats(
            ids_heard=self._ids_heard[row],
            backoffs=self._backoffs[row],
            responses=self._responses[row],
            first_heard_tick=None if first_heard < 0 else first_heard,
            first_response_tick=None if first_response < 0 else first_response,
            response_ticks=list(self._response_ticks[row]),
        )

    # -- frequency / window geometry (mirrors InquiryScanner) --------------

    def listen_position(self, row: int, tick: int) -> int:
        """Sequence position the row listens on at ``tick``.

        Integer-only replay of ``InquiryScanner.listen_position`` (and
        so of ``BluetoothClock.scan_phase``); called from the hot loop.
        """
        clkn = (tick + self._offset[row]) % CLKN_WRAP
        step = clkn // SCAN_FREQUENCY_CHANGE_TICKS
        code = self._phase_code
        base = self._base[row]
        if code == _PHASE_FIXED:
            return base
        if code == _PHASE_SEQUENCE:
            return (base + step) % NUM_INQUIRY_FREQUENCIES
        # TRAIN_LOCKED: walk the 16 positions of the starting train.
        train_start = base - base % TRAIN_SIZE
        return train_start + (base % TRAIN_SIZE + step) % TRAIN_SIZE

    def _tx_table(self, position: int, block: int) -> tuple[int, ...]:
        """The master's tx ticks for ``position`` within timetable block
        ``block`` (``[block * span, (block + 1) * span)``), cached.

        Of the position's two slots, a miss refills the one holding the
        older block, keeping the most recent block resident for the
        rest of the piconet.
        """
        index = position + position
        blocks = self._tt_blocks
        if blocks[index] == block:
            return self._tt_tables[index]
        if blocks[index + 1] == block:
            return self._tt_tables[index + 1]
        if blocks[index] > blocks[index + 1]:
            index += 1
        start = block * _TX_TABLE_SPAN
        table = self.schedule.tx_ticks_of_position(
            position, start, start + _TX_TABLE_SPAN
        )
        blocks[index] = block
        self._tt_tables[index] = table
        return table

    def next_hear(
        self, row: int, from_tick: int, ignore_windows: bool = False
    ) -> Optional[int]:
        """First tick >= ``from_tick`` at which the row hears an ID.

        Integer-only replay of ``scan.next_listen_rendezvous`` clipped
        to the row's horizon: intersect the scan windows (unless
        ignored), the 1.28 s phase segments, and the master schedule.
        Master-idle stretches are skipped in one ``next_active`` jump
        instead of being walked segment by segment — no transmission
        can land outside the schedule's windows.
        """
        before = self._horizon[row]
        always = ignore_windows or self._continuous
        window_ticks = self._window_ticks
        interval = self._interval_ticks
        anchor = self._anchor[row]
        code = self._phase_code
        fixed = code == _PHASE_FIXED
        sequence = code == _PHASE_SEQUENCE
        offset = self._offset[row]
        base = self._base[row]
        train_start = base - base % TRAIN_SIZE
        base_in_train = base % TRAIN_SIZE
        next_active = self.schedule.windows.next_active
        lookup = self.schedule.next_tx_of_position
        tick = from_tick
        while tick < before:
            active = next_active(tick)
            if active is None:
                return None
            if active > tick:
                tick = active
                if tick >= before:
                    return None
            if always:
                limit = before
            else:
                index = (tick - anchor) // interval
                w_start = anchor + index * interval
                if w_start + window_ticks <= tick:
                    w_start += interval
                if w_start >= before:
                    return None
                if tick < w_start:
                    tick = w_start
                limit = w_start + window_ticks
                if limit > before:
                    limit = before
            if fixed:
                segment_end = limit
                position = base
            else:
                # Inline of listen_position(row, tick): one clkn
                # computation feeds both the segment end and the
                # position, saving a call in the hottest loop.
                clkn = (tick + offset) % CLKN_WRAP
                segment_end = (
                    tick
                    + SCAN_FREQUENCY_CHANGE_TICKS
                    - clkn % SCAN_FREQUENCY_CHANGE_TICKS
                )
                if segment_end > limit:
                    segment_end = limit
                step = clkn // SCAN_FREQUENCY_CHANGE_TICKS
                if sequence:
                    position = (base + step) % NUM_INQUIRY_FREQUENCIES
                else:  # TRAIN_LOCKED
                    position = train_start + (base_in_train + step) % TRAIN_SIZE
            if segment_end - tick <= _TX_SEGMENT_MAX:
                # Phase-bounded segment: answer from the position's
                # cached timetable.  Clipping the table to the row's
                # segment gives exactly the bounded first-tx lookup,
                # because a tx instant is independent of the cutoff.
                block = tick // _TX_TABLE_SPAN
                table = self._tx_table(position, block)
                index = bisect_left(table, tick)
                if index < len(table):
                    candidate = table[index]
                    if candidate < segment_end:
                        return candidate
                    # candidate >= segment_end: no tx in the segment.
                else:
                    # No tx in [tick, block end); the segment may spill
                    # into the next block (it is at most half a span
                    # long, so never further).
                    boundary = (block + 1) * _TX_TABLE_SPAN
                    if segment_end > boundary:
                        table = self._tx_table(position, block + 1)
                        if table and table[0] < segment_end:
                            return table[0]
            else:
                heard = lookup(position, tick, segment_end)
                if heard is not None:
                    return heard
            tick = segment_end
        return None

    # -- the batched state machine ----------------------------------------

    def _queue(self, tick: int, row: int) -> None:
        """File ``row`` for ``tick``; first filer posts the kernel event."""
        if self.store.push_due(tick, row):
            self.kernel.post_at(tick, self._on_advance, self._label)

    @hot_path
    def _on_advance(self) -> None:
        """Advance every row due now — the swarm's one kernel callback.

        Rows are processed in FIFO order (= the object engine's event
        sequence order); FHS responses produced during the pass are
        collected and announced to the channel in one batched call at
        the end (safe: deliveries never share a tick with hear/respond
        steps — see the module docstring).
        """
        now = self.kernel.now
        rows = self.store.advance(now)
        state = self._state
        action = self._action
        batch = self._batch
        batch_tick = -1
        batch_channel = -1
        for row in rows:
            if state[row] == _STOPPED:
                continue  # tombstoned by stop_row; nothing pending
            act = action[row]
            if act == _ACT_RESPOND:
                tx_tick, rf_channel = self._step_respond(row, now)
                if batch_tick < 0:
                    batch_tick = tx_tick
                    batch_channel = rf_channel
                elif tx_tick != batch_tick or rf_channel != batch_channel:
                    # Distinct keys within one advance cannot happen for
                    # slaves of one master (same hear tick -> same
                    # position); handled anyway so the invariant is
                    # local, not load-bearing.
                    self.channel.schedule_fhs_batch(batch_tick, batch_channel, batch)
                    batch.clear()
                    batch_tick = tx_tick
                    batch_channel = rf_channel
            elif act == _ACT_HEAR:
                self._step_first_hear(row, now)
            elif act == _ACT_BACKOFF_END:
                self._step_after_backoff(row, now)
            else:  # _ACT_SEEK
                self._step_seek(row, now)
        if batch:
            self.channel.schedule_fhs_batch(batch_tick, batch_channel, batch)
            batch.clear()
        if self._m_advances is not None:
            self._m_advances.inc()
            self._m_steps.inc(len(rows))

    def _step_seek(self, row: int, now: int) -> None:
        """Mirror of ``InquiryScanner._seek``."""
        heard = self.next_hear(row, now)
        if heard is None:
            self._state[row] = _EXHAUSTED
            return
        self._state[row] = _SEEKING
        self._action[row] = _ACT_HEAR
        self._queue(heard, row)

    def _step_first_hear(self, row: int, now: int) -> None:
        """Mirror of ``InquiryScanner._on_first_hear``."""
        self._ids_heard[row] += 1
        if self._m_ids_heard is not None:
            self._m_ids_heard.inc()
        if self._first_heard[row] < 0:
            self._first_heard[row] = now
        self._begin_backoff(row, now)

    def _begin_backoff(self, row: int, now: int) -> None:
        """Mirror of ``InquiryScanner._begin_backoff`` (the only draw)."""
        self._backoffs[row] += 1
        if self._m_backoffs is not None:
            self._m_backoffs.inc()
        backoff_ticks = self._rngs[row].backoff_slots(self._backoff_max) * TICKS_PER_SLOT
        self._state[row] = _BACKOFF
        self._action[row] = _ACT_BACKOFF_END
        self._queue(now + backoff_ticks, row)

    def _step_after_backoff(self, row: int, now: int) -> None:
        """Mirror of ``InquiryScanner._after_backoff``."""
        ignore_windows = self._reentry_immediate
        heard = self.next_hear(row, now, ignore_windows)
        if heard is None:
            self._state[row] = _EXHAUSTED
            return
        # inqrespTO only measures continuous listening (see scan.py).
        if (
            (ignore_windows or self._continuous)
            and heard - now > self._response_timeout
        ):
            self._state[row] = _SEEKING
            self._action[row] = _ACT_HEAR
            self._queue(heard, row)
            return
        self._state[row] = _RESPONDING
        self._action[row] = _ACT_RESPOND
        self._queue(heard, row)

    def _step_respond(self, row: int, now: int) -> tuple[int, int]:
        """Mirror of ``InquiryScanner._respond`` minus the announce.

        Returns ``(tx_tick, rf_channel)``; the caller batches the
        actual channel announcement across same-advance responders.
        """
        self._ids_heard[row] += 1
        if self._m_ids_heard is not None:
            self._m_ids_heard.inc()
        position = self.listen_position(row, now)
        rf_channel = self._sequence[position]
        tx_tick = now + INQUIRY_RESPONSE_DELAY_TICKS
        self._batch.append(
            FHSPacket(
                sender=self._addresses[row],
                clkn=(tx_tick + self._offset[row]) % CLKN_WRAP,
                channel=rf_channel,
                tx_tick=tx_tick,
            )
        )
        self._responses[row] += 1
        if self._m_responses is not None:
            self._m_responses.inc()
        self._response_ticks[row].append(tx_tick)
        if self._first_response[row] < 0:
            self._first_response[row] = tx_tick
        mode = self._mode_code
        if mode == _MODE_SINGLE:
            self._state[row] = _DONE
            return tx_tick, rf_channel
        if mode == _MODE_BACKOFF_EACH:
            self._begin_backoff(row, now)
            return tx_tick, rf_channel
        # CONTINUOUS: answer the next ID heard, no further backoff —
        # unless the air goes quiet past inqrespTO.
        heard = self.next_hear(row, now + 1)
        if heard is None:
            self._state[row] = _EXHAUSTED
            return tx_tick, rf_channel
        if self._continuous and heard - now > self._response_timeout:
            self._state[row] = _SEEKING
            self._action[row] = _ACT_HEAR
            self._queue(heard, row)
            return tx_tick, rf_channel
        self._state[row] = _RESPONDING
        self._action[row] = _ACT_RESPOND
        self._queue(heard, row)
        return tx_tick, rf_channel

    def __repr__(self) -> str:
        return (
            f"InquiryScanSwarm(name={self.name!r}, slaves={self.store.size}, "
            f"pending_ticks={self.store.pending_ticks})"
        )


@dataclass(frozen=True)
class SwarmSlave:
    """A lightweight per-slave handle onto a swarm row.

    Duck-types the slice of :class:`InquiryScanner` the experiments and
    the BIPS facade use (``start``/``stop``/``state``/``stats``/
    ``listen_position``/``name``/``address``), so call sites branch
    only on construction, never on use.
    """

    swarm: InquiryScanSwarm
    row: int

    @property
    def address(self) -> BDAddr:
        """The slave's Bluetooth device address."""
        return self.swarm._addresses[self.row]

    @property
    def name(self) -> str:
        """The slave's display name."""
        return self.swarm._names[self.row]

    @property
    def state(self) -> ScannerState:
        """Lifecycle state (object-engine enum)."""
        return self.swarm.state_of(self.row)

    @property
    def stats(self) -> ScannerStats:
        """Counters, as an object-engine ``ScannerStats``."""
        return self.swarm.stats_of(self.row)

    def start(self, at_tick: Optional[int] = None) -> None:
        """Begin scanning (immediately, or at ``at_tick``)."""
        self.swarm.start_row(self.row, at_tick)

    def stop(self) -> None:
        """Abort scanning."""
        self.swarm.stop_row(self.row)

    def listen_position(self, tick: int) -> int:
        """Sequence position the slave listens on at ``tick``."""
        return self.swarm.listen_position(self.row, tick)

    def next_hear(self, from_tick: int, ignore_windows: bool = False) -> Optional[int]:
        """First tick >= ``from_tick`` at which the slave hears an ID."""
        return self.swarm.next_hear(self.row, from_tick, ignore_windows)


__all__ = ["InquiryScanSwarm", "SwarmSlave"]
