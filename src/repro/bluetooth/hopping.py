"""Inquiry hopping-sequence structure and transmit-schedule arithmetic.

The paper's experiments depend on the *structure* of the Bluetooth 1.1
inquiry procedure, all of which is implemented here:

* 32 dedicated inquiry frequencies drawn from the 79 RF channels,
  common to all devices (derived from the GIAC LAP);
* the 32 frequencies split into **train A** (sequence positions 0-15)
  and **train B** (positions 16-31);
* a train pass covers its 16 frequencies in 10 ms (two ID packets per
  even slot, odd slots listening);
* the master repeats a train N_inquiry = 256 times (2.56 s) before
  switching trains.

The central service this module provides is *inverse lookup*: "when is
sequence position ``p`` next transmitted at or after tick ``t``?"  That
lets the rest of the simulator be event-driven (no per-slot loop) while
remaining tick-exact.

The gate-level PERM5 hop-selection kernel of the spec is intentionally
not reproduced; the train structure above is the abstraction level of
BlueHoc, which the paper itself used (see DESIGN.md §2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterator, Optional

from repro.sim.hotpath import hot_path
from repro.sim.rng import RandomStream

from .constants import (
    GIAC_LAP,
    N_INQUIRY,
    NUM_INQUIRY_FREQUENCIES,
    NUM_RF_CHANNELS,
    TICKS_PER_TRAIN_DWELL,
    TICKS_PER_TRAIN_PASS,
    TRAIN_SIZE,
)


class Train(enum.IntEnum):
    """The two 16-frequency halves of the inquiry sequence."""

    A = 0
    B = 1

    @property
    def other(self) -> "Train":
        """The opposite train."""
        return Train.B if self is Train.A else Train.A


class TrainStrategy(enum.Enum):
    """Which trains a master uses during an inquiry window.

    * ``ALTERNATE`` — spec behaviour: 256 passes on one train, then
      switch (used by the Table-1 experiment's continuous inquiry).
    * ``A_ONLY`` / ``B_ONLY`` — single-train inquiry (the Figure-2
      simulation transmits "using only train A").
    """

    ALTERNATE = "alternate"
    A_ONLY = "a_only"
    B_ONLY = "b_only"


@lru_cache(maxsize=16)
def inquiry_sequence(lap: int = GIAC_LAP) -> tuple[int, ...]:
    """The 32-channel inquiry hopping sequence for an access-code LAP.

    All devices performing general inquiry share the GIAC, hence the
    same sequence; the result is deterministic in ``lap``.
    """
    if not 0 <= lap < (1 << 24):
        raise ValueError(f"LAP must be a 24-bit value, got {lap:#x}")
    stream = RandomStream(lap, "inquiry-sequence")
    channels = stream.sample(range(NUM_RF_CHANNELS), NUM_INQUIRY_FREQUENCIES)
    return tuple(channels)


#: Train membership by sequence position, precomputed (hot path).
_POSITION_TRAINS: tuple[Train, ...] = tuple(
    Train.A if p < TRAIN_SIZE else Train.B for p in range(NUM_INQUIRY_FREQUENCIES)
)

#: Pass-local transmit offset by sequence position, precomputed.
_TX_OFFSETS: tuple[int, ...] = tuple(
    ((p % TRAIN_SIZE) // 2) * 4 + (p % TRAIN_SIZE) % 2
    for p in range(NUM_INQUIRY_FREQUENCIES)
)

#: Cache-miss sentinel (None is a valid cached lookup result).
_MISS = object()

#: Upper bound on per-schedule ``next_tx_of_position`` memo entries.
#: At the bound, the oldest entry is evicted per insert (dicts iterate
#: in insertion order, so this is deterministic FIFO) — long runs keep
#: a full, useful cache instead of periodically dropping it wholesale.
_LOOKUP_CACHE_MAX = 65536


def train_of_position(position: int) -> Train:
    """Train membership of a sequence position (0-15 → A, 16-31 → B)."""
    if not 0 <= position < NUM_INQUIRY_FREQUENCIES:
        raise ValueError(f"position out of range: {position}")
    return _POSITION_TRAINS[position]


def tx_offset_of_position(position: int) -> int:
    """Tick offset of a train position within a 32-tick train pass.

    A pass interleaves transmit and listen slots: even slot *s* carries
    the two frequencies at train-local positions ``s`` and ``s + 1`` in
    its two half-slots, and the following odd slot listens for their
    responses.  Train-local position *p* is therefore transmitted at
    tick offset ``(p // 2) * 4 + (p % 2)``.

    >>> [tx_offset_of_position(p) for p in range(4)]
    [0, 1, 4, 5]
    """
    # (position % 32) % 16 == position % 16, so the table is exact for
    # out-of-range positions too.
    return _TX_OFFSETS[position % NUM_INQUIRY_FREQUENCIES]


@dataclass(frozen=True)
class Window:
    """One master inquiry window: ``[start, end)`` in ticks."""

    start: int
    end: int
    index: int

    @property
    def length(self) -> int:
        """Window length in ticks."""
        return self.end - self.start

    def contains(self, tick: int) -> bool:
        """Whether ``tick`` falls inside the window."""
        return self.start <= tick < self.end


@dataclass(frozen=True)
class PeriodicWindows:
    """A periodic on/off schedule: a window of ``window_ticks`` opens
    every ``period_ticks`` starting at ``start``.

    ``window_ticks == period_ticks`` models a continuously active master
    (the Table-1 experiment); the Figure-2 master uses 1 s windows on a
    5 s period.  ``count`` limits the number of windows (None = forever).
    """

    start: int
    window_ticks: int
    period_ticks: int
    count: Optional[int] = None

    def __post_init__(self) -> None:
        if self.window_ticks <= 0:
            raise ValueError(f"window_ticks must be positive: {self.window_ticks}")
        if self.period_ticks < self.window_ticks:
            raise ValueError(
                f"period {self.period_ticks} shorter than window {self.window_ticks}"
            )
        if self.count is not None and self.count <= 0:
            raise ValueError(f"count must be positive or None: {self.count}")

    @classmethod
    def continuous(cls, start: int = 0) -> "PeriodicWindows":
        """A single window covering all time from ``start`` on."""
        huge = 1 << 62
        return cls(start=start, window_ticks=huge, period_ticks=huge, count=1)

    def window(self, index: int) -> Window:
        """The ``index``-th window."""
        if index < 0 or (self.count is not None and index >= self.count):
            raise IndexError(f"window index out of range: {index}")
        w_start = self.start + index * self.period_ticks
        return Window(w_start, w_start + self.window_ticks, index)

    def first_index_ending_after(self, tick: int) -> Optional[int]:
        """Index of the first window whose end is after ``tick``."""
        if tick < self.start:
            return 0
        index = (tick - self.start) // self.period_ticks
        if self.count is not None and index >= self.count:
            return None
        if self.window(index).end <= tick:
            index += 1
        if self.count is not None and index >= self.count:
            return None
        return index

    def iter_windows(self, from_tick: int, before_tick: int) -> Iterator[Window]:
        """Yield windows overlapping ``[from_tick, before_tick)`` in order."""
        index = self.first_index_ending_after(from_tick)
        if index is None:
            return
        while self.count is None or index < self.count:
            window = self.window(index)
            if window.start >= before_tick:
                return
            yield window
            index += 1

    def containing(self, tick: int) -> Optional[Window]:
        """The window containing ``tick``, if any."""
        index = self.first_index_ending_after(tick)
        if index is None:
            return None
        window = self.window(index)
        return window if window.contains(tick) else None

    def is_active(self, tick: int) -> bool:
        """Whether some window contains ``tick``.

        Pure arithmetic (no :class:`Window` construction): this is the
        per-response master-side check, hit once per delivered FHS.
        """
        if tick < self.start:
            return False
        index, into_period = divmod(tick - self.start, self.period_ticks)
        if self.count is not None and index >= self.count:
            return False
        return into_period < self.window_ticks

    def next_active(self, tick: int) -> Optional[int]:
        """First tick >= ``tick`` inside some window (None = never).

        Pure arithmetic, like :meth:`is_active`.  The batched engine
        uses this to fast-forward rendezvous queries over master-idle
        air time in one jump instead of walking phase segments through
        it: no transmission can land outside the windows.
        """
        if tick < self.start:
            return self.start
        index, into_period = divmod(tick - self.start, self.period_ticks)
        if self.count is not None and index >= self.count:
            return None
        if into_period < self.window_ticks:
            return tick
        index += 1
        if self.count is not None and index >= self.count:
            return None
        return self.start + index * self.period_ticks


@dataclass
class InquiryTransmitSchedule:
    """The master's complete inquiry transmission plan.

    Combines the on/off window schedule with the train plan and answers
    the inverse-lookup query the scanners need.  Pass timing restarts at
    each window start (each window models a fresh HCI inquiry command).
    """

    windows: PeriodicWindows
    strategy: TrainStrategy = TrainStrategy.ALTERNATE
    start_train: Train = Train.A
    passes_per_dwell: int = N_INQUIRY
    lap: int = GIAC_LAP
    sequence: tuple[int, ...] = field(init=False)
    #: Inverse of ``sequence``: RF channel → sequence position.
    _position_of_channel: dict[int, int] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )
    #: Memo for :meth:`next_tx_of_position`.  Many scanners share one
    #: master schedule and issue identical (position, span) queries in
    #: the same slot, so repeats are common; the schedule's timing
    #: fields never change after construction, so entries never go
    #: stale.  Bounded by ``_LOOKUP_CACHE_MAX`` with FIFO eviction.
    _lookup_cache: dict[tuple[int, int, int], Optional[int]] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if self.passes_per_dwell <= 0:
            raise ValueError(f"passes_per_dwell must be positive: {self.passes_per_dwell}")
        self.sequence = inquiry_sequence(self.lap)
        self._position_of_channel = {
            channel: position for position, channel in enumerate(self.sequence)
        }

    # -- train plan --------------------------------------------------------

    def train_of_pass(self, pass_index: int) -> Train:
        """Which train the master transmits during pass ``pass_index``
        (counted from the start of the containing window)."""
        if self.strategy is TrainStrategy.A_ONLY:
            return Train.A
        if self.strategy is TrainStrategy.B_ONLY:
            return Train.B
        block = pass_index // self.passes_per_dwell
        return Train((self.start_train.value + block) % 2)

    def train_at(self, tick: int) -> Optional[Train]:
        """Train in use at ``tick`` (None when the master is idle)."""
        window = self.windows.containing(tick)
        if window is None:
            return None
        return self.train_of_pass((tick - window.start) // TICKS_PER_TRAIN_PASS)

    def _next_matching_pass(self, pass_index: int, train: Train) -> Optional[int]:
        """Smallest pass index >= ``pass_index`` transmitting ``train``."""
        if self.strategy is TrainStrategy.A_ONLY:
            return pass_index if train is Train.A else None
        if self.strategy is TrainStrategy.B_ONLY:
            return pass_index if train is Train.B else None
        if self.train_of_pass(pass_index) is train:
            return pass_index
        block = pass_index // self.passes_per_dwell
        return (block + 1) * self.passes_per_dwell

    # -- inverse lookup ------------------------------------------------------

    @hot_path
    def next_tx_of_position(
        self, position: int, from_tick: int, before_tick: int
    ) -> Optional[int]:
        """First tick in ``[from_tick, before_tick)`` at which the master
        transmits an ID packet on sequence position ``position``.

        Returns None if the position is not transmitted in that span
        (master idle, wrong train, or span exhausted).  Results are
        memoized per schedule — the schedule's timing state is
        immutable after construction, so the arithmetic below is a pure
        function of the arguments.
        """
        key = (position, from_tick, before_tick)
        cache = self._lookup_cache
        hit = cache.get(key, _MISS)
        if hit is not _MISS:
            return hit  # type: ignore[return-value]
        if len(cache) >= _LOOKUP_CACHE_MAX:
            del cache[next(iter(cache))]  # lint: disable=DET003 -- insertion-ordered dict; FIFO eviction is deterministic
        result = self._compute_next_tx(position, from_tick, before_tick)
        cache[key] = result
        return result

    def _compute_next_tx(
        self, position: int, from_tick: int, before_tick: int
    ) -> Optional[int]:
        train = train_of_position(position)
        offset = _TX_OFFSETS[position]
        for window in self.windows.iter_windows(from_tick, before_tick):
            base = max(from_tick, window.start)
            # Smallest pass index whose tx of `position` is >= base.
            relative = base - window.start - offset
            pass_index = max(0, -(-relative // TICKS_PER_TRAIN_PASS))
            while True:
                matching = self._next_matching_pass(pass_index, train)
                if matching is None:
                    break
                tick = window.start + matching * TICKS_PER_TRAIN_PASS + offset
                if tick >= before_tick:
                    return None
                if tick >= window.end:
                    break  # spills past this window; try the next one
                if tick >= base:
                    return tick
                pass_index = matching + 1
        return None

    @hot_path
    def tx_ticks_of_position(
        self, position: int, from_tick: int, before_tick: int
    ) -> tuple[int, ...]:
        """Every tick in ``[from_tick, before_tick)`` at which the master
        transmits an ID packet on sequence position ``position``, in
        increasing order.

        One walk over the window/pass structure enumerates the whole
        span, so callers that need many rendezvous points (the batched
        swarm engine precomputes per-position timetables and answers
        individual queries by bisection) pay the walk once instead of
        once per query.  ``tx_ticks_of_position(p, a, b)[0]`` always
        equals ``next_tx_of_position(p, a, b)`` when the result is
        non-empty.
        """
        train = train_of_position(position)
        offset = _TX_OFFSETS[position]
        # Matching passes come in runs: every pass under a single-train
        # strategy, whole dwell blocks under ALTERNATE.  Each run is an
        # arithmetic progression of ticks, emitted as one range() extend
        # instead of a per-pass loop.
        single_train = self.strategy is not TrainStrategy.ALTERNATE
        dwell = self.passes_per_dwell
        ticks: list[int] = []
        for window in self.windows.iter_windows(from_tick, before_tick):
            w_start = window.start
            base = max(from_tick, w_start)
            relative = base - w_start - offset
            pass_index = max(0, -(-relative // TICKS_PER_TRAIN_PASS))
            stop = window.end if window.end < before_tick else before_tick
            while True:
                matching = self._next_matching_pass(pass_index, train)
                if matching is None:
                    break
                first = w_start + matching * TICKS_PER_TRAIN_PASS + offset
                if first >= stop:
                    break
                if single_train:
                    run_stop = stop
                else:
                    block_end = (matching // dwell + 1) * dwell
                    run_stop = w_start + block_end * TICKS_PER_TRAIN_PASS + offset
                    if run_stop > stop:
                        run_stop = stop
                ticks.extend(range(first, run_stop, TICKS_PER_TRAIN_PASS))
                if run_stop >= stop:
                    break
                pass_index = (run_stop - w_start - offset) // TICKS_PER_TRAIN_PASS
        return tuple(ticks)

    def next_tx_of_channel(
        self, channel: int, from_tick: int, before_tick: int
    ) -> Optional[int]:
        """Like :meth:`next_tx_of_position` but keyed by RF channel."""
        position = self._position_of_channel.get(channel)
        if position is None:
            raise ValueError(f"channel {channel} not in inquiry sequence")
        return self.next_tx_of_position(position, from_tick, before_tick)

    def is_listening(self, tick: int) -> bool:
        """Whether the master can receive an FHS response at ``tick``.

        The master listens during its inquiry windows; a response landing
        after the window closed is lost.
        """
        return self.windows.is_active(tick)


def continuous_inquiry(
    start_train: Train = Train.A,
    start: int = 0,
    strategy: TrainStrategy = TrainStrategy.ALTERNATE,
) -> InquiryTransmitSchedule:
    """A master permanently in inquiry (the Table-1 experiment setup)."""
    return InquiryTransmitSchedule(
        windows=PeriodicWindows.continuous(start),
        strategy=strategy,
        start_train=start_train,
    )


def periodic_inquiry(
    window_ticks: int,
    period_ticks: int,
    start: int = 0,
    strategy: TrainStrategy = TrainStrategy.ALTERNATE,
    start_train: Train = Train.A,
    count: Optional[int] = None,
) -> InquiryTransmitSchedule:
    """A master alternating inquiry and connection management.

    The Figure-2 simulation uses ``window_ticks = 1 s``,
    ``period_ticks = 5 s`` and ``strategy = A_ONLY``; the §5 policy uses
    a 3.84 s window on a 15.4 s period with alternating trains.
    """
    return InquiryTransmitSchedule(
        windows=PeriodicWindows(start, window_ticks, period_ticks, count),
        strategy=strategy,
        start_train=start_train,
    )


__all__ = [
    "Train",
    "TrainStrategy",
    "Window",
    "PeriodicWindows",
    "InquiryTransmitSchedule",
    "inquiry_sequence",
    "train_of_position",
    "tx_offset_of_position",
    "continuous_inquiry",
    "periodic_inquiry",
    "TICKS_PER_TRAIN_PASS",
    "TICKS_PER_TRAIN_DWELL",
]
