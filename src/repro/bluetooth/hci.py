"""A BlueZ-flavoured host-controller interface facade.

The paper's implementation drives the radio through the Linux BlueZ
stack (HCI inquiry / create-connection commands and their completion
events).  This module provides the same command surface over the
simulated baseband, so the BIPS workstation code reads like the code
the authors would have written against BlueZ.

One caveat of the event-driven baseband: scanners compute their hear
times against a master's transmit schedule, so the schedule handed to
:class:`HostController` must describe the master's *entire* inquiry
plan up front (e.g. the periodic §5 duty cycle).  That matches BIPS,
whose masters run a fixed operational cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.kernel import Kernel
from repro.sim.rng import RandomStream

from .address import BDAddr
from .connection import Connection, DisconnectReason
from .device import BluetoothDevice
from .hopping import InquiryTransmitSchedule
from .inquiry import InquiryProcedure
from .packets import FHSPacket
from .page import PageOutcome, PageProcedure, PageResult
from .piconet import Piconet, PiconetFullError


@dataclass(frozen=True)
class ConnectionCompleteEvent:
    """Mirrors HCI Connection Complete."""

    address: BDAddr
    success: bool
    tick: int
    connection: Optional[Connection]


class HostController:
    """The master-side radio controller a BIPS workstation drives.

    Wires together the inquiry procedure, the pager and the piconet for
    one fixed master device.
    """

    def __init__(
        self,
        kernel: Kernel,
        device: BluetoothDevice,
        schedule: InquiryTransmitSchedule,
        rng: RandomStream,
        reachable: Optional[Callable[[FHSPacket, int], bool]] = None,
        supervision_timeout_ticks: Optional[int] = None,
    ) -> None:
        self.kernel = kernel
        self.device = device
        self.schedule = schedule
        self.inquiry = InquiryProcedure(
            kernel,
            schedule,
            name=device.label,
            on_discovered=self._on_discovered,
            reachable=reachable,
        )
        self.pager = PageProcedure(kernel, rng.child("pager"), name=device.label)
        piconet_kwargs = {}
        if supervision_timeout_ticks is not None:
            piconet_kwargs["supervision_timeout_ticks"] = supervision_timeout_ticks
        self.piconet = Piconet(master=device.address, **piconet_kwargs)
        self._inquiry_listeners: list[Callable[[FHSPacket, int], None]] = []
        self.connection_events: list[ConnectionCompleteEvent] = []

    # -- inquiry -----------------------------------------------------------

    def on_inquiry_result(self, listener: Callable[[FHSPacket, int], None]) -> None:
        """Register a callback for each new inquiry result."""
        self._inquiry_listeners.append(listener)

    def _on_discovered(self, packet: FHSPacket, tick: int) -> None:
        for listener in self._inquiry_listeners:
            listener(packet, tick)

    # -- connections ---------------------------------------------------------

    def create_connection(
        self,
        target: BluetoothDevice,
        callback: Optional[Callable[[ConnectionCompleteEvent], None]] = None,
        scanning: bool = True,
    ) -> None:
        """Page ``target`` and attach it to the piconet on success.

        ``scanning=False`` models paging a device that is no longer
        listening (it will time out), which is how a workstation probes
        whether a silent device actually left.
        """

        def on_page_done(result: PageResult) -> None:
            event = self._complete_connection(target, result)
            if callback is not None:
                callback(event)

        self.pager.page(
            target.address, target.page_scan_behavior(scanning=scanning), on_page_done
        )

    def _complete_connection(
        self, target: BluetoothDevice, result: PageResult
    ) -> ConnectionCompleteEvent:
        connection: Optional[Connection] = None
        success = result.outcome is PageOutcome.CONNECTED
        if success:
            try:
                connection = self.piconet.attach(target.address, result.finished_tick)
            except (PiconetFullError, ValueError):
                success = False
        event = ConnectionCompleteEvent(
            address=target.address,
            success=success,
            tick=result.finished_tick,
            connection=connection,
        )
        self.connection_events.append(event)
        return event

    def disconnect(self, address: BDAddr, reason: DisconnectReason) -> Optional[Connection]:
        """Close the link to ``address``, if it exists."""
        return self.piconet.detach(address, self.kernel.now, reason)

    def expire_stale_links(self) -> list[Connection]:
        """Run supervision: drop links that went silent too long."""
        return self.piconet.expire_supervision(self.kernel.now)

    def __repr__(self) -> str:
        return (
            f"HostController(device={self.device.label!r}, "
            f"discovered={self.inquiry.discovered_count}, "
            f"piconet={self.piconet.active_count})"
        )
