"""Baseband packet types.

Only the fields the simulation acts on are modelled; payloads are
opaque.  Packet kinds follow the Bluetooth 1.1 baseband:

* ``ID`` — the inquiry/page probe: just an access code, no payload;
* ``FHS`` — frequency-hop-synchronisation: the inquiry response and the
  page handshake carrier, holding the sender's BD_ADDR and clock;
* ``POLL`` / ``NULL`` — link-maintenance packets inside a connection;
* ``DM1`` — a data packet (used for the BIPS application traffic).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

from .address import BDAddr


class PacketType(enum.Enum):
    """Baseband packet kinds used in the simulation."""

    ID = "id"
    FHS = "fhs"
    POLL = "poll"
    NULL = "null"
    DM1 = "dm1"


@dataclass(frozen=True)
class IDPacket:
    """An inquiry or page probe: carries only the access code LAP."""

    lap: int
    channel: int
    tx_tick: int

    type: PacketType = PacketType.ID


@dataclass(frozen=True)
class FHSPacket:
    """Frequency-hop-synchronisation packet.

    As an inquiry response it tells the inquirer who the scanner is and
    what its native clock reads, which is exactly what a master needs in
    order to page the device later.
    """

    sender: BDAddr
    clkn: int
    channel: int
    tx_tick: int

    type: PacketType = PacketType.FHS


@dataclass(frozen=True)
class PollPacket:
    """Master keep-alive inside a connection; solicits a response."""

    sender: BDAddr
    tx_tick: int

    type: PacketType = PacketType.POLL


@dataclass(frozen=True)
class NullPacket:
    """Slave acknowledgement with no payload."""

    sender: BDAddr
    tx_tick: int

    type: PacketType = PacketType.NULL


@dataclass(frozen=True)
class DM1Packet:
    """A 1-slot data packet carrying up to 17 bytes of payload.

    The BIPS application layer rides on these; ``payload`` is opaque to
    the baseband.
    """

    sender: BDAddr
    tx_tick: int
    payload: Any = None
    destination: Optional[BDAddr] = None

    type: PacketType = PacketType.DM1

    #: Maximum user payload of a DM1 packet in bytes (Bluetooth 1.1).
    MAX_PAYLOAD_BYTES = 17
