"""The master side of device discovery: the inquiry procedure.

The master broadcasts ID packets according to an
:class:`~repro.bluetooth.hopping.InquiryTransmitSchedule` and collects
FHS responses arriving on its :class:`~repro.radio.ResponseChannel`.
Responses landing outside an inquiry window are lost (the radio has
moved on to connection management).

The procedure records, per responding device, the tick of the *first*
response received — exactly the quantity the paper measures ("the
interval ... ends when the master receives the answer from the slave to
the inquiry message").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.obs.events import DeviceDiscovered
from repro.radio.channel import ReachabilityPredicate, ResponseChannel
from repro.sim.clock import seconds_from_ticks
from repro.sim.kernel import Kernel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.events import EventBus
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracing import SpanTracer

from .address import BDAddr
from .hopping import InquiryTransmitSchedule
from .packets import FHSPacket

#: Callback fired on each *new* device discovery: ``(packet, tick)``.
DiscoveryListener = Callable[[FHSPacket, int], None]


@dataclass(frozen=True)
class InquiryResult:
    """One discovered device, HCI-inquiry-result style."""

    address: BDAddr
    clkn: int
    discovered_tick: int

    @property
    def discovered_seconds(self) -> float:
        """Discovery time in seconds of simulated time."""
        return seconds_from_ticks(self.discovered_tick)


class InquiryProcedure:
    """A master running device discovery on a given transmit schedule."""

    #: An FHS packet occupies a full slot (625 µs = 2 ticks) on the air.
    #: The master has a single receiver, so while it is capturing one
    #: response it cannot tune to the other response half-slot of the
    #: same listening slot — the second response of a pair is lost.
    FHS_RX_TICKS = 2

    def __init__(
        self,
        kernel: Kernel,
        schedule: InquiryTransmitSchedule,
        name: str = "master",
        on_discovered: Optional[DiscoveryListener] = None,
        reachable: Optional[ReachabilityPredicate] = None,
        receiver_capture: bool = True,
        metrics: Optional["MetricsRegistry"] = None,
        events: Optional["EventBus"] = None,
        spans: Optional["SpanTracer"] = None,
    ) -> None:
        self.kernel = kernel
        self.schedule = schedule
        self.name = name
        self.on_discovered = on_discovered
        self.receiver_capture = receiver_capture
        self._events = events
        self._spans = spans
        if metrics is not None:
            self._m_responses = metrics.counter("bt.inquiry.responses_received")
            self._m_missed = metrics.counter("bt.inquiry.responses_missed")
            self._m_blocked = metrics.counter("bt.inquiry.responses_blocked")
            self._m_discoveries = metrics.counter("bt.inquiry.devices_discovered")
        else:
            self._m_responses = None
            self._m_missed = None
            self._m_blocked = None
            self._m_discoveries = None
        self.channel = ResponseChannel(
            kernel, receiver=self._on_fhs, reachable=reachable, name=name
        )
        self._results: dict[BDAddr, InquiryResult] = {}
        #: Tick of the most recent successful response per device —
        #: duplicates included, so a tracker can tell "seen this window"
        #: apart from "first discovered long ago".
        self.last_seen: dict[BDAddr, int] = {}
        self.responses_received = 0
        self.responses_missed = 0  # arrived while the master was not listening
        self.responses_blocked = 0  # lost because the receiver was busy
        self._receiver_busy_until = -1

    # -- reception ---------------------------------------------------------

    def _on_fhs(self, packet: FHSPacket, tick: int) -> None:
        if not self.schedule.is_listening(tick):
            self.responses_missed += 1
            if self._m_missed is not None:
                self._m_missed.inc()
            return
        if self.receiver_capture:
            if tick < self._receiver_busy_until:
                self.responses_blocked += 1
                if self._m_blocked is not None:
                    self._m_blocked.inc()
                return
            self._receiver_busy_until = tick + self.FHS_RX_TICKS
        self.responses_received += 1
        if self._m_responses is not None:
            self._m_responses.inc()
        if self._spans is not None:
            self._spans.instant(
                "bt.response", "bluetooth", tick,
                master=self.name, sender=str(packet.sender),
            )
        self.last_seen[packet.sender] = tick
        if packet.sender in self._results:
            return
        result = InquiryResult(address=packet.sender, clkn=packet.clkn, discovered_tick=tick)
        self._results[packet.sender] = result
        if self._m_discoveries is not None:
            self._m_discoveries.inc()
        if self._spans is not None:
            self._spans.instant(
                "bt.discovery", "bluetooth", tick,
                master=self.name, sender=str(packet.sender),
            )
        if self._events is not None:
            self._events.emit(
                DeviceDiscovered(tick=tick, master=self.name, address=str(packet.sender))
            )
        if self.on_discovered is not None:
            self.on_discovered(packet, tick)

    # -- queries -----------------------------------------------------------

    @property
    def results(self) -> list[InquiryResult]:
        """All discoveries so far, in discovery order."""
        return sorted(self._results.values(), key=lambda r: r.discovered_tick)

    @property
    def discovered_count(self) -> int:
        """Number of distinct devices discovered."""
        return len(self._results)

    def has_discovered(self, address: BDAddr) -> bool:
        """Whether ``address`` has responded successfully."""
        return address in self._results

    def discovery_tick(self, address: BDAddr) -> Optional[int]:
        """Tick of first successful response from ``address``, if any."""
        result = self._results.get(address)
        return result.discovered_tick if result is not None else None

    def discovered_by(self, tick: int) -> int:
        """How many distinct devices were discovered at or before ``tick``."""
        return sum(
            1 for r in self._results.values() if r.discovered_tick <= tick  # lint: disable=DET003 -- commutative count; order cannot reach the result
        )

    def forget(self, address: BDAddr) -> None:
        """Drop a device from the discovered set.

        BIPS workstations call this when a device's presence lapses so a
        re-appearing device counts as a fresh discovery.
        """
        self._results.pop(address, None)

    def reset(self) -> None:
        """Clear all discovery state (fresh inquiry round)."""
        self._results.clear()

    def __repr__(self) -> str:
        return (
            f"InquiryProcedure(name={self.name!r}, discovered={len(self._results)}, "
            f"responses={self.responses_received})"
        )
