"""Pure-stdlib timing harness for the pinned benchmark suite.

Design points (see docs/performance.md):

* A benchmark *case* is a factory returning a zero-argument workload;
  the workload returns the number of units it processed (events,
  lookups, simulated ticks).  Building the workload is outside the
  timed region, so setup cost never pollutes the measurement.
* Each case runs ``repeats`` times; the report keeps the median and
  p90 of the per-repeat wall time and the unit rate derived from the
  median (median is robust to one noisy repeat, p90 documents spread).
* Every run also times a fixed pure-Python **calibration** workload
  and records each case's rate *relative* to it.  Absolute rates are
  machine-speed artefacts; the normalized score cancels the host out,
  which is what makes a committed ``benchmarks/baseline.json``
  comparable across laptops and CI runners.
"""

from __future__ import annotations

import gc
import math
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

#: A benchmark workload: runs once, returns units processed.
Workload = Callable[[], int]

#: Builds a fresh workload (fresh kernel, fresh schedule, ...) per repeat.
WorkloadFactory = Callable[[], Workload]


class BenchSkip(Exception):
    """Raised by a workload factory when the case cannot run here.

    Used when a case exercises an API the checked-out code does not
    have (e.g. the calendar scheduler on a pre-fast-path kernel), so
    the same suite can be pointed at older revisions for comparison.
    """


@dataclass(frozen=True)
class BenchCase:
    """One pinned benchmark: a name, a workload factory, parameters.

    ``params`` feed the config digest: change a workload's shape and
    the digest changes, which voids baseline comparisons for the case
    instead of silently comparing different experiments.
    """

    name: str
    factory: WorkloadFactory
    unit: str
    params: tuple[tuple[str, object], ...] = ()
    #: Cases tagged ``smoke`` form the CI regression gate.  Only
    #: pure-CPU cases belong there: their normalized score tracks the
    #: calibration loop even on a contended host, whereas the
    #: allocation-heavy experiment cases swing with memory pressure
    #: and are tracked by the full suite without gating CI.
    smoke: bool = True


@dataclass
class CaseResult:
    """Timing outcome of one case."""

    name: str
    unit: str
    units: int
    repeats: int
    median_s: float
    p90_s: float
    rate_per_s: float
    #: ``rate_per_s / calibration rate`` — the machine-neutral score.
    normalized: float
    samples_s: list[float] = field(default_factory=list)
    skipped: bool = False
    skip_reason: str = ""


def percentile(sorted_samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list."""
    if not sorted_samples:
        raise ValueError("no samples")
    rank = max(0, math.ceil(fraction * len(sorted_samples)) - 1)
    return sorted_samples[min(rank, len(sorted_samples) - 1)]


def median(sorted_samples: list[float]) -> float:
    """Median of an already-sorted sample list."""
    if not sorted_samples:
        raise ValueError("no samples")
    mid = len(sorted_samples) // 2
    if len(sorted_samples) % 2:
        return sorted_samples[mid]
    return 0.5 * (sorted_samples[mid - 1] + sorted_samples[mid])


#: Iterations of the calibration loop (fixed: part of the contract).
CALIBRATION_ITERATIONS = 400_000


def calibration_workload() -> int:
    """The fixed pure-Python workload every run is normalized against.

    Deliberately boring: integer arithmetic, attribute-free, no
    allocation-heavy tricks — a proxy for "how fast does this host run
    plain CPython bytecode", which is the denominator that makes bench
    scores portable.
    """
    total = 0
    for i in range(CALIBRATION_ITERATIONS):
        total += i ^ (i >> 3)
    # Consume the result so the loop cannot be argued away.
    return CALIBRATION_ITERATIONS + (total & 1)


def time_workload(workload: Workload) -> tuple[float, int]:
    """Run ``workload`` once; return (elapsed seconds, units).

    The cyclic collector is drained, then paused, around the timed
    region: collection pauses land on whichever repeat happens to
    cross a GC threshold, which shows up as 30-50 % run-to-run noise
    on the allocation-heavy experiment workloads.  Refcounting still
    reclaims everything the workloads free; only cycle detection
    waits until after the measurement.
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        units = workload()
        elapsed = time.perf_counter() - started
    finally:
        if was_enabled:
            gc.enable()
    return elapsed, units


def measure_case(
    case: BenchCase, repeats: int, calibration_rate: float
) -> CaseResult:
    """Run one case ``repeats`` times and summarise."""
    if repeats <= 0:
        raise ValueError(f"repeats must be positive: {repeats}")
    samples: list[float] = []
    units = 0
    try:
        for _ in range(repeats):
            workload = case.factory()
            elapsed, units = time_workload(workload)
            samples.append(elapsed)
    except BenchSkip as skip:
        return CaseResult(
            name=case.name,
            unit=case.unit,
            units=0,
            repeats=0,
            median_s=0.0,
            p90_s=0.0,
            rate_per_s=0.0,
            normalized=0.0,
            skipped=True,
            skip_reason=str(skip),
        )
    samples.sort()
    median_s = median(samples)
    rate = units / median_s if median_s > 0 else 0.0
    return CaseResult(
        name=case.name,
        unit=case.unit,
        units=units,
        repeats=repeats,
        median_s=median_s,
        p90_s=percentile(samples, 0.9),
        rate_per_s=rate,
        normalized=rate / calibration_rate if calibration_rate > 0 else 0.0,
        samples_s=samples,
    )


def measure_calibration(repeats: int) -> tuple[float, float]:
    """Time the calibration workload; return (median seconds, rate)."""
    samples: list[float] = []
    units = 0
    for _ in range(max(3, repeats)):
        elapsed, units = time_workload(calibration_workload)
        samples.append(elapsed)
    samples.sort()
    median_s = median(samples)
    return median_s, (units / median_s if median_s > 0 else 0.0)


def run_suite(
    cases: list[BenchCase],
    repeats: int,
    progress: Optional[Callable[[str], None]] = None,
) -> tuple[list[CaseResult], float]:
    """Measure every case; returns (results, calibration rate)."""
    _, calibration_rate = measure_calibration(repeats)
    results = []
    for case in cases:
        if progress is not None:
            progress(case.name)
        results.append(measure_case(case, repeats, calibration_rate))
    return results, calibration_rate
