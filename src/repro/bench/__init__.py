"""Tracked performance benchmarks (the ``bips bench`` subcommand).

Pure-stdlib timing harness + a pinned suite covering the simulation
hot paths, with a committed baseline and a CI regression gate.  Layout:

* :mod:`repro.bench.harness` — timing, calibration, statistics;
* :mod:`repro.bench.suite` — the pinned workloads;
* :mod:`repro.bench.report` — ``BENCH_<rev>.json`` emit/compare/render;
* :mod:`repro.bench.cli` — argparse wiring for ``bips bench``.

This package is host-facing tooling, not simulation code: it may read
wall clocks (outside the DET002 scope) and its numbers are explicitly
machine-dependent — only normalized scores travel between machines.
"""

from .harness import BenchCase, BenchSkip, CaseResult, run_suite
from .report import (
    DEFAULT_THRESHOLD,
    Comparison,
    build_report,
    compare_to_baseline,
    has_regression,
    render_text,
)
from .suite import SUITE, select_suite

__all__ = [
    "BenchCase",
    "BenchSkip",
    "CaseResult",
    "run_suite",
    "DEFAULT_THRESHOLD",
    "Comparison",
    "build_report",
    "compare_to_baseline",
    "has_regression",
    "render_text",
    "SUITE",
    "select_suite",
]
