"""Argparse wiring for ``bips bench``.

Kept beside the harness so the main CLI only grows two hooks
(:func:`add_bench_parser`, :func:`run_bench`); exit codes follow the
``bips lint`` convention — 0 clean, 1 findings (here: regression),
2 usage/environment errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .harness import run_suite
from .report import (
    DEFAULT_THRESHOLD,
    build_report,
    compare_to_baseline,
    git_revision,
    has_regression,
    load_json,
    render_text,
    write_json,
)
from .suite import select_suite

DEFAULT_BASELINE = "benchmarks/baseline.json"
DEFAULT_BASELINE_TEXT = "results/bench_baseline.txt"
DEFAULT_OUT_DIR = "results/bench"


def add_bench_parser(subparsers: "argparse._SubParsersAction[argparse.ArgumentParser]") -> None:
    """Register the ``bench`` subcommand on the main CLI."""
    bench = subparsers.add_parser(
        "bench",
        help="timed hot-path suite with a tracked baseline "
        "(see docs/performance.md)",
    )
    bench.add_argument(
        "--suite",
        choices=("smoke", "full"),
        default="full",
        help="smoke = the fast CI subset; full = every pinned case",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=5,
        metavar="K",
        help="timed repetitions per case (median/p90 reported)",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        metavar="FRACTION",
        help="regression gate: fail when a normalized score drops by "
        "more than this fraction (default 0.20)",
    )
    bench.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        metavar="PATH",
        help=f"baseline document to compare against (default {DEFAULT_BASELINE})",
    )
    bench.add_argument(
        "--out-dir",
        default=DEFAULT_OUT_DIR,
        metavar="DIR",
        help=f"where BENCH_<git-rev>.json is written (default: {DEFAULT_OUT_DIR})",
    )
    bench.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline (and its text rendering under "
        f"{DEFAULT_BASELINE_TEXT}) from this run instead of comparing",
    )


def run_bench(args: argparse.Namespace) -> int:
    """The ``bips bench`` subcommand; returns the process exit code."""
    if args.repeats < 1:
        print("bips bench: --repeats must be >= 1", file=sys.stderr)
        return 2
    try:
        cases = select_suite(args.suite)
    except ValueError as error:
        print(f"bips bench: {error}", file=sys.stderr)
        return 2
    results, calibration_rate = run_suite(
        cases,
        args.repeats,
        progress=lambda name: print(f"bench: {name} ...", file=sys.stderr),
    )
    report = build_report(
        results,
        cases,
        calibration_rate,
        suite=args.suite,
        repeats=args.repeats,
        git_rev=git_revision(),
    )
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / f"BENCH_{report['git_rev']}.json"
    write_json(out_path, report)
    print(f"wrote {out_path}", file=sys.stderr)

    if args.update_baseline:
        baseline_path = Path(args.baseline)
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        write_json(baseline_path, report)
        text_path = Path(DEFAULT_BASELINE_TEXT)
        text_path.parent.mkdir(parents=True, exist_ok=True)
        text_path.write_text(render_text(report))
        print(f"baseline updated: {baseline_path} (+ {text_path})", file=sys.stderr)
        print(render_text(report), end="")
        return 0

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(
            f"bips bench: no baseline at {baseline_path}; "
            "run with --update-baseline to record one",
            file=sys.stderr,
        )
        print(render_text(report), end="")
        return 0
    try:
        baseline = load_json(baseline_path)
        comparisons = compare_to_baseline(report, baseline, args.threshold)
    except ValueError as error:
        print(f"bips bench: {error}", file=sys.stderr)
        return 2
    print(render_text(report, comparisons), end="")
    if has_regression(comparisons):
        worst = min(
            (c for c in comparisons if c.status == "regression"),
            key=lambda c: c.ratio,
        )
        print(
            f"bips bench: REGRESSION — {worst.name} at {worst.ratio:.2f}x "
            f"of baseline ({worst.detail})",
            file=sys.stderr,
        )
        return 1
    return 0
