"""The pinned benchmark suite.

Workload shapes are part of the baseline contract: every parameter
that affects a measurement is listed in the case's ``params`` tuple,
which feeds the config digest in the emitted JSON.  Changing a
workload therefore *voids* comparison against older baselines for
that case rather than producing a silent apples-to-oranges delta.

The suite is written to also run against **older revisions** of this
repository (that is how the fast-path speedup is measured): it probes
for the modern kernel API (``post`` / ``scheduler=``) and falls back
to the legacy one, skipping cases the old code cannot express.
"""

from __future__ import annotations

from typing import Callable

from .harness import BenchCase, BenchSkip, Workload

# -- kernel event throughput -------------------------------------------------

#: Total events per kernel-throughput run.
KERNEL_EVENTS = 200_000
#: Concurrent self-rescheduling chains (stations on the slot grid).
KERNEL_CHAINS = 16
#: Tick stride between a chain's events (one Bluetooth slot).
KERNEL_STRIDE_TICKS = 2


def _kernel_workload(scheduler: str) -> Workload:
    from repro.sim.kernel import Kernel

    try:
        kernel = Kernel(scheduler=scheduler)
    except TypeError as exc:
        # Pre-fast-path kernel: no scheduler choice.  The heap case
        # still measures (that is the 2x comparison); calendar cannot.
        if scheduler != "heap":
            raise BenchSkip(f"kernel has no scheduler option: {exc}") from exc
        kernel = Kernel()
    sched: Callable[..., object] = getattr(kernel, "post", kernel.schedule)

    def run() -> int:
        target = KERNEL_EVENTS
        fired = 0

        def chain() -> None:
            nonlocal fired
            fired += 1
            if fired < target:
                sched(KERNEL_STRIDE_TICKS, chain)

        for _ in range(KERNEL_CHAINS):
            sched(0, chain)
        kernel.run_until(KERNEL_STRIDE_TICKS * target)
        return fired

    return run


def kernel_heap_factory() -> Workload:
    """Self-rescheduling event chains on the binary-heap scheduler."""
    return _kernel_workload("heap")


def kernel_calendar_factory() -> Workload:
    """The same chains on the calendar-queue scheduler."""
    return _kernel_workload("calendar")


# -- hopping inverse lookup --------------------------------------------------

#: Distinct scan instants per scanner sweep.
HOPPING_INSTANTS = 4_000
#: Sequence positions probed at each instant.
HOPPING_POSITIONS = (0, 5, 12, 17, 23, 31)
#: Scanners issuing the same query pattern (slaves sharing a master
#: schedule — this is what makes the per-schedule memo earn its keep).
HOPPING_SCANNERS = 8
#: Lookup window length in ticks.
HOPPING_WINDOW_TICKS = 4_096


def hopping_lookup_factory() -> Workload:
    """``next_tx_of_position`` under a figure2-like scanner population."""
    from repro.bluetooth.hopping import continuous_inquiry

    schedule = continuous_inquiry()

    def run() -> int:
        lookup = schedule.next_tx_of_position
        count = 0
        for _scanner in range(HOPPING_SCANNERS):
            tick = 13
            for _ in range(HOPPING_INSTANTS):
                for position in HOPPING_POSITIONS:
                    lookup(position, tick, tick + HOPPING_WINDOW_TICKS)
                    count += 1
                tick += 37
        return count

    return run


# -- figure2 small grid ------------------------------------------------------

FIGURE2_SLAVES = 8
FIGURE2_HORIZON_SECONDS = 14.0
FIGURE2_REPLICATIONS = 4
FIGURE2_SEED = 20260805


def figure2_small_factory() -> Workload:
    """A small-population figure2 cell, measured in sim ticks."""
    from repro.experiments.figure2 import Figure2Config, replication_payload
    from repro.sim.clock import ticks_from_seconds

    config = Figure2Config(
        slave_counts=(FIGURE2_SLAVES,),
        replications=FIGURE2_REPLICATIONS,
        horizon_seconds=FIGURE2_HORIZON_SECONDS,
    )
    ticks = ticks_from_seconds(FIGURE2_HORIZON_SECONDS) * FIGURE2_REPLICATIONS

    def run() -> int:
        for replication in range(FIGURE2_REPLICATIONS):
            replication_payload(config, replication, FIGURE2_SEED + replication)
        return ticks

    return run


# -- table1 small grid -------------------------------------------------------

TABLE1_TRIALS = 300
TABLE1_SEED = 20260806


def table1_small_factory() -> Workload:
    """A short burst of table1 discovery trials."""
    from repro.experiments.table1 import Table1Config, trial_payload

    config = Table1Config()

    def run() -> int:
        for index in range(TABLE1_TRIALS):
            trial_payload(config, index, TABLE1_SEED + index)
        return TABLE1_TRIALS

    return run


# -- inquiry engines at scale ------------------------------------------------

#: RNG seed for the piconet-population builders.
SWARM_SEED = 20260808
#: Dense single piconet: 100 slaves under one inquiring master.
SWARM_PICONET_SLAVES = 100
SWARM_PICONET_WINDOW_TICKS = 3_200
SWARM_PICONET_PERIOD_TICKS = 16_000
SWARM_PICONET_HORIZON_TICKS = 44_800
#: Piconet fleet: 1000 independent masters firing short, staggered
#: inquiry bursts over 100 scanning slaves each.
SWARM_FLEET_PICONETS = 1_000
SWARM_FLEET_SLAVES = 100
SWARM_FLEET_WINDOW_TICKS = 160
SWARM_FLEET_PERIOD_TICKS = 16_000
SWARM_FLEET_HORIZON_TICKS = 16_000


def _swarm_workload(
    engine: str,
    piconets: int,
    slaves: int,
    window_ticks: int,
    period_ticks: int,
    horizon_ticks: int,
) -> Workload:
    """Identical piconet population on either inquiry engine.

    Continuous train-locked scanners under periodically inquiring
    masters.  Construction happens here (untimed); the workload runs
    the kernel to the horizon, so the object/batched pair measures
    exactly the engine difference on the same simulated load.
    """
    try:
        from repro.bluetooth.address import BDAddr
        from repro.bluetooth.btclock import CLKN_WRAP, BluetoothClock
        from repro.bluetooth.hopping import TrainStrategy, periodic_inquiry
        from repro.bluetooth.inquiry import InquiryProcedure
        from repro.bluetooth.scan import InquiryScanner, PhaseMode, ScanConfig
        from repro.sim.kernel import Kernel
        from repro.sim.rng import RandomStream
    except ImportError as exc:
        raise BenchSkip(f"piconet model unavailable: {exc}") from exc
    if engine == "batched":
        try:
            from repro.bluetooth.swarm import InquiryScanSwarm
        except ImportError as exc:
            raise BenchSkip(f"no batched engine in this revision: {exc}") from exc
    kernel = Kernel()
    root = RandomStream(SWARM_SEED, "bench-swarm")
    scan = ScanConfig.continuous(phase_mode=PhaseMode.TRAIN_LOCKED)
    for piconet in range(piconets):
        prng = root.child("piconet", str(piconet))
        schedule = periodic_inquiry(
            window_ticks,
            period_ticks,
            strategy=TrainStrategy.A_ONLY,
            start=prng.randint(0, period_ticks - window_ticks - 1),
        )
        master = InquiryProcedure(kernel, schedule, name=f"master-{piconet}")
        swarm = (
            InquiryScanSwarm(
                kernel, schedule, master.channel, config=scan, name=str(piconet)
            )
            if engine == "batched"
            else None
        )
        for slave in range(slaves):
            rng = prng.child("slave", str(slave))
            clock = BluetoothClock(offset=rng.randint(0, CLKN_WRAP - 1))
            base_phase = rng.randint(0, 15)
            address = BDAddr(0x10000 * piconet + slave + 1)
            if swarm is not None:
                handle = swarm.add_slave(
                    address,
                    rng=rng.child("draws"),
                    clock=clock,
                    base_phase=base_phase,
                    horizon_tick=horizon_ticks,
                )
            else:
                handle = InquiryScanner(
                    kernel,
                    address,
                    schedule,
                    master.channel,
                    rng=rng.child("draws"),
                    config=scan,
                    clock=clock,
                    base_phase=base_phase,
                    horizon_tick=horizon_ticks,
                )
            handle.start()

    def run() -> int:
        kernel.run_until(horizon_ticks)
        return horizon_ticks

    return run


def swarm_piconet_100_object_factory() -> Workload:
    """One 100-slave piconet on the per-object scanner engine."""
    return _swarm_workload(
        "object",
        1,
        SWARM_PICONET_SLAVES,
        SWARM_PICONET_WINDOW_TICKS,
        SWARM_PICONET_PERIOD_TICKS,
        SWARM_PICONET_HORIZON_TICKS,
    )


def swarm_piconet_100_batched_factory() -> Workload:
    """One 100-slave piconet on the batched swarm engine."""
    return _swarm_workload(
        "batched",
        1,
        SWARM_PICONET_SLAVES,
        SWARM_PICONET_WINDOW_TICKS,
        SWARM_PICONET_PERIOD_TICKS,
        SWARM_PICONET_HORIZON_TICKS,
    )


def swarm_piconets_1000_object_factory() -> Workload:
    """1000 piconets x 100 slaves on the per-object scanner engine."""
    return _swarm_workload(
        "object",
        SWARM_FLEET_PICONETS,
        SWARM_FLEET_SLAVES,
        SWARM_FLEET_WINDOW_TICKS,
        SWARM_FLEET_PERIOD_TICKS,
        SWARM_FLEET_HORIZON_TICKS,
    )


def swarm_piconets_1000_batched_factory() -> Workload:
    """1000 piconets x 100 slaves on the batched swarm engine."""
    return _swarm_workload(
        "batched",
        SWARM_FLEET_PICONETS,
        SWARM_FLEET_SLAVES,
        SWARM_FLEET_WINDOW_TICKS,
        SWARM_FLEET_PERIOD_TICKS,
        SWARM_FLEET_HORIZON_TICKS,
    )


# -- end-to-end tick rate ----------------------------------------------------

E2E_USERS = 8
E2E_DURATION_SECONDS = 600.0


def e2e_tick_rate_factory() -> Workload:
    """Full BIPS pipeline (radio + LAN + server) tick rate."""
    from repro.experiments.e2e import E2EConfig, run_e2e
    from repro.sim.clock import ticks_from_seconds

    config = E2EConfig(user_count=E2E_USERS, duration_seconds=E2E_DURATION_SECONDS)
    ticks = ticks_from_seconds(E2E_DURATION_SECONDS)

    def run() -> int:
        run_e2e(config)
        return ticks

    return run


# -- the pinned suite --------------------------------------------------------

SUITE: tuple[BenchCase, ...] = (
    BenchCase(
        name="kernel_events_heap",
        factory=kernel_heap_factory,
        unit="events",
        params=(
            ("events", KERNEL_EVENTS),
            ("chains", KERNEL_CHAINS),
            ("stride_ticks", KERNEL_STRIDE_TICKS),
            ("scheduler", "heap"),
        ),
        smoke=True,
    ),
    BenchCase(
        name="kernel_events_calendar",
        factory=kernel_calendar_factory,
        unit="events",
        params=(
            ("events", KERNEL_EVENTS),
            ("chains", KERNEL_CHAINS),
            ("stride_ticks", KERNEL_STRIDE_TICKS),
            ("scheduler", "calendar"),
        ),
        smoke=True,
    ),
    BenchCase(
        name="hopping_next_tx",
        factory=hopping_lookup_factory,
        unit="lookups",
        params=(
            ("instants", HOPPING_INSTANTS),
            ("positions", len(HOPPING_POSITIONS)),
            ("scanners", HOPPING_SCANNERS),
            ("window_ticks", HOPPING_WINDOW_TICKS),
        ),
        smoke=True,
    ),
    BenchCase(
        name="figure2_small_grid",
        factory=figure2_small_factory,
        unit="sim_ticks",
        params=(
            ("slaves", FIGURE2_SLAVES),
            ("horizon_seconds", FIGURE2_HORIZON_SECONDS),
            ("replications", FIGURE2_REPLICATIONS),
            ("seed", FIGURE2_SEED),
        ),
        smoke=False,
    ),
    BenchCase(
        name="table1_small_grid",
        factory=table1_small_factory,
        unit="trials",
        params=(("trials", TABLE1_TRIALS), ("seed", TABLE1_SEED)),
        smoke=False,
    ),
    BenchCase(
        name="swarm_piconet_100_object",
        factory=swarm_piconet_100_object_factory,
        unit="sim_ticks",
        params=(
            ("engine", "object"),
            ("piconets", 1),
            ("slaves", SWARM_PICONET_SLAVES),
            ("window_ticks", SWARM_PICONET_WINDOW_TICKS),
            ("period_ticks", SWARM_PICONET_PERIOD_TICKS),
            ("horizon_ticks", SWARM_PICONET_HORIZON_TICKS),
            ("seed", SWARM_SEED),
        ),
        smoke=False,
    ),
    BenchCase(
        name="swarm_piconet_100_batched",
        factory=swarm_piconet_100_batched_factory,
        unit="sim_ticks",
        params=(
            ("engine", "batched"),
            ("piconets", 1),
            ("slaves", SWARM_PICONET_SLAVES),
            ("window_ticks", SWARM_PICONET_WINDOW_TICKS),
            ("period_ticks", SWARM_PICONET_PERIOD_TICKS),
            ("horizon_ticks", SWARM_PICONET_HORIZON_TICKS),
            ("seed", SWARM_SEED),
        ),
        smoke=False,
    ),
    BenchCase(
        name="swarm_piconets_1000_object",
        factory=swarm_piconets_1000_object_factory,
        unit="sim_ticks",
        params=(
            ("engine", "object"),
            ("piconets", SWARM_FLEET_PICONETS),
            ("slaves", SWARM_FLEET_SLAVES),
            ("window_ticks", SWARM_FLEET_WINDOW_TICKS),
            ("period_ticks", SWARM_FLEET_PERIOD_TICKS),
            ("horizon_ticks", SWARM_FLEET_HORIZON_TICKS),
            ("seed", SWARM_SEED),
        ),
        smoke=False,
    ),
    BenchCase(
        name="swarm_piconets_1000_batched",
        factory=swarm_piconets_1000_batched_factory,
        unit="sim_ticks",
        params=(
            ("engine", "batched"),
            ("piconets", SWARM_FLEET_PICONETS),
            ("slaves", SWARM_FLEET_SLAVES),
            ("window_ticks", SWARM_FLEET_WINDOW_TICKS),
            ("period_ticks", SWARM_FLEET_PERIOD_TICKS),
            ("horizon_ticks", SWARM_FLEET_HORIZON_TICKS),
            ("seed", SWARM_SEED),
        ),
        smoke=False,
    ),
    BenchCase(
        name="e2e_tick_rate",
        factory=e2e_tick_rate_factory,
        unit="sim_ticks",
        params=(
            ("users", E2E_USERS),
            ("duration_seconds", E2E_DURATION_SECONDS),
        ),
        smoke=False,
    ),
)


def select_suite(name: str) -> list[BenchCase]:
    """Resolve a suite name (``smoke`` or ``full``) to its cases."""
    if name == "full":
        return list(SUITE)
    if name == "smoke":
        return [case for case in SUITE if case.smoke]
    raise ValueError(f"unknown suite {name!r}; expected 'smoke' or 'full'")
