"""Benchmark result persistence, baseline comparison and rendering.

The emitted artefact is ``BENCH_<git-rev>.json``; the committed
reference is ``benchmarks/baseline.json`` (same schema).  Comparison
is on the **normalized** score (case rate / calibration rate) so a
baseline recorded on one machine is meaningful on another — see
:mod:`repro.bench.harness` for the calibration contract.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from .harness import BenchCase, CaseResult

SCHEMA_VERSION = 1

#: Default regression gate: >20 % drop in normalized score fails.
DEFAULT_THRESHOLD = 0.20


def git_revision(repo_root: Optional[Path] = None) -> str:
    """Short git revision of the working tree, or ``unknown``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=str(repo_root) if repo_root else None,
            check=False,
        )
    except OSError:
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def case_digest(case: BenchCase) -> str:
    """Digest of one case's workload parameters."""
    blob = json.dumps(
        {"name": case.name, "unit": case.unit, "params": list(case.params)},
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def build_report(
    results: list[CaseResult],
    cases: list[BenchCase],
    calibration_rate: float,
    suite: str,
    repeats: int,
    git_rev: str,
) -> dict:
    """Assemble the versioned JSON document for a bench run."""
    digests = {case.name: case_digest(case) for case in cases}
    benchmarks = {}
    for result in results:
        entry: dict = {
            "unit": result.unit,
            "config_digest": digests.get(result.name, ""),
        }
        if result.skipped:
            entry.update({"skipped": True, "skip_reason": result.skip_reason})
        else:
            entry.update(
                {
                    "units": result.units,
                    "median_s": result.median_s,
                    "p90_s": result.p90_s,
                    "rate_per_s": result.rate_per_s,
                    "normalized": result.normalized,
                    "samples_s": result.samples_s,
                }
            )
        benchmarks[result.name] = entry
    return {
        "schema": SCHEMA_VERSION,
        "git_rev": git_rev,
        "suite": suite,
        "repeats": repeats,
        "python": platform.python_version(),
        "calibration_rate_per_s": calibration_rate,
        "benchmarks": benchmarks,
    }


@dataclass(frozen=True)
class Comparison:
    """Outcome of comparing one case against the baseline."""

    name: str
    #: ``ok`` | ``regression`` | ``improved`` | ``new`` | ``skipped``
    #: | ``incomparable``
    status: str
    #: current normalized / baseline normalized (0 when undefined).
    ratio: float
    detail: str = ""


def compare_to_baseline(
    report: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> list[Comparison]:
    """Compare a run against a baseline document, case by case.

    A case regresses when its normalized score drops by more than
    ``threshold`` relative to the baseline.  Cases absent from the
    baseline are ``new``; cases whose workload digest changed are
    ``incomparable`` (the baseline needs refreshing, not the code).
    """
    if not 0 < threshold < 1:
        raise ValueError(f"threshold must be in (0, 1): {threshold}")
    comparisons = []
    base_benchmarks = baseline.get("benchmarks", {})
    for name in sorted(report.get("benchmarks", {})):
        entry = report["benchmarks"][name]
        if entry.get("skipped"):
            comparisons.append(
                Comparison(name, "skipped", 0.0, entry.get("skip_reason", ""))
            )
            continue
        base = base_benchmarks.get(name)
        if base is None or base.get("skipped"):
            comparisons.append(Comparison(name, "new", 0.0, "no baseline entry"))
            continue
        if base.get("config_digest") != entry.get("config_digest"):
            comparisons.append(
                Comparison(
                    name,
                    "incomparable",
                    0.0,
                    "workload changed; refresh the baseline",
                )
            )
            continue
        base_score = float(base.get("normalized", 0.0))
        score = float(entry.get("normalized", 0.0))
        if base_score <= 0:
            comparisons.append(Comparison(name, "new", 0.0, "baseline score empty"))
            continue
        ratio = score / base_score
        if ratio < 1.0 - threshold:
            status = "regression"
            detail = f"{(1.0 - ratio) * 100:.1f}% below baseline"
        elif ratio > 1.0 + threshold:
            status = "improved"
            detail = f"{(ratio - 1.0) * 100:.1f}% above baseline"
        else:
            status = "ok"
            detail = f"within {threshold * 100:.0f}% of baseline"
        comparisons.append(Comparison(name, status, ratio, detail))
    return comparisons


def has_regression(comparisons: list[Comparison]) -> bool:
    """Whether any compared case regressed."""
    return any(c.status == "regression" for c in comparisons)


def render_text(report: dict, comparisons: Optional[list[Comparison]] = None) -> str:
    """Human-readable rendering of a bench document."""
    lines = [
        f"bips bench — suite={report['suite']} repeats={report['repeats']} "
        f"rev={report['git_rev']} python={report['python']}",
        f"calibration: {report['calibration_rate_per_s']:,.0f} iterations/s",
        "",
        f"{'benchmark':<24} {'median':>10} {'p90':>10} "
        f"{'rate':>16} {'score':>8}",
    ]
    by_name = {c.name: c for c in comparisons} if comparisons else {}
    for name in sorted(report["benchmarks"]):
        entry = report["benchmarks"][name]
        if entry.get("skipped"):
            lines.append(f"{name:<24} skipped: {entry.get('skip_reason', '')}")
            continue
        rate = f"{entry['rate_per_s']:,.0f} {entry['unit']}/s"
        line = (
            f"{name:<24} {entry['median_s'] * 1000:>8.1f}ms "
            f"{entry['p90_s'] * 1000:>8.1f}ms {rate:>16} "
            f"{entry['normalized']:>8.3f}"
        )
        verdict = by_name.get(name)
        if verdict is not None:
            line += f"  [{verdict.status}"
            if verdict.ratio:
                line += f" {verdict.ratio:.2f}x"
            line += "]"
        lines.append(line)
    return "\n".join(lines) + "\n"


def write_json(path: Path, document: dict) -> None:
    """Write a bench document with stable key order."""
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def load_json(path: Path) -> dict:
    """Load a bench document."""
    loaded = json.loads(path.read_text())
    if not isinstance(loaded, dict):
        raise ValueError(f"{path} is not a bench document")
    return loaded
