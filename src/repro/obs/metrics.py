"""Deterministic metrics: counters, gauges, fixed-bucket histograms.

The paper's whole evaluation is a set of measurements (discovery time,
discovery probability, duty-cycle tradeoffs), so the reproduction needs
one uniform way to count and time things.  Two rules keep the metrics
plane compatible with a deterministic simulator:

* **No wall clock.**  Histograms observe simulated quantities (ticks,
  seconds of sim time, bytes); percentiles are computed from fixed
  bucket boundaries.  Two runs with the same seed must export
  byte-identical JSONL.
* **Cheap when unused.**  Instruments are plain attribute updates; the
  instrumented modules accept ``metrics=None`` and skip everything when
  no registry is supplied, so micro-benchmarks and standalone tests pay
  nothing.

Series are identified by a name plus optional labels, Prometheus-style:
``registry.counter("lan.messages_sent", type="PresenceUpdate")``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

Number = Union[int, float]

DEFAULT_BUCKETS: tuple[float, ...] = (
    1.0,
    2.0,
    5.0,
    10.0,
    20.0,
    50.0,
    100.0,
    200.0,
    500.0,
    1_000.0,
    2_000.0,
    5_000.0,
    10_000.0,
    20_000.0,
    50_000.0,
    100_000.0,
)


class MetricError(ValueError):
    """A metric was declared or used inconsistently."""


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease by {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down (queue depth, occupancy, ...)."""

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    value: float = 0.0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with deterministic percentile estimates.

    ``buckets`` are the finite upper bounds; an implicit +inf bucket
    catches the overflow.  ``percentile`` interpolates within the
    matching bucket, which is coarse but reproducible — good enough for
    "p95 delivery latency ≈ 4 ticks" style statements and immune to
    run-to-run noise.
    """

    def __init__(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        labels: Optional[dict[str, str]] = None,
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds:
            raise MetricError(f"histogram {name!r} needs at least one bucket")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise MetricError(f"histogram {name!r} buckets must strictly increase: {bounds}")
        self.name = name
        self.labels = dict(labels or {})
        self.bounds: tuple[float, ...] = bounds
        self.counts: list[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Number) -> None:
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def percentile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (``0 < q <= 1``) from buckets.

        Interpolates linearly inside the bucket that contains the
        target rank; the overflow bucket reports the observed max.
        """
        if not 0.0 < q <= 1.0:
            raise MetricError(f"quantile must be in (0, 1]: {q}")
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        lower = 0.0
        for index, bound in enumerate(self.bounds):
            bucket_count = self.counts[index]
            if cumulative + bucket_count >= target:
                if bucket_count == 0:
                    return bound
                fraction = (target - cumulative) / bucket_count
                return lower + (bound - lower) * fraction
            cumulative += bucket_count
            lower = bound
        return self.max


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """All of a process's (or a simulation's) instruments, by name.

    ``counter``/``gauge``/``histogram`` are get-or-create: repeated
    calls with the same name and labels return the same instrument, and
    a name registered as one kind cannot be reused as another.
    """

    def __init__(self) -> None:
        self._kinds: dict[str, str] = {}
        self._series: dict[str, dict[tuple[tuple[str, str], ...], Instrument]] = {}

    def _get_or_create(self, kind: str, name: str, factory, labels: dict[str, str]):
        if not name:
            raise MetricError("metric name must be non-empty")
        registered = self._kinds.get(name)
        if registered is None:
            self._kinds[name] = kind
            self._series[name] = {}
        elif registered != kind:
            raise MetricError(
                f"metric {name!r} already registered as a {registered}, not a {kind}"
            )
        series = self._series[name]
        key = _label_key(labels)
        instrument = series.get(key)
        if instrument is None:
            instrument = factory()
            series[key] = instrument
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(
            "counter", name, lambda: Counter(name, dict(labels)), labels
        )

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create(
            "gauge", name, lambda: Gauge(name, dict(labels)), labels
        )

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: str,
    ) -> Histogram:
        histogram = self._get_or_create(
            "histogram", name, lambda: Histogram(name, buckets, dict(labels)), labels
        )
        if buckets is not None and tuple(buckets) != histogram.bounds:
            raise MetricError(
                f"histogram {name!r} already registered with buckets "
                f"{histogram.bounds}, not {tuple(buckets)}"
            )
        return histogram

    def instruments(self) -> Iterable[Instrument]:
        """Every registered series, in deterministic (name, labels) order."""
        for name in sorted(self._series):
            series = self._series[name]
            for key in sorted(series):
                yield series[key]

    def snapshot(self) -> list[dict]:
        """A deep, isolated copy of every series as plain dicts.

        Mutating the registry after taking a snapshot does not change
        the snapshot, and vice versa.
        """
        records: list[dict] = []
        for instrument in self.instruments():
            record: dict = {
                "kind": self._kinds[instrument.name],
                "name": instrument.name,
                "labels": dict(instrument.labels),
            }
            if isinstance(instrument, Counter):
                record["value"] = instrument.value
            elif isinstance(instrument, Gauge):
                record["value"] = instrument.value
            else:
                record.update(
                    count=instrument.count,
                    sum=instrument.sum,
                    min=instrument.min,
                    max=instrument.max,
                    buckets=[
                        [bound, count]
                        for bound, count in zip(
                            list(instrument.bounds) + [None], instrument.counts
                        )
                    ],
                )
            records.append(record)
        return records

    # -- export ------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per line, deterministically ordered."""
        return "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in self.snapshot()
        )

    def write_jsonl(self, path: str) -> int:
        """Write :meth:`to_jsonl` to ``path``; returns the record count."""
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return len(text.splitlines())

    def render_scoreboard(self, title: str = "metrics") -> str:
        """A human-readable text summary of every series."""
        lines = [f"== {title} =="]
        current_kind = None
        # Group by kind so each section header appears once.
        ordered = sorted(
            self.snapshot(), key=lambda r: (r["kind"], r["name"], sorted(r["labels"].items()))
        )
        for record in ordered:
            if record["kind"] != current_kind:
                current_kind = record["kind"]
                lines.append(f"-- {current_kind}s --")
            label_text = "".join(
                f" {key}={value}" for key, value in sorted(record["labels"].items())
            )
            if record["kind"] == "histogram":
                count = record["count"]
                if count:
                    mean = record["sum"] / count
                    summary = (
                        f"count={count} mean={mean:.2f} "
                        f"min={record['min']:.2f} max={record['max']:.2f}"
                    )
                else:
                    summary = "count=0"
                lines.append(f"  {record['name']}{label_text}: {summary}")
            else:
                value = record["value"]
                rendered = f"{value:.2f}" if isinstance(value, float) else str(value)
                lines.append(f"  {record['name']}{label_text}: {rendered}")
        if current_kind is None:
            lines.append("  (no metrics recorded)")
        return "\n".join(lines)


def snapshot_from_jsonl(text: str) -> list[dict]:
    """Parse JSONL produced by :meth:`MetricsRegistry.to_jsonl`."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]
