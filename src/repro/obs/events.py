"""Typed structured events for the BIPS pipeline.

These replace the stringly-typed ``(tick, category, message)`` tuples
of :mod:`repro.sim.trace` as the way components *announce* things:
inquiry windows opening, devices being discovered, deltas reaching the
server, queries being answered, workstations failing.  Each event is a
frozen dataclass, so consumers can filter by type and read fields
instead of parsing strings.

The old :class:`~repro.sim.trace.Tracer` remains a first-class sink:
:meth:`EventBus.pipe_to_tracer` converts every event back into a
``(tick, category, message)`` record, so existing trace-based tests and
debugging workflows keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Optional, Type

from repro.sim.trace import Tracer


@dataclass(frozen=True)
class Event:
    """Base class: every event happens at a simulation tick."""

    tick: int

    @property
    def category(self) -> str:
        """Trace category: the snake_cased class name."""
        name = type(self).__name__
        out = []
        for index, char in enumerate(name):
            if char.isupper() and index > 0:
                out.append("_")
            out.append(char.lower())
        return "".join(out)

    def describe(self) -> str:
        """Human-readable field dump (used by the Tracer bridge)."""
        parts = [
            f"{field.name}={getattr(self, field.name)!r}"
            for field in fields(self)
            if field.name != "tick"
        ]
        return " ".join(parts)


# -- bluetooth layer -------------------------------------------------------


@dataclass(frozen=True)
class InquiryStarted(Event):
    """A workstation opened an inquiry window over its room."""

    workstation_id: str
    room_id: str
    window_index: int


@dataclass(frozen=True)
class DeviceDiscovered(Event):
    """An inquiry received a device's FHS packet (first sighting this window)."""

    master: str
    address: str


# -- core layer ------------------------------------------------------------


@dataclass(frozen=True)
class DeltaPushed(Event):
    """A workstation pushed presence deltas to the central server (§2)."""

    workstation_id: str
    room_id: str
    presences: int
    absences: int


@dataclass(frozen=True)
class QueryServed(Event):
    """The server answered a location or path query."""

    kind: str
    querier: str
    target: str
    ok: bool


@dataclass(frozen=True)
class WorkstationFailed(Event):
    """A workstation stopped participating (fault injection / crash)."""

    workstation_id: str
    room_id: str


@dataclass(frozen=True)
class WorkstationRecovered(Event):
    """A failed workstation came back."""

    workstation_id: str
    room_id: str


@dataclass(frozen=True)
class ServerBrownout(Event):
    """The central server's endpoint went down (or came back)."""

    active: bool


@dataclass(frozen=True)
class UserLoggedIn(Event):
    """A user session bound its userid to a device address."""

    userid: str
    ok: bool


Handler = Callable[[Event], None]


class EventBus:
    """Synchronous pub/sub for :class:`Event` instances.

    Handlers subscribe to a specific event type (or to everything) and
    are invoked inline from ``emit`` in subscription order — the
    simulator is single-threaded and deterministic, and the bus keeps
    it that way.
    """

    def __init__(self) -> None:
        self._handlers: list[tuple[Optional[Type[Event]], Handler]] = []
        self.emitted = 0
        self.counts: dict[str, int] = {}

    def subscribe(
        self, handler: Handler, event_type: Optional[Type[Event]] = None
    ) -> None:
        """Call ``handler`` for every event (or only ``event_type`` ones)."""
        self._handlers.append((event_type, handler))

    def emit(self, event: Event) -> None:
        """Deliver ``event`` to every matching subscriber."""
        self.emitted += 1
        name = type(event).__name__
        self.counts[name] = self.counts.get(name, 0) + 1
        for event_type, handler in self._handlers:
            if event_type is None or isinstance(event, event_type):
                handler(event)

    def pipe_to_tracer(self, tracer: Tracer) -> None:
        """Bridge every event into a legacy :class:`Tracer` sink."""

        def forward(event: Event) -> None:
            tracer.record(event.tick, event.category, event.describe())

        self.subscribe(forward)


class NullEventBus(EventBus):
    """Drops everything; lets hot paths call ``emit`` unconditionally."""

    def emit(self, event: Event) -> None:  # pragma: no cover - trivial
        return None
