"""Observability: metrics, structured events, tracing, and exporters.

See :doc:`docs/observability.md` for the metric and span catalogues and
the JSONL schemas.  Quick tour::

    from repro.obs import MetricsRegistry, SpanTracer

    metrics = MetricsRegistry()
    metrics.counter("lan.messages_sent").inc()
    metrics.histogram("lan.delivery_latency_ticks").observe(3)
    print(metrics.render_scoreboard())
    metrics.write_jsonl("metrics.jsonl")

    spans = SpanTracer(seed=42, sample=1.0)
    # ... pass spans= into Kernel/BIPSSimulation/run_e2e ...
    write_chrome_trace("trace.json", spans.records())
"""

from repro.obs.events import (
    DeltaPushed,
    DeviceDiscovered,
    Event,
    EventBus,
    InquiryStarted,
    NullEventBus,
    QueryServed,
    ServerBrownout,
    UserLoggedIn,
    WorkstationFailed,
    WorkstationRecovered,
)
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    snapshot_from_jsonl,
)
from repro.obs.profiling import Profiler
from repro.obs.tracing import (
    Span,
    SpanTracer,
    TraceContext,
    chrome_trace,
    merge_worker_spans,
    write_chrome_trace,
    write_spans_jsonl,
)

__all__ = [
    "Counter",
    "DeltaPushed",
    "DeviceDiscovered",
    "Event",
    "EventBus",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "InquiryStarted",
    "MetricError",
    "MetricsRegistry",
    "NullEventBus",
    "Profiler",
    "QueryServed",
    "ServerBrownout",
    "Span",
    "SpanTracer",
    "TraceContext",
    "UserLoggedIn",
    "WorkstationFailed",
    "WorkstationRecovered",
    "chrome_trace",
    "merge_worker_spans",
    "snapshot_from_jsonl",
    "write_chrome_trace",
    "write_spans_jsonl",
]
