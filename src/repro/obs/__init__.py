"""Observability: metrics, structured events, and exporters.

See :doc:`docs/observability.md` for the metric catalogue and the JSONL
schema.  Quick tour::

    from repro.obs import MetricsRegistry

    metrics = MetricsRegistry()
    metrics.counter("lan.messages_sent").inc()
    metrics.histogram("lan.delivery_latency_ticks").observe(3)
    print(metrics.render_scoreboard())
    metrics.write_jsonl("metrics.jsonl")
"""

from repro.obs.events import (
    DeltaPushed,
    DeviceDiscovered,
    Event,
    EventBus,
    InquiryStarted,
    NullEventBus,
    QueryServed,
    UserLoggedIn,
    WorkstationFailed,
    WorkstationRecovered,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    snapshot_from_jsonl,
)

__all__ = [
    "Counter",
    "DeltaPushed",
    "DeviceDiscovered",
    "Event",
    "EventBus",
    "Gauge",
    "Histogram",
    "InquiryStarted",
    "MetricError",
    "MetricsRegistry",
    "NullEventBus",
    "QueryServed",
    "UserLoggedIn",
    "WorkstationFailed",
    "WorkstationRecovered",
    "snapshot_from_jsonl",
]
