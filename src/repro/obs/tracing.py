"""Span-based causal tracing across the simulation stack.

Metrics (``repro.obs.metrics``) aggregate; spans *attribute*: one
user's presence delta can be followed from the kernel event that fired
the inquiry window, through the LAN transit of the ``PresenceUpdate``,
to the location-database row it updated — each hop a span whose parent
is the hop that caused it.

Design rules (the same contract the metrics plane obeys):

* **Deterministic.** Span identity, ordering, and the exported bytes
  are pure functions of the simulation seed.  The tracer never touches
  the simulation's random streams — sampling draws from its own
  seed-derived ``random.Random`` — and wall-clock capture is opt-in
  (``wall=True``) precisely because it would break byte-identical
  exports.  Enabling tracing changes **no** simulated result
  (``tests/obs/test_tracing_determinism.py``).
* **Free when off.** Components hold ``spans=None`` by default and
  guard every call site, so untraced runs pay nothing; the kernel even
  keeps its untraced drain loops untouched and switches to a separate
  traced drain only when a tracer is attached.
* **Mergeable.** ``merge_worker_spans`` concatenates per-trial span
  lists in trial-index order and tags each record with its trial as
  the Chrome ``pid``, so ``--jobs N`` produces byte-identical merged
  traces for every N (the runner already returns payloads in index
  order).

Span times are simulation ticks (1 tick = 312.5 µs); the Chrome
exporter converts to microseconds so Perfetto renders real durations.
See ``docs/observability.md`` for the span catalogue.
"""

from __future__ import annotations

import json
import random
import time
from types import MappingProxyType
from typing import Any, Iterator, Optional, Union

from repro.sim.rng import derive_seed

#: One simulation tick in microseconds (half a Bluetooth slot).
TICK_MICROSECONDS = 312.5

#: Chrome trace ``tid`` lanes, one per instrumented layer.
CATEGORY_TIDS = MappingProxyType(
    {"kernel": 1, "bluetooth": 2, "lan": 3, "core": 4}
)

#: Lane for spans of any category outside the known layers.
_OTHER_TID = 9

#: Attribute values must stay JSON-scalar so exports are deterministic.
AttrValue = Union[str, int, float, bool, None]


class _Unsampled:
    """Sentinel context: an unsampled trace is in scope, suppress children."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<unsampled>"


UNSAMPLED = _Unsampled()

#: What ``SpanTracer.capture`` hands back: the active span, the
#: unsampled marker, or None (no trace in scope).
TraceContext = Union["Span", _Unsampled, None]

#: Distinct "no parent argument given" sentinel: ``begin(parent=None)``
#: forces a new root and ``parent=UNSAMPLED`` (a captured suppressed
#: context) must suppress, so the default needs its own identity.
_AMBIENT: Any = object()


class Span:
    """One timed, attributed operation in a causal tree.

    Times are simulation ticks.  ``parent_id`` is 0 for roots; every
    span in a tree shares its root's ``trace_id``.  Mutable only
    through :meth:`SpanTracer.end` and attribute updates before then.
    """

    __slots__ = (
        "name",
        "category",
        "trace_id",
        "span_id",
        "parent_id",
        "start_tick",
        "end_tick",
        "attrs",
        "wall_start_ns",
        "wall_end_ns",
    )

    def __init__(
        self,
        name: str,
        category: str,
        trace_id: int,
        span_id: int,
        parent_id: int,
        start_tick: int,
        attrs: dict[str, AttrValue],
    ) -> None:
        self.name = name
        self.category = category
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_tick = start_tick
        self.end_tick: Optional[int] = None
        self.attrs = attrs
        self.wall_start_ns: Optional[int] = None
        self.wall_end_ns: Optional[int] = None

    @property
    def duration_ticks(self) -> int:
        """Span length in ticks (0 while open or for instants)."""
        if self.end_tick is None:
            return 0
        return self.end_tick - self.start_tick

    def to_record(self) -> dict[str, Any]:
        """The span as a plain JSON-safe dict (the JSONL line shape)."""
        record: dict[str, Any] = {
            "name": self.name,
            "cat": self.category,
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "start": self.start_tick,
            "end": self.end_tick if self.end_tick is not None else self.start_tick,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        if self.wall_start_ns is not None and self.wall_end_ns is not None:
            record["wall_us"] = (self.wall_end_ns - self.wall_start_ns) / 1000.0
        return record

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, cat={self.category!r}, id={self.span_id}, "
            f"parent={self.parent_id}, [{self.start_tick}, {self.end_tick}])"
        )


class _Scope:
    """Context manager returned by :meth:`SpanTracer.scope`."""

    __slots__ = ("_tracer", "_span", "_prev")

    def __init__(self, tracer: "SpanTracer", span: Optional[Span]) -> None:
        self._tracer = tracer
        self._span = span
        self._prev: TraceContext = None

    def __enter__(self) -> Optional[Span]:
        self._prev = self._tracer.push(self._span)
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        self._tracer.pop(self._prev)


class SpanTracer:
    """Collects spans with ambient context propagation and sampling.

    The *ambient context* is the span whose operation is currently
    executing; :meth:`begin` parents new spans under it unless an
    explicit ``parent`` (captured earlier, e.g. at message-send time)
    is supplied.  Sampling is decided once per root from a dedicated
    seed-derived stream — children always follow their root's fate, so
    a sampled trace is complete and an unsampled one costs nothing but
    the root's coin flip.
    """

    def __init__(
        self,
        seed: int = 0,
        sample: float = 1.0,
        wall: bool = False,
        recorder: Optional[Any] = None,
        max_spans: int = 2_000_000,
    ) -> None:
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample rate out of range: {sample}")
        self.sample = sample
        self.wall = wall
        self.spans: list[Span] = []
        self.dropped = 0
        self._recorder = recorder
        self._max_spans = max_spans
        self._current: TraceContext = None
        self._next_span_id = 1
        self._sample_rng = random.Random(derive_seed(seed, "obs", "tracing"))

    #: Mirrors ``Tracer.enabled``: a constructed SpanTracer always traces.
    enabled = True

    # -- span lifecycle ---------------------------------------------------

    def begin(
        self,
        name: str,
        category: str,
        tick: int,
        parent: Any = _AMBIENT,
        **attrs: AttrValue,
    ) -> Optional[Span]:
        """Open a span; returns None when sampled out (callers pass it on).

        ``parent`` defaults to the ambient context; pass a context
        captured earlier (:meth:`capture`) to parent an asynchronous
        continuation, or ``None`` to force a new root.
        """
        if parent is _AMBIENT:
            parent = self._current
        if isinstance(parent, _Unsampled):
            return None
        if parent is None:
            if self.sample < 1.0 and self._sample_rng.random() >= self.sample:
                return None
            trace_id = self._next_span_id
            parent_id = 0
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        if len(self.spans) >= self._max_spans:
            self.dropped += 1
            return None
        span = Span(name, category, trace_id, self._next_span_id, parent_id, tick, attrs)
        self._next_span_id += 1
        if self.wall:
            span.wall_start_ns = time.perf_counter_ns()
        self.spans.append(span)
        return span

    def end(self, span: Optional[Span], tick: int) -> None:
        """Close ``span`` at ``tick``; a None span is a no-op."""
        if span is None:
            return
        span.end_tick = tick
        if self.wall and span.wall_start_ns is not None:
            span.wall_end_ns = time.perf_counter_ns()
        if self._recorder is not None:
            self._recorder.note(span.to_record())

    def instant(
        self,
        name: str,
        category: str,
        tick: int,
        parent: Any = _AMBIENT,
        **attrs: AttrValue,
    ) -> Optional[Span]:
        """A zero-duration span (Chrome renders it as an instant mark)."""
        span = self.begin(name, category, tick, parent=parent, **attrs)
        self.end(span, tick)
        return span

    # -- context propagation ----------------------------------------------

    def capture(self) -> TraceContext:
        """The ambient context, to be re-activated at a later hop.

        Store this with an in-flight message and pass it as ``parent``
        (or re-enter it with :meth:`scope`) where the message lands:
        that is what keeps retransmit and dedup hops on the span of the
        send that caused them.
        """
        return self._current

    def push(self, span: Optional[Span]) -> TraceContext:
        """Make ``span`` ambient; returns the context to :meth:`pop`.

        Pushing None (an unsampled span) suppresses descendants, so a
        sampled-out root never produces orphaned children.
        """
        prev = self._current
        self._current = span if span is not None else UNSAMPLED
        return prev

    def pop(self, prev: TraceContext) -> None:
        """Restore the context returned by the matching :meth:`push`."""
        self._current = prev

    def scope(self, span: Optional[Span]) -> _Scope:
        """``with tracer.scope(span): ...`` — push/pop as a context manager."""
        return _Scope(self, span)

    # -- export ------------------------------------------------------------

    def records(self) -> list[dict[str, Any]]:
        """All spans as plain dicts, in creation order (deterministic)."""
        return [span.to_record() for span in self.spans]

    def by_category(self, category: str) -> Iterator[Span]:
        """Iterate spans of one layer."""
        return (span for span in self.spans if span.category == category)

    def __len__(self) -> int:
        return len(self.spans)


# -- cross-worker merge -----------------------------------------------------


def merge_worker_spans(span_lists: list[list[dict[str, Any]]]) -> list[dict[str, Any]]:
    """Merge per-trial span records into one deterministic trace.

    ``span_lists[i]`` must be trial ``i``'s records (the runner returns
    payloads in trial-index order regardless of worker scheduling, so
    serial and ``--jobs N`` merges are byte-identical).  Each record is
    tagged with its trial index as ``pid`` — the Chrome exporter turns
    that into one process lane per trial.
    """
    merged: list[dict[str, Any]] = []
    for index, records in enumerate(span_lists):
        for record in records:
            tagged = dict(record)
            tagged["pid"] = index
            merged.append(tagged)
    return merged


# -- Chrome trace-event export ----------------------------------------------


def chrome_trace(
    records: list[dict[str, Any]], process_name: str = "bips"
) -> dict[str, Any]:
    """Span records as a Chrome trace-event document (Perfetto-loadable).

    Layout: one ``pid`` per trial (or 0 for a single run), one ``tid``
    lane per layer (kernel/bluetooth/lan/core).  Spans with duration
    become complete events (``ph: "X"``); zero-duration spans become
    thread-scoped instants (``ph: "i"``).  Causality (trace / span /
    parent ids) rides in ``args``.
    """
    events: list[dict[str, Any]] = []
    seen_pids: list[int] = []
    seen_lanes: set[tuple[int, int]] = set()
    lane_names: dict[tuple[int, int], str] = {}
    for record in records:
        pid = int(record.get("pid", 0))
        category = record["cat"]
        tid = CATEGORY_TIDS.get(category, _OTHER_TID)
        if pid not in seen_pids:
            seen_pids.append(pid)
        if (pid, tid) not in seen_lanes:
            seen_lanes.add((pid, tid))
            lane_names[(pid, tid)] = category
        start_us = record["start"] * TICK_MICROSECONDS
        duration_us = (record["end"] - record["start"]) * TICK_MICROSECONDS
        args: dict[str, Any] = {
            "trace": record["trace"],
            "span": record["span"],
            "parent": record["parent"],
        }
        args.update(record.get("attrs", {}))
        if "wall_us" in record:
            args["wall_us"] = record["wall_us"]
        event: dict[str, Any] = {
            "name": record["name"],
            "cat": category,
            "ts": start_us,
            "pid": pid,
            "tid": tid,
            "args": args,
        }
        if duration_us > 0:
            event["ph"] = "X"
            event["dur"] = duration_us
        else:
            event["ph"] = "i"
            event["s"] = "t"
        events.append(event)
    metadata: list[dict[str, Any]] = []
    for pid in seen_pids:
        name = process_name if len(seen_pids) == 1 else f"{process_name} trial {pid}"
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    for (pid, tid), lane in sorted(lane_names.items()):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": lane},
            }
        )
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str, records: list[dict[str, Any]], process_name: str = "bips"
) -> int:
    """Write the Chrome trace JSON; returns the span-event count."""
    document = chrome_trace(records, process_name=process_name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
    return len(records)


def write_spans_jsonl(path: str, records: list[dict[str, Any]]) -> int:
    """Write one JSON object per span (keys sorted — byte-deterministic)."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True, separators=(",", ":")))
            handle.write("\n")
    return len(records)
