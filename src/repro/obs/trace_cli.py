"""Argparse wiring for ``bips trace``.

Runs an experiment with span tracing threaded through the whole stack
and exports the collected spans — Chrome trace-event JSON (load the
file in Perfetto / ``chrome://tracing``) or one-record-per-line JSONL.
Kept beside the tracer so the main CLI only grows two hooks
(:func:`add_trace_parser`, :func:`run_trace`), mirroring ``bips bench``.

Examples::

    bips trace --sample 1.0 --format chrome --out results/trace/e2e.json
    bips trace --experiment table1 --trials 20 --jobs 2
    bips trace --faults office-chaos --flight-recorder
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Optional

from repro.obs.flight import FlightRecorder
from repro.obs.profiling import Profiler
from repro.obs.tracing import (
    CATEGORY_TIDS,
    SpanTracer,
    merge_worker_spans,
    write_chrome_trace,
    write_spans_jsonl,
)

#: Where trace exports and flight-recorder dumps land by default.
DEFAULT_TRACE_DIR = "results/trace"


def add_trace_parser(
    subparsers: "argparse._SubParsersAction[argparse.ArgumentParser]",
) -> None:
    """Register the ``trace`` subcommand on the main CLI."""
    from repro.faults import profile_names

    trace = subparsers.add_parser(
        "trace",
        help="run an experiment with causal span tracing and export the "
        "trace (see docs/observability.md)",
    )
    trace.add_argument(
        "--experiment",
        choices=("e2e", "table1"),
        default="e2e",
        help="what to trace: the full-system run (all four span layers) "
        "or the discovery-time trials (kernel + bluetooth)",
    )
    trace.add_argument(
        "--sample",
        type=float,
        default=1.0,
        metavar="RATE",
        help="root-span sampling rate in [0, 1]; sampling is deterministic "
        "in the seed (default 1.0 = keep everything)",
    )
    trace.add_argument(
        "--format",
        choices=("chrome", "jsonl"),
        default="chrome",
        help="chrome = Perfetto-loadable trace-event JSON; jsonl = one "
        "span record per line",
    )
    trace.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help=f"output file (default: {DEFAULT_TRACE_DIR}/trace-<experiment>"
        ".json|.jsonl)",
    )
    trace.add_argument(
        "--flight-recorder",
        action="store_true",
        help="keep a ring buffer of recent spans/events and dump it when a "
        "fault window fires",
    )
    trace.add_argument(
        "--profile",
        action="store_true",
        help="also print per-subsystem wall-time profile (non-deterministic; "
        "never part of the exported trace)",
    )
    trace.add_argument("--seed", type=int, default=None, help="experiment seed")
    trace.add_argument(
        "--faults",
        choices=profile_names(),
        default="none",
        metavar="PROFILE",
        help="fault profile to inject while tracing",
    )
    trace.add_argument("--fault-seed", type=int, default=0, metavar="SEED")
    # e2e knobs (small defaults: a trace is a magnifying glass, not a survey).
    trace.add_argument("--users", type=int, default=4, help="e2e: walking users")
    trace.add_argument(
        "--duration", type=float, default=120.0, help="e2e: simulated seconds"
    )
    # table1 knobs.
    trace.add_argument("--trials", type=int, default=20, help="table1: trial count")
    trace.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="table1: worker processes (the merged trace is byte-identical "
        "for every N)",
    )


def _trace_e2e(args: argparse.Namespace) -> tuple[list[dict[str, Any]], Optional[FlightRecorder]]:
    from repro.experiments.e2e import E2EConfig, run_e2e

    flight = (
        FlightRecorder(out_dir=DEFAULT_TRACE_DIR) if args.flight_recorder else None
    )
    config = E2EConfig(
        user_count=args.users,
        duration_seconds=args.duration,
        seed=args.seed if args.seed is not None else E2EConfig().seed,
        faults=args.faults,
        fault_seed=args.fault_seed,
    )
    spans = SpanTracer(seed=config.seed, sample=args.sample, recorder=flight)
    profiler = Profiler() if args.profile else None
    run_e2e(config, spans=spans, profiler=profiler, flight=flight)
    if profiler is not None:
        print(profiler.render_report(), file=sys.stderr)
    return spans.records(), flight


def _trace_table1(args: argparse.Namespace) -> tuple[list[dict[str, Any]], Optional[FlightRecorder]]:
    from repro.experiments.table1 import EXPERIMENT, Table1Config, trial_payload
    from repro.runner import build_runner

    config = Table1Config(
        trials=args.trials,
        seed=args.seed if args.seed is not None else Table1Config().seed,
        faults=args.faults,
        fault_seed=args.fault_seed,
        trace=True,
        trace_sample=args.sample,
    )
    runner = build_runner(jobs=args.jobs, use_cache=False)
    payloads = runner.map_trials(EXPERIMENT, config, trial_payload, config.trials)
    return merge_worker_spans([payload["spans"] for payload in payloads]), None


def run_trace(args: argparse.Namespace) -> int:
    """The ``bips trace`` subcommand; returns the process exit code."""
    if not 0.0 <= args.sample <= 1.0:
        print(f"bips trace: --sample out of range: {args.sample}", file=sys.stderr)
        return 2
    if args.experiment == "e2e":
        records, flight = _trace_e2e(args)
    else:
        records, flight = _trace_table1(args)

    suffix = "json" if args.format == "chrome" else "jsonl"
    out = args.out or os.path.join(
        DEFAULT_TRACE_DIR, f"trace-{args.experiment}.{suffix}"
    )
    out_dir = os.path.dirname(out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    if args.format == "chrome":
        count = write_chrome_trace(out, records, process_name=f"bips {args.experiment}")
    else:
        count = write_spans_jsonl(out, records)

    layers = sorted(
        {record["cat"] for record in records},
        key=lambda cat: CATEGORY_TIDS.get(cat, 99),
    )
    print(f"wrote {count} spans to {out} (layers: {', '.join(layers) or 'none'})")
    if flight is not None:
        if flight.dumps:
            for path in flight.dumps:
                print(f"flight recorder dumped: {path}")
        else:
            print("flight recorder armed; no fault fired, no dump written")
    return 0
