"""The crash flight recorder: last-N telemetry, dumped on failure.

A long chaos run that dies tells you *that* it died; the flight
recorder tells you what the system was doing just before.  It keeps a
bounded ring of the most recent span records and bus events and writes
the ring to a JSON file when triggered — automatically on fault-window
events (``WorkstationFailed``, ``ServerBrownout``) when armed on a
simulation, or explicitly via :meth:`trigger` / the :meth:`guard`
context manager around assertion-bearing code.

Dump files are numbered in trigger order (``flight-0001-<reason>.json``)
and their contents are deterministic whenever the recorded spans are
(wall-free tracing), so chaos tests can assert on them byte-for-byte.
"""

from __future__ import annotations

import json
import os
from collections import deque
from dataclasses import fields
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.events import Event, EventBus


class _FlightGuard:
    """Context manager: dump the ring when an assertion fires inside."""

    __slots__ = ("_recorder", "_reason")

    def __init__(self, recorder: "FlightRecorder", reason: str) -> None:
        self._recorder = recorder
        self._reason = reason

    def __enter__(self) -> "FlightRecorder":
        return self._recorder

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is not None and issubclass(exc_type, AssertionError):
            self._recorder.trigger(self._reason)
        # Never swallow the exception.


class FlightRecorder:
    """A ring buffer of recent spans/events with dump-on-fault triggers."""

    def __init__(self, capacity: int = 512, out_dir: str = "results/trace") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self.out_dir = out_dir
        self.noted = 0
        self.dumps: list[str] = []
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)

    # -- feeding -----------------------------------------------------------

    def note(self, record: dict[str, Any]) -> None:
        """Append one record (a finished span; SpanTracer calls this)."""
        self.noted += 1
        self._ring.append(record)

    def note_event(self, event: "Event") -> None:
        """Append one bus event as a ``kind: "event"`` record."""
        record: dict[str, Any] = {"kind": "event", "event": type(event).__name__}
        for spec in fields(event):
            record[spec.name] = getattr(event, spec.name)
        self.note(record)

    def watch(self, bus: "EventBus") -> None:
        """Record every event the bus emits (context for the spans)."""
        bus.subscribe(self.note_event)

    def arm(self, bus: "EventBus", *event_types: type) -> None:
        """Dump automatically whenever one of ``event_types`` fires.

        The triggering event is recorded first, so it is always the
        last entry of its own dump.
        """

        def on_fault(event: "Event") -> None:
            self.note_event(event)
            self.trigger(type(event).__name__)

        for event_type in event_types:
            bus.subscribe(on_fault, event_type)  # type: ignore[arg-type]

    # -- dumping -----------------------------------------------------------

    def snapshot(self) -> list[dict[str, Any]]:
        """The ring's current contents, oldest first."""
        return list(self._ring)

    def trigger(self, reason: str) -> str:
        """Write the ring to a dump file; returns its path."""
        os.makedirs(self.out_dir, exist_ok=True)
        safe_reason = "".join(
            char if char.isalnum() or char in "-_" else "-" for char in reason
        )
        path = os.path.join(
            self.out_dir, f"flight-{len(self.dumps) + 1:04d}-{safe_reason}.json"
        )
        document = {
            "reason": reason,
            "capacity": self.capacity,
            "records_seen": self.noted,
            "records": self.snapshot(),
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True, indent=1)
            handle.write("\n")
        self.dumps.append(path)
        return path

    def guard(self, reason: str = "assertion") -> _FlightGuard:
        """``with recorder.guard(): assert ...`` — dump if it fires."""
        return _FlightGuard(self, reason)

    def __len__(self) -> int:
        return len(self._ring)
