"""Per-subsystem wall-time profiling hooks.

Unlike everything else in ``repro.obs``, a profile *is* a wall-clock
measurement — it answers "where does host time go?", the question the
bench suite answers only in aggregate.  It therefore lives outside the
determinism contract (like ``runner.wall_seconds``): never fold a
profile into experiment payloads or byte-compared exports.

The disabled path is compiled-out-cheap: instrumented components hold
``profiler=None`` by default and guard each hook with one ``is not
None`` test, so an unprofiled run never calls a clock.  The enabled
hooks are a plain begin/stop pair (no context-manager frame) so the
per-dispatch overhead stays at two clock reads::

    prof = self._profiler
    if prof is not None:
        token = prof.begin()
    ...work...
    if prof is not None:
        prof.stop("lan.deliver", token)

Sections are *inclusive*: a section entered from inside another
section counts its time in both (e.g. ``core.server`` time is also
inside ``sim.kernel`` time).  That keeps the hooks O(1) and the
numbers easy to reason about layer by layer.
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class _Section:
    """Accumulated wall time of one named section."""

    __slots__ = ("total_seconds", "count")

    def __init__(self) -> None:
        self.total_seconds = 0.0
        self.count = 0


class _SectionScope:
    """Context manager returned by :meth:`Profiler.section`."""

    __slots__ = ("_profiler", "_name", "_token")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._token = 0.0

    def __enter__(self) -> None:
        self._token = self._profiler.begin()

    def __exit__(self, *exc_info: object) -> None:
        self._profiler.stop(self._name, self._token)


class Profiler:
    """Accumulates wall time per named section.

    ``clock`` is injectable (seconds, monotonic) so tests can assert
    exact totals without a real clock.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock if clock is not None else time.perf_counter
        self._sections: dict[str, _Section] = {}

    def begin(self) -> float:
        """Start timing; returns the token to hand to :meth:`stop`."""
        return self._clock()

    def stop(self, name: str, token: float) -> None:
        """Account the time since ``token`` to section ``name``."""
        elapsed = self._clock() - token
        section = self._sections.get(name)
        if section is None:
            section = _Section()
            self._sections[name] = section
        section.total_seconds += elapsed
        section.count += 1

    def section(self, name: str) -> _SectionScope:
        """``with profiler.section("phase"): ...`` for coarse phases."""
        return _SectionScope(self, name)

    # -- reading -----------------------------------------------------------

    def snapshot(self) -> list[dict]:
        """Plain records sorted by total time (descending, then name)."""
        rows = [
            {
                "section": name,
                "total_seconds": section.total_seconds,
                "count": section.count,
                "mean_seconds": (
                    section.total_seconds / section.count if section.count else 0.0
                ),
            }
            for name, section in self._sections.items()
        ]
        rows.sort(key=lambda row: (-row["total_seconds"], row["section"]))
        return rows

    def total_seconds(self, name: str) -> float:
        """Accumulated wall time of one section (0.0 if never entered)."""
        section = self._sections.get(name)
        return section.total_seconds if section is not None else 0.0

    def count(self, name: str) -> int:
        """How many times one section completed."""
        section = self._sections.get(name)
        return section.count if section is not None else 0

    def render_report(self) -> str:
        """Human-readable table, heaviest section first."""
        rows = self.snapshot()
        if not rows:
            return "profile: no sections recorded"
        width = max(len(row["section"]) for row in rows)
        lines = [f"{'section'.ljust(width)}  {'total':>10}  {'calls':>8}  {'mean':>10}"]
        for row in rows:
            lines.append(
                f"{row['section'].ljust(width)}  "
                f"{row['total_seconds'] * 1e3:9.3f}ms  "
                f"{row['count']:8d}  "
                f"{row['mean_seconds'] * 1e6:8.2f}µs"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._sections)
