"""The experiment runner: serial or multi-process trial maps.

``ExperimentRunner.map_trials`` is the one entry point the experiment
harnesses use for their Monte-Carlo loops.  Determinism contract:

* trial ``i`` always runs with the seed
  ``trial_seed(experiment, seeding_digest(experiment, config), i)``
  (the seeding digest equals the cache digest unless the config
  declares ``SEED_DIGEST_OMIT`` — see ``runner.seeding``);
* results come back in trial-index order regardless of which worker
  finished first;
* payloads are normalised through JSON before they are returned, so a
  result read back from the on-disk cache is indistinguishable from a
  freshly computed one.

Together these make ``--jobs N`` byte-identical to the serial path for
every ``N``, which the test suite asserts.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from typing import Any, Callable, Optional, Sequence, Union

from repro.obs.metrics import MetricsRegistry

from .cache import ResultCache
from .seeding import config_digest, seeding_digest, trial_seeds

#: A trial function: ``fn(config, trial_index, seed) -> JSON payload``.
#: Must be a module-level callable so worker processes can import it.
TrialFn = Callable[[Any, int, int], Any]


def _invoke(task: tuple[Any, ...]) -> tuple[Any, float]:
    """Worker entry point: run one trial, timing it."""
    fn, config, index, seed = task
    started = time.perf_counter()
    payload = fn(config, index, seed)
    return payload, time.perf_counter() - started


def _normalize(payloads: Sequence[Any]) -> list[Any]:
    """Round-trip through JSON so fresh and cached results are equal."""
    return json.loads(json.dumps(list(payloads)))


class ExperimentRunner:
    """Fans independent experiment trials out over worker processes.

    ``jobs=1`` (the default) runs everything in-process — the serial
    fallback every harness gets when no runner is passed.  ``cache``
    may be a :class:`ResultCache`; without one every call recomputes.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        mp_start_method: str = "spawn",
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1: {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.metrics = metrics
        self.mp_start_method = mp_start_method
        if metrics is not None:
            metrics.gauge("runner.jobs").set(jobs)

    # -- the single entry point --------------------------------------------

    def map_trials(
        self, experiment: str, config: Any, fn: TrialFn, count: int
    ) -> list[Any]:
        """Run ``fn(config, i, seed_i)`` for ``i in range(count)``.

        Returns the payload list in trial-index order; serves it from
        the cache when an identical cell has been computed before.
        """
        if count < 0:
            raise ValueError(f"trial count must be non-negative: {count}")
        digest = config_digest(experiment, config)
        if self.cache is not None:
            cached = self.cache.load(experiment, digest)
            if cached is not None and len(cached) == count:
                self._count("runner.cache_hits", experiment)
                self._observe_batch(experiment, count, 0.0, 0.0, mode="cache")
                return cached
            self._count("runner.cache_misses", experiment)
        started = time.perf_counter()
        seed_digest = seeding_digest(experiment, config)
        tasks = [
            (fn, config, index, seed)
            for index, seed in enumerate(trial_seeds(experiment, seed_digest, count))
        ]
        if self.jobs > 1 and count > 1:
            outcomes = self._map_parallel(tasks)
            mode = "parallel"
        else:
            outcomes = [_invoke(task) for task in tasks]
            mode = "serial"
        payloads = _normalize([payload for payload, _ in outcomes])
        busy = sum(duration for _, duration in outcomes)
        if self.cache is not None:
            self.cache.store(experiment, digest, payloads)
        self._observe_batch(
            experiment, count, time.perf_counter() - started, busy, mode=mode
        )
        return payloads

    # -- internals ----------------------------------------------------------

    def _map_parallel(self, tasks: list[tuple[Any, ...]]) -> list[tuple[Any, float]]:
        context = multiprocessing.get_context(self.mp_start_method)
        workers = min(self.jobs, len(tasks))
        chunksize = max(1, len(tasks) // (workers * 4))
        with context.Pool(processes=workers) as pool:
            # Pool.map preserves task order, so trial order — and hence
            # the assembled result — is independent of scheduling.
            return pool.map(_invoke, tasks, chunksize=chunksize)

    def _count(self, name: str, experiment: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(name, experiment=experiment).inc(amount)

    def _observe_batch(
        self, experiment: str, count: int, wall: float, busy: float, *, mode: str
    ) -> None:
        if self.metrics is None:
            return
        self.metrics.counter("runner.batches", mode=mode).inc()
        if mode != "cache":
            self._count("runner.trials_dispatched", experiment, count)
            # Host wall-clock: useful operationally, excluded from the
            # determinism contract (see docs/observability.md).
            self.metrics.gauge("runner.wall_seconds", experiment=experiment).inc(wall)
            self.metrics.gauge("runner.busy_seconds", experiment=experiment).inc(busy)
            if wall > 0:
                self.metrics.gauge("runner.utilization").set(
                    min(1.0, busy / (wall * self.jobs))
                )


def build_runner(
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir: Union[str, None] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> ExperimentRunner:
    """CLI-shaped constructor: flags in, configured runner out."""
    cache: Optional[ResultCache] = None
    if use_cache:
        cache = ResultCache(cache_dir) if cache_dir else ResultCache()
    return ExperimentRunner(jobs=jobs, cache=cache, metrics=metrics)
