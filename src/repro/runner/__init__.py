"""Parallel, deterministic experiment execution.

The paper's evaluation is Monte-Carlo: hundreds of independent
discovery trials per table cell.  This package fans those trials out
over ``multiprocessing`` workers without giving up reproducibility:

* :mod:`repro.runner.seeding` derives a child seed per
  ``(experiment, config-hash, trial-index)``, so a trial's random
  stream depends only on *what* is being computed — never on which
  worker computes it or in what order;
* :mod:`repro.runner.executor` maps trial functions over serial or
  process pools, always returning results in trial-index order, so the
  parallel path is byte-identical to the serial one;
* :mod:`repro.runner.cache` keeps finished cells on disk under
  ``results/cache/`` keyed by the same stable hash, so repeated sweeps
  and CI re-runs skip already-computed work.
"""

from .cache import CACHE_SCHEMA_VERSION, ResultCache
from .executor import ExperimentRunner, build_runner
from .seeding import (
    code_version,
    config_digest,
    seeding_digest,
    trial_seed,
    trial_seeds,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ExperimentRunner",
    "ResultCache",
    "build_runner",
    "code_version",
    "config_digest",
    "seeding_digest",
    "trial_seed",
    "trial_seeds",
]
