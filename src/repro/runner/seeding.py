"""Deterministic trial identity: config hashing and per-trial seeds.

Every trial the runner executes is identified by the triple
``(experiment name, config digest, trial index)``.  The digest is a
canonical hash of the experiment's frozen config dataclass, so

* the same experiment at the same config always replays the same
  random streams (reproducibility);
* two *variants* of an ablation sweep — configs that differ in any
  field — get **independent** streams instead of replaying the same
  draws (which silently correlates sweep cells);
* results are independent of worker count and scheduling, because a
  trial's seed never depends on *where* or *when* it runs.

The digest folds in the package version, so a release that changes the
simulation also invalidates the on-disk result cache.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

from repro.sim.rng import derive_seed


def code_version() -> str:
    """The library version folded into digests (cache invalidation)."""
    import repro

    return getattr(repro, "__version__", "0")


def _canonical(value: Any) -> Any:
    """Reduce a config value to deterministic JSON-encodable form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _canonical(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return [_canonical(item) for item in items]
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        # repr round-trips floats exactly; formatting would collapse
        # distinct configs onto one digest.
        return repr(value)
    raise TypeError(
        f"config field of type {type(value).__name__} is not hashable for "
        f"the runner: {value!r}"
    )


def config_digest(experiment: str, config: Any) -> str:
    """Stable hex digest of ``(experiment, config, code version)``."""
    payload = {
        "experiment": experiment,
        "config_type": type(config).__name__,
        "config": _canonical(config),
        "code_version": code_version(),
    }
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def trial_seed(experiment: str, digest: str, index: int) -> int:
    """The root seed of trial ``index`` of one experiment cell."""
    if index < 0:
        raise ValueError(f"trial index must be non-negative: {index}")
    return derive_seed(0, "runner", experiment, digest, str(index))


def trial_seeds(experiment: str, digest: str, count: int) -> list[int]:
    """Seeds for trials ``0 .. count-1``, in index order."""
    return [trial_seed(experiment, digest, index) for index in range(count)]
