"""Deterministic trial identity: config hashing and per-trial seeds.

Every trial the runner executes is identified by the triple
``(experiment name, config digest, trial index)``.  The digest is a
canonical hash of the experiment's frozen config dataclass, so

* the same experiment at the same config always replays the same
  random streams (reproducibility);
* two *variants* of an ablation sweep — configs that differ in any
  field — get **independent** streams instead of replaying the same
  draws (which silently correlates sweep cells);
* results are independent of worker count and scheduling, because a
  trial's seed never depends on *where* or *when* it runs.

The digest folds in the package version, so a release that changes the
simulation also invalidates the on-disk result cache.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

from repro.sim.rng import derive_seed


def code_version() -> str:
    """The library version folded into digests (cache invalidation)."""
    import repro

    return getattr(repro, "__version__", "0")


def _canonical(value: Any, *, for_seeding: bool = False) -> Any:
    """Reduce a config value to deterministic JSON-encodable form.

    A config dataclass may declare ``DIGEST_OMIT_IF_DEFAULT``, a tuple
    of field names left out of the canonical form while they hold their
    default value.  This is how a config grows new opt-in knobs (e.g.
    the fault-injection fields) without changing the digest — and hence
    every trial seed — of all pre-existing configurations.  The moment
    a listed field is set to anything non-default it is folded in and
    the cell gets independent streams, as any config change must.

    A config may additionally declare ``SEED_DIGEST_OMIT``: fields left
    out of the *seeding* digest unconditionally (``for_seeding=True``),
    while still folded into the cache digest as above.  This is the
    fault-injection contract — a fault plan draws only from its own
    seed, so turning faults on must not reshuffle the simulation's own
    per-trial streams, yet a faulted cell must never share a cache cell
    with the clean run it degrades.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        omit_if_default = getattr(type(value), "DIGEST_OMIT_IF_DEFAULT", ())
        omit_always = (
            getattr(type(value), "SEED_DIGEST_OMIT", ()) if for_seeding else ()
        )
        canonical = {}
        for field in dataclasses.fields(value):
            if field.name in omit_always:
                continue
            field_value = getattr(value, field.name)
            if field.name in omit_if_default:
                default = (
                    field.default_factory()
                    if field.default_factory is not dataclasses.MISSING
                    else field.default
                )
                if field_value == default:
                    continue
            canonical[field.name] = _canonical(field_value, for_seeding=for_seeding)
        return canonical
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, dict):
        return {
            str(k): _canonical(v, for_seeding=for_seeding)
            for k, v in sorted(value.items())
        }
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return [_canonical(item, for_seeding=for_seeding) for item in items]
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        # repr round-trips floats exactly; formatting would collapse
        # distinct configs onto one digest.
        return repr(value)
    raise TypeError(
        f"config field of type {type(value).__name__} is not hashable for "
        f"the runner: {value!r}"
    )


def _digest(experiment: str, config: Any, *, for_seeding: bool) -> str:
    payload = {
        "experiment": experiment,
        "config_type": type(config).__name__,
        "config": _canonical(config, for_seeding=for_seeding),
        "code_version": code_version(),
    }
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def config_digest(experiment: str, config: Any) -> str:
    """Stable hex digest of ``(experiment, config, code version)``.

    This is the *cache* identity: any field that can change a result
    byte is folded in, so distinct cells never collide on disk.
    """
    return _digest(experiment, config, for_seeding=False)


def seeding_digest(experiment: str, config: Any) -> str:
    """The digest variant that derives per-trial seeds.

    Identical to :func:`config_digest` except that fields listed in the
    config's ``SEED_DIGEST_OMIT`` are excluded regardless of value, so
    opt-in perturbation layers (fault injection) leave the simulation's
    own trial streams untouched while still occupying their own cache
    cell.
    """
    return _digest(experiment, config, for_seeding=True)


def trial_seed(experiment: str, digest: str, index: int) -> int:
    """The root seed of trial ``index`` of one experiment cell."""
    if index < 0:
        raise ValueError(f"trial index must be non-negative: {index}")
    return derive_seed(0, "runner", experiment, digest, str(index))


def trial_seeds(experiment: str, digest: str, count: int) -> list[int]:
    """Seeds for trials ``0 .. count-1``, in index order."""
    return [trial_seed(experiment, digest, index) for index in range(count)]
