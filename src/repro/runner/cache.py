"""On-disk result cache for experiment cells.

A *cell* is one ``(experiment, config)`` pair: all of its trials,
serialised as plain JSON payloads in trial-index order.  Cells live
under ``results/cache/<experiment>/<digest>.json``; the digest already
folds in the config dataclass and the library version (see
:mod:`repro.runner.seeding`), so a config change or a release produces
a different file name and the stale cell is simply never read again.

Writes are atomic (temp file + rename) so an interrupted run never
leaves a half-written cell behind for a later run to trust.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Optional, Union

#: Bumped when the cell file layout changes; mismatching files are ignored.
CACHE_SCHEMA_VERSION = 1

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = "results/cache"


def _safe_name(experiment: str) -> str:
    """Experiment names may carry slashes; keep the tree one level deep."""
    return "".join(c if (c.isalnum() or c in "._-") else "_" for c in experiment)


class ResultCache:
    """Load/store trial payload lists keyed by ``(experiment, digest)``."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, experiment: str, digest: str) -> Path:
        """Where a cell lives on disk."""
        return self.root / _safe_name(experiment) / f"{digest[:32]}.json"

    def load(self, experiment: str, digest: str) -> Optional[list[Any]]:
        """The cell's payload list, or None on a miss/corrupt file."""
        path = self.path_for(experiment, digest)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                cell = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if (
            not isinstance(cell, dict)
            or cell.get("cache_version") != CACHE_SCHEMA_VERSION
            or cell.get("digest") != digest
            or not isinstance(cell.get("payloads"), list)
        ):
            self.misses += 1
            return None
        self.hits += 1
        return cell["payloads"]

    def store(self, experiment: str, digest: str, payloads: list[Any]) -> Path:
        """Write a cell atomically; returns the cell path."""
        path = self.path_for(experiment, digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        cell: dict[str, Any] = {
            "cache_version": CACHE_SCHEMA_VERSION,
            "experiment": experiment,
            "digest": digest,
            "trials": len(payloads),
            "payloads": payloads,
        }
        temp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(cell, handle, sort_keys=True)
        os.replace(temp, path)
        return path

    def clear(self) -> int:
        """Delete every cached cell; returns how many files were removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for cell in self.root.rglob("*.json"):
            cell.unlink()
            removed += 1
        return removed
