"""repro — a full reproduction of the BIPS indoor positioning service.

Reproduces *"Experimenting an Indoor Bluetooth-based Positioning
Service"* (Anastasi, Bandelloni, Conti, Delmastro, Gregori, Mainetto;
ICDCS Workshops 2003): the BIPS tracking system, a slot-accurate
Bluetooth 1.1 inquiry/page simulator standing in for the paper's
hardware and BlueHoc testbeds, and harnesses regenerating every result
in the paper's evaluation (the §4.1 discovery-time table, Figure 2, and
the §5 scheduling-policy numbers).

Quick start::

    from repro import BIPSSimulation

    sim = BIPSSimulation()
    sim.add_user("u-alice", "Alice")
    sim.login("u-alice")
    sim.walk("u-alice", start_room="lab-1", hops=4)
    sim.run(until_seconds=300)
    print(sim.server.locate("u-alice", "Alice"))

Subpackages:

* :mod:`repro.core` — the BIPS service (registry, location DB,
  workstations, scheduler, Dijkstra paths, server, simulation facade)
* :mod:`repro.bluetooth` — the Bluetooth baseband simulator
* :mod:`repro.radio` — propagation + the FHS collision channel
* :mod:`repro.building`, :mod:`repro.mobility` — floor plans and walkers
* :mod:`repro.lan` — the simulated Ethernet
* :mod:`repro.sim` — the discrete-event kernel
* :mod:`repro.experiments` — the paper's table/figure harnesses
* :mod:`repro.analysis` — statistics and plain-text rendering
"""

from .core import (
    BIPSConfig,
    BIPSError,
    BIPSServer,
    BIPSSimulation,
    MasterSchedulingPolicy,
    PathResult,
    TrackingReport,
    UserRegistry,
    VisibilityPolicy,
)

__version__ = "1.0.0"

__all__ = [
    "BIPSConfig",
    "BIPSError",
    "BIPSServer",
    "BIPSSimulation",
    "MasterSchedulingPolicy",
    "PathResult",
    "TrackingReport",
    "UserRegistry",
    "VisibilityPolicy",
    "__version__",
]
