"""Inter-piconet interference on the shared 2.4 GHz band.

Bluetooth piconets do not coordinate their hopping: two piconets within
radio range collide whenever they momentarily occupy the same RF
channel.  For a 79-channel band the per-packet collision probability
against one interfering piconet is ≈ 1/79 per active neighbour (the
classical frequency-hopping collision model), which is why the paper
can largely ignore it for a one-piconet-per-room deployment — but a
reproduction that places piconets in *adjacent* rooms should be able to
quantify the effect, so the model is available as an opt-in.

:class:`SharedBand` tracks which masters are actively receiving during
any tick and lets a :class:`~repro.radio.channel.ResponseChannel`
ask whether a given packet was hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.bluetooth.constants import NUM_RF_CHANNELS
from repro.sim.rng import RandomStream

#: Per-packet collision probability against one concurrently active
#: neighbouring piconet (uniform hopping over 79 channels).
PER_NEIGHBOR_COLLISION_PROBABILITY = 1.0 / NUM_RF_CHANNELS


@dataclass
class BandStats:
    """Interference counters."""

    checks: int = 0
    corrupted: int = 0


class SharedBand:
    """A registry of piconets sharing the band, with a neighbour graph.

    Each piconet registers an *activity predicate* (is its master's
    radio busy at this tick?) and its set of interfering neighbours
    (typically the piconets of adjacent rooms).  A packet addressed to
    piconet P at tick T is corrupted independently with probability
    ``1/79`` per active neighbour of P.
    """

    def __init__(self, rng: RandomStream) -> None:
        self.rng = rng
        self.stats = BandStats()
        self._activity: dict[str, Callable[[int], bool]] = {}
        self._neighbors: dict[str, set[str]] = {}
        # Sorted snapshot of each neighbour set, rebuilt on topology
        # change: the per-packet path iterates a stable tuple instead
        # of sorting (or walking an unordered set) per check.
        self._neighbor_order: dict[str, tuple[str, ...]] = {}

    def register(
        self,
        piconet_id: str,
        active_at: Callable[[int], bool],
        neighbors: Optional[set[str]] = None,
    ) -> None:
        """Add a piconet with its activity predicate and neighbour set."""
        if piconet_id in self._activity:
            raise ValueError(f"piconet {piconet_id!r} already registered")
        self._activity[piconet_id] = active_at
        self._neighbors[piconet_id] = set(neighbors or ())
        self._neighbor_order[piconet_id] = tuple(sorted(self._neighbors[piconet_id]))

    def connect(self, a: str, b: str) -> None:
        """Declare two piconets to be within interference range."""
        for piconet_id in (a, b):
            if piconet_id not in self._activity:
                raise KeyError(f"unknown piconet {piconet_id!r}")
        if a == b:
            raise ValueError("a piconet does not interfere with itself")
        self._neighbors[a].add(b)
        self._neighbors[b].add(a)
        self._neighbor_order[a] = tuple(sorted(self._neighbors[a]))
        self._neighbor_order[b] = tuple(sorted(self._neighbors[b]))

    def active_neighbors(self, piconet_id: str, tick: int) -> int:
        """How many neighbours of ``piconet_id`` are on the air at ``tick``."""
        neighbors = self._neighbor_order.get(piconet_id)
        if neighbors is None:
            raise KeyError(f"unknown piconet {piconet_id!r}")
        activity = self._activity
        return sum(1 for n in neighbors if activity[n](tick))

    def corrupts(self, piconet_id: str, tick: int) -> bool:
        """Whether a packet to ``piconet_id`` at ``tick`` is hit.

        Draws once per active neighbour at probability 1/79 each.
        """
        self.stats.checks += 1
        count = self.active_neighbors(piconet_id, tick)
        for _ in range(count):
            if self.rng.random() < PER_NEIGHBOR_COLLISION_PROBABILITY:
                self.stats.corrupted += 1
                return True
        return False

    def survival_predicate(self, piconet_id: str) -> Callable[[object, int], bool]:
        """A reachability predicate for a ResponseChannel.

        Returns a callable suitable for
        :class:`~repro.radio.channel.ResponseChannel`'s ``reachable``
        argument: True when the packet survives interference.
        """

        def survives(_packet: object, tick: int) -> bool:
            return not self.corrupts(piconet_id, tick)

        return survives


@dataclass(frozen=True)
class InterferenceEstimate:
    """Closed-form loss estimate for sanity checks and sizing."""

    active_neighbors: int

    @property
    def packet_loss_probability(self) -> float:
        """1 − (1 − 1/79)^n."""
        survive = (1.0 - PER_NEIGHBOR_COLLISION_PROBABILITY) ** self.active_neighbors
        return 1.0 - survive
