"""Spatial radio medium: who can hear whom.

Tracks station positions and answers range queries through a
:class:`~repro.radio.propagation.CoverageModel`.  The BIPS core uses
room membership as its location granule, but the medium supports the
finer geometric studies (coverage-boundary behaviour, overlapping
piconets) used in the extension experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.sim.hotpath import hot_path

from .propagation import CoverageModel


@dataclass(frozen=True)
class Position:
    """A 2-D position in metres (building floor plane)."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def moved_toward(self, target: "Position", distance: float) -> "Position":
        """The point ``distance`` metres from here toward ``target``.

        Overshooting clamps to ``target``.
        """
        total = self.distance_to(target)
        if total <= distance or total == 0.0:
            return target
        fraction = distance / total
        return Position(
            self.x + (target.x - self.x) * fraction,
            self.y + (target.y - self.y) * fraction,
        )


class RadioMedium:
    """A registry of named stations with positions and a coverage model."""

    def __init__(self, coverage: Optional[CoverageModel] = None) -> None:
        self.coverage = coverage if coverage is not None else CoverageModel()
        self._positions: dict[str, Position] = {}

    def place(self, station: str, position: Position) -> None:
        """Add or move a station."""
        self._positions[station] = position

    def remove(self, station: str) -> None:
        """Remove a station; unknown names are ignored."""
        self._positions.pop(station, None)

    def position_of(self, station: str) -> Position:
        """Current position of ``station``.

        Raises:
            KeyError: if the station is not placed.
        """
        return self._positions[station]

    def distance(self, a: str, b: str) -> float:
        """Distance between two placed stations in metres."""
        return self._positions[a].distance_to(self._positions[b])

    def in_range(self, a: str, b: str) -> bool:
        """Whether stations ``a`` and ``b`` can communicate."""
        return self.coverage.in_range(self.distance(a, b))

    @hot_path
    def stations_in_range_of(self, station: str) -> list[str]:
        """All other placed stations within coverage of ``station``.

        Compares squared distances against the coverage model's
        precomputed squared radius: one multiply per station instead of
        a ``hypot`` square root (exact for the same reason —
        ``sqrt`` is monotonic and both sides are non-negative).
        """
        origin = self._positions[station]
        ox = origin.x
        oy = origin.y
        radius_sq = self.coverage.radius_sq_m2
        return [  # lint: disable=PERF001 -- the fresh list IS the return value; callers keep it past the call
            name
            for name, position in self._positions.items()  # lint: disable=DET003 -- dict preserves placement order, which is deterministic
            if name != station
            and (position.x - ox) ** 2 + (position.y - oy) ** 2 <= radius_sq
        ]

    @property
    def station_count(self) -> int:
        """Number of placed stations."""
        return len(self._positions)

    def __contains__(self, station: str) -> bool:
        return station in self._positions
