"""The inquiry-response channel with collision handling.

This is the mechanism the paper's authors added to BlueHoc: when two
slaves transmit FHS inquiry responses in the same half-slot on the same
RF channel, the packets collide at the master and neither is received.

Slaves announce their responses ahead of delivery; the channel groups
them by ``(tick, rf_channel)`` and delivers each group in a single
kernel event: a lone response reaches the receiver, two or more collide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Optional, Sequence

from repro.bluetooth.packets import FHSPacket
from repro.sim.hotpath import hot_path
from repro.sim.kernel import Kernel


@dataclass(frozen=True)
class CollisionRecord:
    """One collision event: who clashed, where and when."""

    tick: int
    rf_channel: int
    senders: tuple[str, ...]


@dataclass
class ChannelStats:
    """Counters the channel maintains for analysis."""

    transmissions: int = 0
    delivered: int = 0
    collided: int = 0
    filtered: int = 0  # dropped by the reachability predicate
    collisions: list[CollisionRecord] = field(default_factory=list)

    @property
    def collision_events(self) -> int:
        """Number of distinct collision events (not packets lost)."""
        return len(self.collisions)


#: Receives a successfully delivered FHS: ``callback(packet, tick)``.
FHSReceiver = Callable[[FHSPacket, int], None]

#: Optional reachability predicate: ``reachable(packet, tick) -> bool``.
ReachabilityPredicate = Callable[[FHSPacket, int], bool]


class ResponseChannel:
    """Collects FHS inquiry responses addressed to one master.

    Every piconet master owns one instance.  Scanners call
    :meth:`schedule_fhs` with the future tick at which their response
    packet occupies the air; the channel resolves simultaneous same-
    channel transmissions as collisions at delivery time.
    """

    def __init__(
        self,
        kernel: Kernel,
        receiver: FHSReceiver,
        reachable: Optional[ReachabilityPredicate] = None,
        name: str = "channel",
    ) -> None:
        self._kernel = kernel
        self._receiver = receiver
        self._reachable = reachable
        self.name = name
        self.stats = ChannelStats()
        self._pending: dict[tuple[int, int], list[FHSPacket]] = {}
        self._fhs_label = f"fhs:{name}"

    def schedule_fhs(self, tick: int, rf_channel: int, packet: FHSPacket) -> None:
        """Announce that ``packet`` will be on ``rf_channel`` at ``tick``.

        The first announcement for a ``(tick, channel)`` pair schedules
        the delivery event; later announcements for the same pair join
        the (potential) collision group.
        """
        if tick < self._kernel.now:
            raise ValueError(
                f"FHS scheduled in the past: tick={tick}, now={self._kernel.now}"
            )
        self.stats.transmissions += 1
        key = (tick, rf_channel)
        group = self._pending.get(key)
        if group is None:
            self._pending[key] = [packet]
            # Delivery events are never cancelled, so take the kernel's
            # handle-free fast path.
            self._kernel.post_at(
                tick, lambda: self._deliver(key), label=self._fhs_label
            )
        else:
            group.append(packet)

    @hot_path
    def schedule_fhs_batch(
        self, tick: int, rf_channel: int, packets: Sequence[FHSPacket]
    ) -> None:
        """Announce several same-``(tick, channel)`` packets in one pass.

        The batched engine's vectorized collision path: all concurrent
        transmissions land in the collision group with one bookkeeping
        pass and at most one kernel event, instead of N calls to
        :meth:`schedule_fhs`.  ``packets`` is copied — callers reuse
        their batch buffer across advances.
        """
        count = len(packets)
        if count == 0:
            return
        if tick < self._kernel.now:
            raise ValueError(
                f"FHS scheduled in the past: tick={tick}, now={self._kernel.now}"
            )
        self.stats.transmissions += count
        key = (tick, rf_channel)
        group = self._pending.get(key)
        if group is None:
            self._pending[key] = list(packets)
            # Delivery events are never cancelled, so take the kernel's
            # handle-free fast path.  partial, not a lambda: this is a
            # PERF001-audited hot path.
            self._kernel.post_at(tick, partial(self._deliver, key), label=self._fhs_label)
        else:
            group.extend(packets)

    def _deliver(self, key: tuple[int, int]) -> None:
        tick, rf_channel = key
        group = self._pending.pop(key)
        if self._reachable is not None:
            in_range = [pkt for pkt in group if self._reachable(pkt, tick)]
            self.stats.filtered += len(group) - len(in_range)
            group = in_range
        if not group:
            return
        if len(group) == 1:
            self.stats.delivered += 1
            self._receiver(group[0], tick)
            return
        self.stats.collided += len(group)
        self.stats.collisions.append(
            CollisionRecord(
                tick=tick,
                rf_channel=rf_channel,
                senders=tuple(str(pkt.sender) for pkt in group),
            )
        )

    @property
    def pending_count(self) -> int:
        """Number of announced but undelivered transmissions."""
        return sum(
            len(group) for group in self._pending.values()  # lint: disable=DET003 -- commutative sum; order cannot reach the result
        )

    def __repr__(self) -> str:
        return (
            f"ResponseChannel(name={self.name!r}, tx={self.stats.transmissions}, "
            f"delivered={self.stats.delivered}, collided={self.stats.collided})"
        )
