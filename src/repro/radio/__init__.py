"""Radio substrate: propagation, spatial medium, and the collision channel."""

from .channel import ChannelStats, CollisionRecord, ResponseChannel
from .interference import (
    PER_NEIGHBOR_COLLISION_PROBABILITY,
    InterferenceEstimate,
    SharedBand,
)
from .medium import Position, RadioMedium
from .propagation import (
    DEFAULT_COVERAGE_RADIUS_M,
    CoverageModel,
    LogDistancePathLoss,
)

__all__ = [
    "ChannelStats",
    "CollisionRecord",
    "ResponseChannel",
    "PER_NEIGHBOR_COLLISION_PROBABILITY",
    "InterferenceEstimate",
    "SharedBand",
    "Position",
    "RadioMedium",
    "DEFAULT_COVERAGE_RADIUS_M",
    "CoverageModel",
    "LogDistancePathLoss",
]
