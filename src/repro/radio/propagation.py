"""Radio propagation and coverage models.

The paper's class-2/3 Bluetooth radios give each BIPS piconet a
coverage circle of roughly 10 m radius (20 m diameter, §5).  BIPS treats
a room as the granule of location, so the model that matters is binary
in-coverage/out-of-coverage; a simple distance threshold plus an
optional log-distance path-loss model for finer studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Coverage radius the paper assumes for a BIPS piconet (metres).
DEFAULT_COVERAGE_RADIUS_M = 10.0


@dataclass(frozen=True)
class CoverageModel:
    """Binary disc coverage: in range iff distance <= radius."""

    radius_m: float = DEFAULT_COVERAGE_RADIUS_M
    #: ``radius_m ** 2``, precomputed for the square-distance fast path
    #: (:meth:`in_range_sq` skips the ``sqrt`` inside ``hypot``).
    radius_sq_m2: float = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.radius_m <= 0:
            raise ValueError(f"radius must be positive: {self.radius_m}")
        object.__setattr__(self, "radius_sq_m2", self.radius_m * self.radius_m)

    def in_range(self, distance_m: float) -> bool:
        """Whether a device at ``distance_m`` can communicate."""
        if distance_m < 0:
            raise ValueError(f"distance cannot be negative: {distance_m}")
        return distance_m <= self.radius_m

    def in_range_sq(self, distance_sq_m2: float) -> bool:
        """Range check on a *squared* distance (per-packet fast path)."""
        return distance_sq_m2 <= self.radius_sq_m2

    @property
    def diameter_m(self) -> float:
        """Coverage diameter (the paper's 20 m crossing length)."""
        return 2.0 * self.radius_m


@dataclass(frozen=True)
class LogDistancePathLoss:
    """Log-distance path loss: PL(d) = PL0 + 10·n·log10(d / d0).

    Indoor office environments typically have a path-loss exponent
    n ≈ 2.8-3.5; defaults follow common indoor measurements at 2.4 GHz.
    """

    reference_loss_db: float = 40.0
    reference_distance_m: float = 1.0
    exponent: float = 3.0

    def path_loss_db(self, distance_m: float) -> float:
        """Path loss in dB at ``distance_m`` (clamped to d0 up close)."""
        if distance_m < 0:
            raise ValueError(f"distance cannot be negative: {distance_m}")
        distance = max(distance_m, self.reference_distance_m)
        return self.reference_loss_db + 10.0 * self.exponent * math.log10(
            distance / self.reference_distance_m
        )

    def max_range_m(self, link_budget_db: float) -> float:
        """Largest distance whose path loss fits ``link_budget_db``.

        A class-2 Bluetooth radio (4 dBm TX, ≈ -76 dBm sensitivity) has
        ≈ 80 dB of budget, which with the defaults gives ≈ 21 m — the
        paper's 20 m piconet diameter is the same regime.
        """
        if link_budget_db <= self.reference_loss_db:
            return self.reference_distance_m
        exponent_term = (link_budget_db - self.reference_loss_db) / (
            10.0 * self.exponent
        )
        return self.reference_distance_m * (10.0 ** exponent_term)

    def coverage(self, link_budget_db: float = 80.0) -> CoverageModel:
        """Derive a binary coverage disc from a link budget."""
        return CoverageModel(radius_m=self.max_range_m(link_budget_db))
