"""Per-file and per-project context handed to every rule.

The engine parses each file once; rules share the AST, the inferred
dotted module name, and lazily-computed project facts (the metric
catalogue for OBS001).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

#: Backticked dotted names inside markdown table rows, with an optional
#: label suffix, e.g. ``| `core.queries_served{kind=location\|path}` |``.
_CATALOGUE_NAME = re.compile(
    r"`([a-z_][a-z0-9_]*(?:\.[a-z0-9_]+)+)(?:\{[^`]*\})?`"
)

#: File (relative to the project root) that catalogues every metric
#: namespace; rule OBS001 treats it as the source of truth.
METRIC_CATALOGUE_PATH = Path("docs") / "observability.md"


def module_name_for_path(path: Path) -> str:
    """The dotted module name of ``path``, inferred from ``__init__.py``.

    Walks up while the parent directory is a package; a file outside
    any package is its own bare stem.

    >>> # src/repro/sim/kernel.py -> "repro.sim.kernel" (given __init__.py files)
    """
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    directory = path.parent
    while (directory / "__init__.py").exists():
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(parts) if parts else path.stem


@dataclass
class ProjectContext:
    """Project-level facts shared by every file in one engine run."""

    root: Optional[Path] = None
    _catalogue: Optional[frozenset[str]] = field(default=None, repr=False)
    _catalogue_loaded: bool = field(default=False, repr=False)

    @staticmethod
    def discover(start: Path) -> "ProjectContext":
        """Find the project root (nearest ancestor with pyproject.toml)."""
        probe = start.resolve()
        if probe.is_file():
            probe = probe.parent
        for candidate in [probe, *probe.parents]:
            if (candidate / "pyproject.toml").exists():
                return ProjectContext(root=candidate)
        return ProjectContext(root=None)

    def metric_catalogue(self) -> Optional[frozenset[str]]:
        """Metric names catalogued in docs/observability.md table rows.

        Returns None when the project root or the catalogue document is
        missing, in which case OBS001 has nothing to check against.
        """
        if self._catalogue_loaded:
            return self._catalogue
        self._catalogue_loaded = True
        if self.root is None:
            return None
        doc = self.root / METRIC_CATALOGUE_PATH
        if not doc.exists():
            return None
        names: set[str] = set()
        for line in doc.read_text(encoding="utf-8").splitlines():
            if line.lstrip().startswith("|"):
                names.update(_CATALOGUE_NAME.findall(line))
        self._catalogue = frozenset(names)
        return self._catalogue


@dataclass
class FileContext:
    """Everything a rule may inspect about one parsed source file."""

    path: Path
    display_path: str
    module: str
    source: str
    tree: ast.Module
    project: ProjectContext
    _container_kinds: Optional[dict[str, str]] = field(
        default=None, repr=False, compare=False
    )

    def in_packages(self, *packages: str) -> bool:
        """Whether this file's module sits under any of ``packages``."""
        return any(
            self.module == package or self.module.startswith(package + ".")
            for package in packages
        )

    # -- lightweight local type inference (used by DET003) ---------------

    def container_kinds(self) -> dict[str, str]:
        """Names/attributes inferred as ``"set"`` or ``"dict"`` containers.

        Keys are ``name`` for plain names and ``self.name`` for instance
        attributes; the inference unions every assignment and annotation
        in the file, so a name assigned a set anywhere counts as a set.
        """
        if self._container_kinds is None:
            self._container_kinds = _infer_container_kinds(self.tree)
        return self._container_kinds


def _infer_container_kinds(tree: ast.Module) -> dict[str, str]:
    kinds: dict[str, str] = {}
    class_body_statements: set[int] = {
        id(statement)
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef)
        for statement in node.body
    }
    for node in ast.walk(tree):
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        annotation: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value, annotation = node.target, node.value, node.annotation
        else:
            continue
        key = _target_key(target)
        if key is None:
            continue
        kind = _value_container_kind(value) or _annotation_container_kind(annotation)
        if kind is not None:
            kinds[key] = kind
            # A class-body annotation (dataclass field or class attribute)
            # also describes the instance attribute of the same name.
            if isinstance(target, ast.Name) and id(node) in class_body_statements:
                kinds[f"self.{target.id}"] = kind
    return kinds


def _target_key(target: Optional[ast.expr]) -> Optional[str]:
    if isinstance(target, ast.Name):
        return target.id
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return f"self.{target.attr}"
    return None


def expression_key(node: ast.expr) -> Optional[str]:
    """The ``container_kinds`` key of an expression, if it has one."""
    return _target_key(node)


_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_DICT_CONSTRUCTORS = frozenset({"dict", "defaultdict", "Counter", "OrderedDict"})
_SET_ANNOTATIONS = frozenset(
    {"set", "Set", "frozenset", "FrozenSet", "MutableSet", "AbstractSet"}
)
_DICT_ANNOTATIONS = frozenset(
    {"dict", "Dict", "defaultdict", "DefaultDict", "Mapping", "MutableMapping",
     "OrderedDict", "Counter"}
)


def _value_container_kind(value: Optional[ast.expr]) -> Optional[str]:
    """"set"/"dict" when ``value`` evidently builds one, else None."""
    if value is None:
        return None
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        if value.func.id in _SET_CONSTRUCTORS:
            return "set"
        if value.func.id in _DICT_CONSTRUCTORS:
            return "dict"
    return None


def _annotation_container_kind(annotation: Optional[ast.expr]) -> Optional[str]:
    if annotation is None:
        return None
    base: Optional[str] = None
    if isinstance(annotation, ast.Name):
        base = annotation.id
    elif isinstance(annotation, ast.Subscript) and isinstance(annotation.value, ast.Name):
        base = annotation.value.id
    elif isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        # String annotation: look at the head, e.g. "set[BDAddr]".
        base = annotation.value.split("[", 1)[0].strip()
    if base in _SET_ANNOTATIONS:
        return "set"
    if base in _DICT_ANNOTATIONS:
        return "dict"
    return None
