"""The whole-tree context handed to project-scoped lint rules.

A :class:`ProjectGraph` is built once per ``--deep`` engine run from
the already-parsed per-file contexts: no file is read or parsed twice,
and — like everything in :mod:`repro.lint` — nothing is ever imported
or executed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional

from repro.lint.graph.calls import CallGraph
from repro.lint.graph.imports import ImportGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.context import FileContext

#: Schema version of the ``--graph-out`` JSON dump.
GRAPH_JSON_VERSION = 1


@dataclass
class ProjectGraph:
    """Everything a project rule may inspect about the linted tree."""

    root: Optional[Path]
    files: list["FileContext"] = field(default_factory=list)
    imports: ImportGraph = field(default_factory=lambda: ImportGraph(()))
    calls: CallGraph = field(default_factory=CallGraph)

    def file_for_module(self, module: str) -> Optional["FileContext"]:
        for context in self.files:
            if context.module == module:
                return context
        return None

    def modules_in(self, *packages: str) -> list[str]:
        """Project modules under any of the given dotted packages."""
        return sorted(
            module
            for module in self.imports.modules
            if any(
                module == package or module.startswith(package + ".")
                for package in packages
            )
        )

    # -- export ----------------------------------------------------------

    def to_json(self) -> str:
        """Both graphs as one versioned, deterministic JSON document."""
        payload = {
            "version": GRAPH_JSON_VERSION,
            "imports": self.imports.to_json_dict(),
            "calls": self.calls.to_json_dict(),
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def to_dot(self) -> str:
        """Both graphs as Graphviz digraphs, concatenated."""
        return self.imports.to_dot() + "\n" + self.calls.to_dot()


def build_project_graph(
    contexts: "Iterable[FileContext]", root: Optional[Path] = None
) -> ProjectGraph:
    """Build the import and call graphs over the parsed file contexts."""
    ordered = sorted(contexts, key=lambda context: context.module)
    return ProjectGraph(
        root=root,
        files=ordered,
        imports=ImportGraph.build(ordered),
        calls=CallGraph.build(ordered),
    )
