"""A name-resolution-based whole-program call graph.

The resolver only follows bindings it can prove statically:

* bare names → local defs in the same module, then imported names
  (following ``as`` aliases and ``__init__`` re-export chains);
* ``self.method()`` / ``cls.method()`` → methods of the enclosing
  class, including bases defined in the same module;
* ``Class.method()`` and ``alias.attr(...)`` chains rooted at an
  imported module or class;
* ``Class(...)`` → the class's ``__init__`` when it defines one.

Anything else — calls through instance attributes, subscripts,
call results, locals — is **conservatively skipped** and counted in
:class:`ResolutionStats`, never guessed.  The graph therefore
under-approximates edges through dynamic dispatch and slightly
over-approximates within a function (nested-function bodies are
attributed to their enclosing function: creating a closure that calls
``f`` counts as the outer function calling ``f``, which is the right
bias for taint and allocation analyses).
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

from repro.lint.graph.imports import resolve_relative

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.context import FileContext

_BUILTIN_NAMES = frozenset(dir(builtins))

#: Resolution outcomes recorded per call site.
PROJECT = "project"  #: resolved to a function defined in the linted tree
EXTERNAL = "external"  #: resolved to an imported non-project module/object
BUILTIN = "builtin"  #: a Python builtin
DYNAMIC = "dynamic"  #: provably not statically addressable; skipped
UNKNOWN = "unknown"  #: statically addressable in form, but unresolvable


@dataclass(frozen=True)
class FunctionNode:
    """One function or method defined in the linted tree."""

    name: str  #: fully qualified, e.g. ``repro.sim.kernel.Kernel.step``
    module: str
    qualname: str  #: within the module, e.g. ``Kernel.step``
    path: str  #: display path of the defining file
    line: int
    decorators: tuple[str, ...] = ()  #: resolved dotted decorator names

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "module": self.module,
            "path": self.path,
            "line": self.line,
            "decorators": list(self.decorators),
        }


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    caller: str  #: FunctionNode.name of the enclosing function
    callee: str  #: resolved target (node name, dotted external, or source text)
    kind: str  #: PROJECT / EXTERNAL / BUILTIN / DYNAMIC / UNKNOWN
    path: str
    line: int

    def to_dict(self) -> dict[str, object]:
        return {
            "caller": self.caller,
            "callee": self.callee,
            "kind": self.kind,
            "line": self.line,
        }


@dataclass
class ResolutionStats:
    """How many call sites each resolution outcome covered."""

    counts: dict[str, int] = field(default_factory=dict)

    def note(self, kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, *kinds: str) -> float:
        """Share of all call sites classified as any of ``kinds``."""
        if not self.total:
            return 1.0
        return sum(self.counts.get(kind, 0) for kind in kinds) / self.total

    @property
    def addressable_resolution(self) -> float:
        """Of the statically-addressable call sites (everything except
        the provably-dynamic ones), the share actually resolved."""
        addressed = self.total - self.counts.get(DYNAMIC, 0)
        if not addressed:
            return 1.0
        return (addressed - self.counts.get(UNKNOWN, 0)) / addressed


@dataclass
class _ModuleIndex:
    """Per-module name bindings gathered in the first pass."""

    module: str
    path: str
    #: top-level function name -> node name
    functions: dict[str, str] = field(default_factory=dict)
    #: class name -> {method name -> node name}
    classes: dict[str, dict[str, str]] = field(default_factory=dict)
    #: class name -> base class names (same-module resolution only)
    bases: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: imported alias -> ("module", dotted) or ("object", dotted)
    aliases: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: module-level variable -> class name it is an instance of (when the
    #: assignment is an evident ``name = ClassName(...)``), else ""
    variables: dict[str, str] = field(default_factory=dict)


class CallGraph:
    """Call edges between :class:`FunctionNode`s of one linted tree."""

    def __init__(self) -> None:
        self.nodes: dict[str, FunctionNode] = {}
        self.sites: list[CallSite] = []
        self.stats = ResolutionStats()
        self._callees: dict[str, list[CallSite]] = {}
        self._callers: dict[str, list[CallSite]] = {}
        self._indexes: dict[str, _ModuleIndex] = {}

    # -- construction ----------------------------------------------------

    @classmethod
    def build(cls, contexts: "Iterable[FileContext]") -> "CallGraph":
        graph = cls()
        ordered = sorted(contexts, key=lambda c: c.module)
        for context in ordered:
            graph._index_module(context)
        for context in ordered:
            graph._scan_calls(context)
        return graph

    def _index_module(self, context: "FileContext") -> None:
        module = context.module
        index = _ModuleIndex(module=module, path=context.display_path)
        is_package = context.path.name == "__init__.py"
        for statement in context.tree.body:
            self._index_statement(context, index, statement, is_package)
        self._indexes[module] = index

    def _index_statement(
        self,
        context: "FileContext",
        index: _ModuleIndex,
        statement: ast.stmt,
        is_package: bool,
    ) -> None:
        module = index.module
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            node_name = f"{module}.{statement.name}"
            index.functions[statement.name] = node_name
            self._add_node(context, node_name, statement.name, statement)
        elif isinstance(statement, ast.ClassDef):
            methods: dict[str, str] = {}
            for item in statement.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{statement.name}.{item.name}"
                    node_name = f"{module}.{qual}"
                    methods[item.name] = node_name
                    self._add_node(context, node_name, qual, item)
            index.classes[statement.name] = methods
            index.bases[statement.name] = tuple(
                base.id for base in statement.bases if isinstance(base, ast.Name)
            )
        elif isinstance(statement, ast.Import):
            for alias in statement.names:
                bound = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                index.aliases[bound] = ("module", target)
        elif isinstance(statement, ast.ImportFrom):
            base = resolve_relative(module, is_package, statement.level, statement.module)
            if not base:
                return
            for alias in statement.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                index.aliases[bound] = ("object", f"{base}.{alias.name}")
        elif isinstance(statement, (ast.Assign, ast.AnnAssign)):
            targets = (
                statement.targets if isinstance(statement, ast.Assign) else [statement.target]
            )
            value = statement.value
            instance_of = ""
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
            ):
                instance_of = value.func.id
            for target in targets:
                if isinstance(target, ast.Name):
                    index.variables[target.id] = instance_of
        elif isinstance(statement, ast.If):
            # Index both arms: TYPE_CHECKING imports still bind names
            # the resolver should recognise (they resolve as external
            # or project objects exactly like runtime imports).
            for child in statement.body + statement.orelse:
                self._index_statement(context, index, child, is_package)
        elif isinstance(statement, (ast.Try,)):
            for child in statement.body + statement.orelse + statement.finalbody:
                self._index_statement(context, index, child, is_package)
            for handler in statement.handlers:
                for child in handler.body:
                    self._index_statement(context, index, child, is_package)

    def _add_node(
        self,
        context: "FileContext",
        node_name: str,
        qualname: str,
        statement: ast.stmt,
    ) -> None:
        assert isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
        self.nodes[node_name] = FunctionNode(
            name=node_name,
            module=context.module,
            qualname=qualname,
            path=context.display_path,
            line=statement.lineno,
            decorators=tuple(
                dotted
                for dotted in (_dotted_text(d) for d in statement.decorator_list)
                if dotted
            ),
        )

    # -- object resolution ----------------------------------------------

    def _resolve_object(self, dotted: str, _depth: int = 0) -> tuple[str, str]:
        """Resolve a dotted reference to a (kind, name) pair.

        Follows ``__init__`` re-export chains: ``repro.faults.profile_names``
        resolves through ``from .profiles import profile_names`` in the
        package ``__init__`` to ``repro.faults.profiles.profile_names``.
        """
        if _depth > 8:  # re-export cycle; give up rather than loop
            return (UNKNOWN, dotted)
        parts = dotted.split(".")
        # Longest known project-module prefix.
        for cut in range(len(parts), 0, -1):
            module = ".".join(parts[:cut])
            if module in self._indexes:
                rest = parts[cut:]
                return self._resolve_in_module(module, rest, dotted, _depth)
        return (EXTERNAL, dotted)

    def _resolve_in_module(
        self, module: str, rest: list[str], dotted: str, depth: int
    ) -> tuple[str, str]:
        index = self._indexes[module]
        if not rest:
            return (EXTERNAL, dotted)  # calling a module: not a function
        head = rest[0]
        if head in index.functions and len(rest) == 1:
            return (PROJECT, index.functions[head])
        if head in index.classes:
            methods = self._class_methods(module, head)
            if len(rest) == 1:
                init = methods.get("__init__")
                # Class() invokes __init__ when one is defined; a
                # dataclass/namedtuple without one has no body to taint.
                return (PROJECT, init) if init else (EXTERNAL, dotted)
            if len(rest) == 2 and rest[1] in methods:
                return (PROJECT, methods[rest[1]])
            if len(rest) == 2 and rest[1].startswith("__") and rest[1].endswith("__"):
                return (BUILTIN, dotted)  # dunder inherited from object
            return (UNKNOWN, dotted)
        if head in index.aliases:
            kind, target = index.aliases[head]
            return self._resolve_object(".".join([target] + rest[1:]), depth + 1)
        if head in index.variables:
            instance_of = index.variables[head]
            if instance_of in index.classes and len(rest) == 2:
                target = self._class_methods(module, instance_of).get(rest[1])
                if target is not None:
                    return (PROJECT, target)
            return (DYNAMIC, dotted)  # module-level object; value untracked
        return (UNKNOWN, dotted)

    def _class_methods(self, module: str, class_name: str) -> dict[str, str]:
        """Methods of a class, including same-module single-level bases."""
        index = self._indexes[module]
        methods = dict(index.classes.get(class_name, {}))
        for base in index.bases.get(class_name, ()):
            for name, node in index.classes.get(base, {}).items():
                methods.setdefault(name, node)
        return methods

    # -- call-site scanning ----------------------------------------------

    def _scan_calls(self, context: "FileContext") -> None:
        module = context.module
        index = self._indexes[module]
        for statement in context.tree.body:
            self._scan_container(context, index, statement, class_name=None)

    def _scan_container(
        self,
        context: "FileContext",
        index: _ModuleIndex,
        statement: ast.stmt,
        class_name: Optional[str],
    ) -> None:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{class_name}.{statement.name}" if class_name else statement.name
            self._scan_function(context, index, statement, f"{index.module}.{qual}", class_name)
        elif isinstance(statement, ast.ClassDef):
            for item in statement.body:
                self._scan_container(context, index, item, class_name=statement.name)
        elif isinstance(statement, (ast.If, ast.Try)):
            children = list(getattr(statement, "body", []))
            children += list(getattr(statement, "orelse", []))
            children += list(getattr(statement, "finalbody", []))
            for handler in getattr(statement, "handlers", []):
                children += list(handler.body)
            for child in children:
                self._scan_container(context, index, child, class_name)

    def _scan_function(
        self,
        context: "FileContext",
        index: _ModuleIndex,
        function: ast.stmt,
        node_name: str,
        class_name: Optional[str],
    ) -> None:
        assert isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef))
        local_names = _local_bindings(function)
        # Function-body imports rebind names locally; fold them into the
        # resolver's view for this function only.
        local_aliases = dict(index.aliases)
        for sub in ast.walk(function):
            if isinstance(sub, ast.Import):
                for alias in sub.names:
                    bound = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    local_aliases[bound] = ("module", target)
            elif isinstance(sub, ast.ImportFrom):
                base = resolve_relative(
                    index.module, context.path.name == "__init__.py", sub.level, sub.module
                )
                if base:
                    for alias in sub.names:
                        if alias.name != "*":
                            local_aliases[alias.asname or alias.name] = (
                                "object",
                                f"{base}.{alias.name}",
                            )
        scoped = _ModuleIndex(
            module=index.module,
            path=index.path,
            functions=index.functions,
            classes=index.classes,
            bases=index.bases,
            aliases=local_aliases,
            variables=index.variables,
        )
        for sub in ast.walk(function):
            if isinstance(sub, ast.Call):
                kind, callee = self._resolve_call(
                    scoped, sub.func, class_name, local_names
                )
                site = CallSite(
                    caller=node_name,
                    callee=callee,
                    kind=kind,
                    path=context.display_path,
                    line=sub.lineno,
                )
                self.sites.append(site)
                self.stats.note(kind)
                if kind == PROJECT:
                    self._callees.setdefault(node_name, []).append(site)
                    self._callers.setdefault(callee, []).append(site)

    def _resolve_call(
        self,
        index: _ModuleIndex,
        func: ast.expr,
        class_name: Optional[str],
        local_names: frozenset[str],
    ) -> tuple[str, str]:
        module = index.module
        if isinstance(func, ast.Name):
            name = func.id
            if name in local_names:
                return (DYNAMIC, name)
            if name in index.functions:
                return (PROJECT, index.functions[name])
            if name in index.classes:
                methods = self._class_methods(module, name)
                init = methods.get("__init__")
                return (PROJECT, init) if init else (EXTERNAL, f"{module}.{name}")
            if name in index.aliases:
                kind, target = index.aliases[name]
                if kind == "module":
                    return (EXTERNAL, target)  # calling a module object
                return self._resolve_object(target)
            if name in index.variables:
                return (DYNAMIC, name)  # module-level object; value untracked
            if name in _BUILTIN_NAMES:
                return (BUILTIN, name)
            return (UNKNOWN, name)
        if isinstance(func, ast.Attribute):
            dotted = _dotted_text(func)
            if not dotted:
                return (DYNAMIC, f"<{type(func.value).__name__}>.{func.attr}")
            parts = dotted.split(".")
            root = parts[0]
            if root in ("self", "cls") and class_name is not None:
                if len(parts) == 2:
                    methods = self._class_methods(module, class_name)
                    target = methods.get(parts[1])
                    if target is not None:
                        return (PROJECT, target)
                    return (DYNAMIC, dotted)  # attribute, property, or base elsewhere
                return (DYNAMIC, dotted)  # self.obj.method(): receiver untyped
            if root in local_names:
                return (DYNAMIC, dotted)
            if root in index.classes:
                resolved = self._resolve_in_module(module, parts, dotted, 0)
                return resolved if resolved[0] == PROJECT else (UNKNOWN, dotted)
            if root in index.aliases:
                kind, target = index.aliases[root]
                return self._resolve_object(".".join([target] + parts[1:]))
            if root in index.variables:
                # A module-level singleton: resolve `REGISTRY.add(...)`
                # through its evident `REGISTRY = RuleRegistry()` class.
                instance_of = index.variables[root]
                if instance_of in index.classes and len(parts) == 2:
                    target = self._class_methods(module, instance_of).get(parts[1])
                    if target is not None:
                        return (PROJECT, target)
                return (DYNAMIC, dotted)
            if root in _BUILTIN_NAMES:
                return (BUILTIN, dotted)
            return (UNKNOWN, dotted)
        # Calls on call results, subscripts, lambdas: dynamic by form.
        return (DYNAMIC, f"<{type(func).__name__}>")

    # -- queries ---------------------------------------------------------

    def callees_of(self, node_name: str) -> tuple[CallSite, ...]:
        return tuple(self._callees.get(node_name, ()))

    def callers_of(self, node_name: str) -> tuple[CallSite, ...]:
        return tuple(self._callers.get(node_name, ()))

    def project_edges(self) -> Iterator[CallSite]:
        for site in self.sites:
            if site.kind == PROJECT:
                yield site

    def reachable_from(self, roots: Iterable[str]) -> dict[str, tuple[str, ...]]:
        """BFS closure over project edges: node -> shortest call chain
        from the nearest root (chains start at the root, end at node)."""
        chains: dict[str, tuple[str, ...]] = {}
        frontier: list[str] = []
        for root in sorted(set(roots)):
            if root not in chains:
                chains[root] = (root,)
                frontier.append(root)
        while frontier:
            next_frontier: list[str] = []
            for node in frontier:
                for site in self._callees.get(node, ()):
                    if site.callee not in chains:
                        chains[site.callee] = chains[node] + (site.callee,)
                        next_frontier.append(site.callee)
            frontier = next_frontier
        return chains

    def chains_to(self, targets: Iterable[str]) -> dict[str, tuple[str, ...]]:
        """Reverse BFS: caller -> shortest chain from caller to a target."""
        chains: dict[str, tuple[str, ...]] = {}
        frontier: list[str] = []
        for target in sorted(set(targets)):
            if target not in chains:
                chains[target] = (target,)
                frontier.append(target)
        while frontier:
            next_frontier: list[str] = []
            for node in frontier:
                for site in self._callers.get(node, ()):
                    if site.caller not in chains:
                        chains[site.caller] = (site.caller,) + chains[node]
                        next_frontier.append(site.caller)
            frontier = next_frontier
        return chains

    # -- export ----------------------------------------------------------

    def to_json_dict(self) -> dict[str, object]:
        return {
            "nodes": [self.nodes[name].to_dict() for name in sorted(self.nodes)],
            "edges": [site.to_dict() for site in self.project_edges()],
            "resolution": dict(sorted(self.stats.counts.items())),
        }

    def to_dot(self) -> str:
        """A Graphviz digraph of the project-internal call edges."""
        lines = ["digraph calls {", "  rankdir=LR;", '  node [shape=box, fontsize=9];']
        seen: set[tuple[str, str]] = set()
        for site in self.project_edges():
            key = (site.caller, site.callee)
            if key in seen:
                continue
            seen.add(key)
            lines.append(f'  "{site.caller}" -> "{site.callee}";')
        lines.append("}")
        return "\n".join(lines) + "\n"


def _dotted_text(node: ast.expr) -> str:
    """Best-effort dotted rendering of a Name/Attribute chain."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return ""


def _local_bindings(function: ast.stmt) -> frozenset[str]:
    """Parameter and locally-assigned names of ``function``.

    Locals shadow module scope; a call through one is treated as
    dynamic rather than resolved to a same-named module binding.
    Names bound by function-body imports are excluded — those are
    resolvable aliases, handled separately.
    """
    assert isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef))
    names: set[str] = set()
    imported: set[str] = set()
    for sub in ast.walk(function):
        # Parameters of the function itself and of any nested
        # function/lambda all shadow module scope for this analysis.
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            args = sub.args
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                names.add(arg.arg)
    for sub in ast.walk(function):
        if isinstance(sub, ast.Import):
            for alias in sub.names:
                imported.add(alias.asname or alias.name.split(".", 1)[0])
        elif isinstance(sub, ast.ImportFrom):
            for alias in sub.names:
                imported.add(alias.asname or alias.name)
        elif isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                sub.targets
                if isinstance(sub, ast.Assign)
                else [sub.target]
            )
            for target in targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            for leaf in ast.walk(sub.target):
                if isinstance(leaf, ast.Name):
                    names.add(leaf.id)
        elif isinstance(sub, ast.withitem) and sub.optional_vars is not None:
            for leaf in ast.walk(sub.optional_vars):
                if isinstance(leaf, ast.Name):
                    names.add(leaf.id)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) and sub is not function:
            names.add(sub.name)
        elif isinstance(sub, ast.comprehension):
            for leaf in ast.walk(sub.target):
                if isinstance(leaf, ast.Name):
                    names.add(leaf.id)
    return frozenset(names - imported)
