"""The project-wide import graph.

Each edge records *where* the import happens (file, line) and *how*:

* ``typing_only`` — inside an ``if TYPE_CHECKING:`` block; such edges
  never exist at runtime, so the layering rule ignores them;
* ``deferred`` — inside a function body; a real runtime dependency
  (ARCH001 checks it), just one that materialises on first call.

Targets are resolved to dotted module names: relative imports against
the importing module's package, ``from pkg import name`` to ``pkg.name``
when that is a project module and to ``pkg`` otherwise (importing an
*object* from a module depends on the module).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.context import FileContext


@dataclass(frozen=True)
class ImportEdge:
    """One import statement's contribution to the graph."""

    source: str  #: importing module (dotted)
    target: str  #: imported module (dotted, resolved)
    line: int
    typing_only: bool = False
    deferred: bool = False

    def to_dict(self) -> dict[str, object]:
        return {
            "source": self.source,
            "target": self.target,
            "line": self.line,
            "typing_only": self.typing_only,
            "deferred": self.deferred,
        }


def _typing_guarded_statements(tree: ast.Module) -> frozenset[int]:
    """ids of every node inside an ``if TYPE_CHECKING:`` block."""
    guarded: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        name = test.id if isinstance(test, ast.Name) else (
            test.attr if isinstance(test, ast.Attribute) else None
        )
        if name == "TYPE_CHECKING":
            for child in node.body:
                for sub in ast.walk(child):
                    guarded.add(id(sub))
    return frozenset(guarded)


def _function_statements(tree: ast.Module) -> frozenset[int]:
    """ids of every node inside a function or lambda body."""
    nested: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            for sub in ast.walk(node):
                if sub is not node:
                    nested.add(id(sub))
    return frozenset(nested)


def resolve_relative(module: str, is_package: bool, level: int, target: Optional[str]) -> str:
    """Resolve a ``from . import x``-style module reference to dotted form.

    ``module`` is the importing module, ``is_package`` whether it is an
    ``__init__`` (whose relative level-1 base is itself, not its parent).
    """
    if level == 0:
        return target or ""
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    # level 1 = the containing package; each extra level climbs one more.
    parts = parts[: len(parts) - (level - 1)] if level > 1 else parts
    if target:
        parts = parts + target.split(".")
    return ".".join(parts)


class ImportGraph:
    """Module → module import edges for one linted tree."""

    def __init__(self, modules: Iterable[str]) -> None:
        self.modules: frozenset[str] = frozenset(modules)
        self._edges: list[ImportEdge] = []
        self._by_source: dict[str, list[ImportEdge]] = {}

    # -- construction ----------------------------------------------------

    @classmethod
    def build(cls, contexts: "Iterable[FileContext]") -> "ImportGraph":
        ordered = sorted(contexts, key=lambda c: c.module)
        graph = cls(context.module for context in ordered)
        for context in ordered:
            graph._scan_module(context)
        return graph

    def _scan_module(self, context: "FileContext") -> None:
        module = context.module
        is_package = context.path.name == "__init__.py"
        typing_ids = _typing_guarded_statements(context.tree)
        function_ids = _function_statements(context.tree)
        for node in ast.walk(context.tree):
            typing_only = id(node) in typing_ids
            deferred = id(node) in function_ids and not typing_only
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._add(module, alias.name, node.lineno, typing_only, deferred)
            elif isinstance(node, ast.ImportFrom):
                base = resolve_relative(module, is_package, node.level, node.module)
                if not base:
                    continue
                self._add(module, base, node.lineno, typing_only, deferred)
                # `from pkg import name` may pull in the *submodule*
                # pkg.name; record that finer edge when it is a module
                # we know about, since that is the real dependency.
                for alias in node.names:
                    candidate = f"{base}.{alias.name}"
                    if candidate in self.modules:
                        self._add(module, candidate, node.lineno, typing_only, deferred)

    def _add(
        self, source: str, target: str, line: int, typing_only: bool, deferred: bool
    ) -> None:
        edge = ImportEdge(source, target, line, typing_only, deferred)
        self._edges.append(edge)
        self._by_source.setdefault(source, []).append(edge)

    # -- queries ---------------------------------------------------------

    def __iter__(self) -> Iterator[ImportEdge]:
        return iter(self._edges)

    def edges_from(self, module: str) -> tuple[ImportEdge, ...]:
        return tuple(self._by_source.get(module, ()))

    def project_edges(self, *, runtime_only: bool = False) -> list[ImportEdge]:
        """Edges whose target is another module of the linted tree.

        A dependency on package ``repro.x`` is attributed to its
        ``__init__`` module when only the package name is imported.
        """
        kept: list[ImportEdge] = []
        for edge in self._edges:
            if runtime_only and edge.typing_only:
                continue
            if edge.target in self.modules:
                kept.append(edge)
        return kept

    def runtime_module_graph(self) -> dict[str, set[str]]:
        """Adjacency of project modules via non-typing edges.

        Deferred (function-body) imports are excluded: they cannot
        participate in an import-time cycle, which is what this view
        feeds (ARCH001's cycle check).
        """
        adjacency: dict[str, set[str]] = {module: set() for module in self.modules}
        for edge in self._edges:
            if edge.typing_only or edge.deferred:
                continue
            if edge.target in self.modules and edge.target != edge.source:
                adjacency[edge.source].add(edge.target)
        return adjacency

    def cycles(self) -> list[tuple[str, ...]]:
        """Import-time cycles: every SCC of size > 1, members sorted.

        Iterative Tarjan over the runtime module graph — no recursion,
        so pathological trees cannot blow the stack.
        """
        adjacency = self.runtime_module_graph()
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        components: list[tuple[str, ...]] = []
        counter = 0
        for root in sorted(adjacency):
            if root in index:
                continue
            work: list[tuple[str, Iterator[str]]] = [(root, iter(sorted(adjacency[root])))]
            index[root] = low[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for successor in successors:
                    if successor not in index:
                        index[successor] = low[successor] = counter
                        counter += 1
                        stack.append(successor)
                        on_stack.add(successor)
                        work.append((successor, iter(sorted(adjacency[successor]))))
                        advanced = True
                        break
                    if successor in on_stack:
                        low[node] = min(low[node], index[successor])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        components.append(tuple(sorted(component)))
        return sorted(components)

    # -- export ----------------------------------------------------------

    def to_json_dict(self) -> dict[str, object]:
        return {
            "modules": sorted(self.modules),
            "edges": [edge.to_dict() for edge in self.project_edges()],
        }

    def to_dot(self) -> str:
        """A Graphviz digraph of the project-internal edges."""
        lines = ["digraph imports {", "  rankdir=LR;"]
        for module in sorted(self.modules):
            lines.append(f'  "{module}";')
        seen: set[tuple[str, str, bool]] = set()
        for edge in self.project_edges():
            key = (edge.source, edge.target, edge.typing_only)
            if key in seen or edge.source == edge.target:
                continue
            seen.add(key)
            style = ' [style=dashed, label="typing"]' if edge.typing_only else ""
            lines.append(f'  "{edge.source}" -> "{edge.target}"{style};')
        lines.append("}")
        return "\n".join(lines) + "\n"
