"""Whole-program graphs for project-scoped lint rules (``--deep``).

Two graphs, both built purely from :mod:`ast` — the same
never-import-the-code safety contract as the file engine:

* the **import graph** (:mod:`repro.lint.graph.imports`): module →
  module edges with enough provenance (line, ``typing_only``,
  ``deferred``) for the layering rule to separate runtime dependencies
  from annotations;
* the **call graph** (:mod:`repro.lint.graph.calls`): a
  name-resolution-based over/under-approximation — edges exist only
  where a callee is statically addressable (module-level names,
  imported names and their ``__init__`` re-exports, ``self.``/``cls.``
  methods), and every dynamically-dispatched call is conservatively
  skipped and counted, never guessed.

:mod:`repro.lint.graph.project` bundles both plus the per-file
contexts into the :class:`ProjectGraph` handed to every project rule.
"""

from __future__ import annotations

from repro.lint.graph.calls import CallGraph, CallSite, FunctionNode, ResolutionStats
from repro.lint.graph.imports import ImportEdge, ImportGraph
from repro.lint.graph.project import ProjectGraph, build_project_graph

__all__ = [
    "CallGraph",
    "CallSite",
    "FunctionNode",
    "ImportEdge",
    "ImportGraph",
    "ProjectGraph",
    "ResolutionStats",
    "build_project_graph",
]
