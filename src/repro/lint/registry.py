"""Rule registry: declaring, looking up, and enumerating lint rules.

Two rule kinds share the registry, distinguished by ``scope``:

* **file rules** (``scope="file"``, the :func:`rule` decorator) — a
  function from a :class:`~repro.lint.context.FileContext` to
  :class:`Violation` findings; run once per file;
* **project rules** (``scope="project"``, the :func:`project_rule`
  decorator) — a function from a whole-tree
  :class:`~repro.lint.graph.ProjectGraph` to
  :class:`ProjectViolation` findings (which carry their own anchor
  path); run once per ``--deep`` engine pass.

Both are registered under stable ids (``DET001``, ``ARCH001``, ...)
with enough metadata to generate the ``--list-rules`` output and the
docs/static-analysis.md catalogue, and both obey the same
``--select``/``--ignore`` filters and suppression comments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, NamedTuple, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    import ast

    from repro.lint.context import FileContext
    from repro.lint.graph.project import ProjectGraph


class Violation(NamedTuple):
    """One raw finding, before it is bound to a rule id and file path."""

    line: int
    column: int
    message: str


def at_node(node: "ast.AST", message: str) -> Violation:
    """A violation anchored at an AST node's location."""
    return Violation(
        getattr(node, "lineno", 1), getattr(node, "col_offset", 0), message
    )


class ProjectViolation(NamedTuple):
    """One project-rule finding, anchored to an explicit file.

    ``path`` must be the ``display_path`` of one of the linted files so
    line-level suppression comments in that file apply.
    """

    path: str
    line: int
    column: int
    message: str


def at_node_in(path: str, node: "ast.AST", message: str) -> ProjectViolation:
    """A project violation anchored at an AST node in a named file."""
    return ProjectViolation(
        path, getattr(node, "lineno", 1), getattr(node, "col_offset", 0), message
    )


RuleCheck = Callable[["FileContext"], Iterable[Violation]]
ProjectRuleCheck = Callable[["ProjectGraph"], Iterable[ProjectViolation]]

#: RuleSpec.scope values.
FILE_SCOPE = "file"
PROJECT_SCOPE = "project"


@dataclass(frozen=True)
class RuleSpec:
    """A registered rule plus its catalogue metadata."""

    id: str
    name: str
    summary: str
    rationale: str
    check: Union[RuleCheck, ProjectRuleCheck]
    scope: str = field(default=FILE_SCOPE)


class RuleRegistry:
    """The set of known rules, keyed by id."""

    def __init__(self) -> None:
        self._rules: dict[str, RuleSpec] = {}

    def add(self, spec: RuleSpec) -> None:
        if spec.id in self._rules:
            raise ValueError(f"duplicate lint rule id {spec.id!r}")
        self._rules[spec.id] = spec

    def get(self, rule_id: str) -> RuleSpec:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise KeyError(
                f"unknown lint rule {rule_id!r}; known: {', '.join(self.ids())}"
            ) from None

    def ids(self) -> list[str]:
        return sorted(self._rules)

    def __iter__(self) -> Iterator[RuleSpec]:
        for rule_id in self.ids():
            yield self._rules[rule_id]

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def select(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ) -> list[RuleSpec]:
        """The enabled subset: ``select`` wins, then ``ignore`` filters.

        Unknown ids raise :class:`KeyError` so a typo in CI fails loudly
        instead of silently disabling a gate.
        """
        chosen = list(select) if select is not None else self.ids()
        ignored = set(ignore) if ignore is not None else set()
        for rule_id in list(chosen) + sorted(ignored):
            self.get(rule_id)  # validate
        return [self.get(rule_id) for rule_id in chosen if rule_id not in ignored]


#: The process-wide registry that ``@rule`` populates on import of
#: :mod:`repro.lint.rules`.
REGISTRY = RuleRegistry()


def rule(
    rule_id: str, *, name: str, summary: str, rationale: str
) -> Callable[[RuleCheck], RuleCheck]:
    """Decorator registering ``check`` under ``rule_id`` in :data:`REGISTRY`."""

    def decorate(check: RuleCheck) -> RuleCheck:
        REGISTRY.add(
            RuleSpec(
                id=rule_id,
                name=name,
                summary=summary,
                rationale=rationale,
                check=check,
            )
        )
        return check

    return decorate


def project_rule(
    rule_id: str, *, name: str, summary: str, rationale: str
) -> Callable[[ProjectRuleCheck], ProjectRuleCheck]:
    """Decorator registering a whole-tree rule in :data:`REGISTRY`.

    Project rules only run under ``bips lint --deep``; a plain file
    pass never builds the graphs they need.
    """

    def decorate(check: ProjectRuleCheck) -> ProjectRuleCheck:
        REGISTRY.add(
            RuleSpec(
                id=rule_id,
                name=name,
                summary=summary,
                rationale=rationale,
                check=check,
                scope=PROJECT_SCOPE,
            )
        )
        return check

    return decorate
