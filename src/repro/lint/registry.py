"""Rule registry: declaring, looking up, and enumerating lint rules.

A rule is a function from a :class:`~repro.lint.context.FileContext` to
an iterable of :class:`Violation` findings, registered under a stable
id (``DET001``, ``BT001``, ...) with enough metadata to generate the
``--list-rules`` output and the docs/static-analysis.md catalogue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, NamedTuple, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    import ast

    from repro.lint.context import FileContext


class Violation(NamedTuple):
    """One raw finding, before it is bound to a rule id and file path."""

    line: int
    column: int
    message: str


def at_node(node: "ast.AST", message: str) -> Violation:
    """A violation anchored at an AST node's location."""
    return Violation(
        getattr(node, "lineno", 1), getattr(node, "col_offset", 0), message
    )


RuleCheck = Callable[["FileContext"], Iterable[Violation]]


@dataclass(frozen=True)
class RuleSpec:
    """A registered rule plus its catalogue metadata."""

    id: str
    name: str
    summary: str
    rationale: str
    check: RuleCheck


class RuleRegistry:
    """The set of known rules, keyed by id."""

    def __init__(self) -> None:
        self._rules: dict[str, RuleSpec] = {}

    def add(self, spec: RuleSpec) -> None:
        if spec.id in self._rules:
            raise ValueError(f"duplicate lint rule id {spec.id!r}")
        self._rules[spec.id] = spec

    def get(self, rule_id: str) -> RuleSpec:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise KeyError(
                f"unknown lint rule {rule_id!r}; known: {', '.join(self.ids())}"
            ) from None

    def ids(self) -> list[str]:
        return sorted(self._rules)

    def __iter__(self) -> Iterator[RuleSpec]:
        for rule_id in self.ids():
            yield self._rules[rule_id]

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def select(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ) -> list[RuleSpec]:
        """The enabled subset: ``select`` wins, then ``ignore`` filters.

        Unknown ids raise :class:`KeyError` so a typo in CI fails loudly
        instead of silently disabling a gate.
        """
        chosen = list(select) if select is not None else self.ids()
        ignored = set(ignore) if ignore is not None else set()
        for rule_id in list(chosen) + sorted(ignored):
            self.get(rule_id)  # validate
        return [self.get(rule_id) for rule_id in chosen if rule_id not in ignored]


#: The process-wide registry that ``@rule`` populates on import of
#: :mod:`repro.lint.rules`.
REGISTRY = RuleRegistry()


def rule(
    rule_id: str, *, name: str, summary: str, rationale: str
) -> Callable[[RuleCheck], RuleCheck]:
    """Decorator registering ``check`` under ``rule_id`` in :data:`REGISTRY`."""

    def decorate(check: RuleCheck) -> RuleCheck:
        REGISTRY.add(
            RuleSpec(
                id=rule_id,
                name=name,
                summary=summary,
                rationale=rationale,
                check=check,
            )
        )
        return check

    return decorate
