"""Declarative Bluetooth/paper constant spec backing rule BT001.

Each entry pins one name in :mod:`repro.bluetooth.constants` to the
value required by the Bluetooth 1.1 baseband specification or by the
paper (§3 timing, §5 scheduling policy).  The expected values are
expressed in ticks (1 tick = 312.5 µs) via :mod:`repro.sim.clock`, the
same authority the constants module itself uses, so the table encodes
*provenance*, not a copy of the implementation.
"""

from __future__ import annotations

from typing import NamedTuple, Union

from repro.sim.clock import ticks_from_milliseconds, ticks_from_seconds


class SpecEntry(NamedTuple):
    """One pinned constant: its required value and where it comes from."""

    name: str
    expected: Union[int, float]
    citation: str


#: The full pinned-constant table.  Perturbing any of these names in
#: ``repro.bluetooth.constants`` makes ``bips lint`` fail with the
#: citation in the message.
PAPER_SPEC: tuple[SpecEntry, ...] = (
    SpecEntry("NUM_RF_CHANNELS", 79, "BT 1.1: 79 RF channels in the 2.4 GHz ISM band"),
    SpecEntry("NUM_INQUIRY_FREQUENCIES", 32, "BT 1.1: 32 dedicated inquiry frequencies"),
    SpecEntry("TRAIN_SIZE", 16, "BT 1.1: trains A/B of 16 frequencies each"),
    SpecEntry("NUM_TRAINS", 2, "BT 1.1: two inquiry trains"),
    SpecEntry("TICKS_PER_HALF_SLOT", 1, "1 tick = one 312.5 µs half-slot"),
    SpecEntry("TICKS_PER_SLOT", 2, "BT 1.1: one slot is 625 µs = 2 half-slots"),
    SpecEntry(
        "TICKS_PER_TRAIN_PASS",
        32,
        "16 slots per train pass = 10 ms (paper §3.1)",
    ),
    SpecEntry(
        "INQUIRY_RESPONSE_DELAY_TICKS",
        2,
        "BT 1.1: FHS response exactly one slot (625 µs) after the ID packet",
    ),
    SpecEntry("N_INQUIRY", 256, "BT 1.1: N_inquiry = 256 passes per train dwell"),
    SpecEntry(
        "TICKS_PER_TRAIN_DWELL",
        256 * 32,
        "256 passes x 10 ms = 2.56 s per train dwell (paper §3.1)",
    ),
    SpecEntry(
        "INQUIRY_MAX_TICKS",
        4 * 256 * 32,
        "BT 1.1: error-free inquiry bounded by 4 x 2.56 s = 10.24 s",
    ),
    SpecEntry(
        "BACKOFF_MAX_SLOTS",
        1023,
        "BT 1.1: inquiry-response backoff uniform in 0..1023 slots",
    ),
    SpecEntry(
        "T_INQUIRY_SCAN_TICKS",
        ticks_from_seconds(1.28),
        "default T_inquiry_scan = 1.28 s (paper §3.1)",
    ),
    SpecEntry(
        "T_W_INQUIRY_SCAN_TICKS",
        ticks_from_milliseconds(11.25),
        "default T_w_inquiry_scan = 11.25 ms (paper §3.1)",
    ),
    SpecEntry(
        "T_PAGE_SCAN_TICKS",
        ticks_from_seconds(1.28),
        "page scan interval defaults to the inquiry scan interval",
    ),
    SpecEntry(
        "T_W_PAGE_SCAN_TICKS",
        ticks_from_milliseconds(11.25),
        "page scan window defaults to the inquiry scan window",
    ),
    SpecEntry(
        "SCAN_FREQUENCY_CHANGE_TICKS",
        4096,
        "scan frequency driven by CLKN bits 16-12: changes every 1.28 s",
    ),
    SpecEntry(
        "MAX_ACTIVE_SLAVES",
        7,
        "BT 1.1: 3-bit AM_ADDR, 0 reserved for broadcast -> 7 active slaves",
    ),
    SpecEntry(
        "SUPERVISION_TIMEOUT_TICKS",
        ticks_from_seconds(20.0),
        "BT 1.1 default link supervision timeout: 20 s",
    ),
    SpecEntry(
        "BIPS_INQUIRY_WINDOW_TICKS",
        ticks_from_seconds(3.84),
        "paper §5: 3.84 s inquiry window (2.56 s dwell + 1.28 s)",
    ),
    SpecEntry(
        "BIPS_OPERATIONAL_CYCLE_TICKS",
        ticks_from_seconds(15.4),
        "paper §5: ~15.4 s operational cycle (20 m piconet at 1.3 m/s)",
    ),
    SpecEntry("GIAC_LAP", 0x9E8B33, "BT 1.1: general inquiry access code LAP"),
)
