"""Determinism & protocol-invariant static analysis (``bips lint``).

An AST-based lint pass purpose-built for this reproduction: it enforces
the coding rules the byte-identical-replay guarantee rests on (seeded
RNG streams, simulated time, ordered iteration in hot paths) and pins
the Bluetooth protocol constants to the paper/spec values.  See
docs/static-analysis.md for the rule catalogue and suppression policy.

Public API::

    from repro.lint import REGISTRY, lint_paths, lint_source

    report = lint_paths(["src"])
    print(report.to_json())
"""

from __future__ import annotations

from repro.lint.diagnostics import Diagnostic, LintReport
from repro.lint.engine import (
    INTERNAL_RULE_ID,
    PARSE_RULE_ID,
    iter_python_files,
    lint_paths,
    lint_source,
)
from repro.lint.graph import ProjectGraph, build_project_graph
from repro.lint.registry import (
    REGISTRY,
    ProjectViolation,
    RuleSpec,
    Violation,
    at_node,
    at_node_in,
    project_rule,
    rule,
)
from repro.lint.spec import PAPER_SPEC, SpecEntry

# Importing the rules package runs every @rule decorator, so REGISTRY is
# fully populated the moment `repro.lint` is imported (`--list-rules`
# must not depend on an engine run having happened first).
from repro.lint import rules as _rules  # noqa: E402  (import-for-side-effect)

del _rules

__all__ = [
    "Diagnostic",
    "INTERNAL_RULE_ID",
    "LintReport",
    "PAPER_SPEC",
    "PARSE_RULE_ID",
    "ProjectGraph",
    "ProjectViolation",
    "REGISTRY",
    "RuleSpec",
    "SpecEntry",
    "Violation",
    "at_node",
    "at_node_in",
    "build_project_graph",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "project_rule",
    "rule",
]
