"""Suppression-comment parsing.

Two forms are recognised, always with a justification after ``--``
encouraged (see docs/static-analysis.md for the policy):

* line-level, on the physical line of the finding::

      total = sum(x for x in pool.values())  # lint: disable=DET003 -- commutative sum

* file-level, on a line of its own (conventionally near the top)::

      # lint: disable-file=OBS001 -- scratch benchmark, not part of the pipeline

Comments are located with :mod:`tokenize` so ``#`` characters inside
string literals never register as suppressions.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

_DIRECTIVE = re.compile(
    r"lint:\s*(?P<kind>disable-file|disable)\s*=\s*(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


@dataclass
class SuppressionIndex:
    """Which rules are suppressed where, for one file."""

    #: line number -> rule ids suppressed on that line
    by_line: dict[int, frozenset[str]] = field(default_factory=dict)
    #: rule ids suppressed for the whole file
    file_level: frozenset[str] = frozenset()
    #: how many findings this index actually silenced (set by the engine)
    hits: int = 0

    def covers(self, line: int, rule: str) -> bool:
        """Whether ``rule`` is suppressed at ``line``."""
        if rule in self.file_level:
            return True
        return rule in self.by_line.get(line, frozenset())


def _iter_comments(source: str) -> list[tuple[int, str]]:
    """(line, comment-text) pairs; tolerant of tokenisation failures."""
    try:
        return [
            (token.start[0], token.string)
            for token in tokenize.generate_tokens(io.StringIO(source).readline)
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Fall back to a naive scan; good enough for broken files, which
        # already carry a parse-error diagnostic.
        return [
            (number, "#" + line.split("#", 1)[1])
            for number, line in enumerate(source.splitlines(), start=1)
            if "#" in line
        ]


def scan_suppressions(source: str) -> SuppressionIndex:
    """Build the suppression index for one file's source text."""
    by_line: dict[int, set[str]] = {}
    file_level: set[str] = set()
    for line, comment in _iter_comments(source):
        match = _DIRECTIVE.search(comment)
        if match is None:
            continue
        rules = {token.strip() for token in match.group("rules").split(",")}
        if match.group("kind") == "disable-file":
            file_level.update(rules)
        else:
            by_line.setdefault(line, set()).update(rules)
    return SuppressionIndex(
        by_line={line: frozenset(rules) for line, rules in by_line.items()},
        file_level=frozenset(file_level),
    )
