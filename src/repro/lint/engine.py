"""The lint engine: file discovery, rule execution, suppression.

Usage::

    from repro.lint import lint_paths

    report = lint_paths(["src"])
    print(report.render_text())
    raise SystemExit(report.exit_code)

The engine is purely static — it parses files with :mod:`ast` and never
imports or executes the code under analysis — so it is safe to run on
broken or hostile trees and its output depends only on file contents.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union, cast

from repro.lint.context import FileContext, ProjectContext, module_name_for_path
from repro.lint.diagnostics import Diagnostic, LintReport
from repro.lint.graph import ProjectGraph, build_project_graph
from repro.lint.registry import (
    PROJECT_SCOPE,
    REGISTRY,
    ProjectRuleCheck,
    RuleCheck,
    RuleRegistry,
    RuleSpec,
)
from repro.lint.suppressions import SuppressionIndex, scan_suppressions

#: Rule id attached to files that do not parse.
PARSE_RULE_ID = "PARSE"

#: Rule id attached when a rule itself crashes on a file (a linter bug
#: must surface as a diagnostic, not take down the CI job silently).
INTERNAL_RULE_ID = "INTERNAL"

_SKIP_DIRECTORIES = frozenset({"__pycache__", ".git", ".hg", ".venv", "venv"})


def iter_python_files(paths: Sequence[Union[str, Path]]) -> list[Path]:
    """Every ``.py`` file under ``paths``, deduplicated and sorted.

    Deduplication is by **resolved** path: overlapping inputs
    (``src src/repro``) and symlinked aliases of the same file count
    once, under the first spelling encountered, so no file is parsed —
    or reported — twice.
    """
    found: dict[Path, Path] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRECTORIES for part in candidate.parts):
                    found.setdefault(candidate.resolve(), candidate)
        elif path.suffix == ".py":
            found.setdefault(path.resolve(), path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return sorted(found.values())


def _ensure_rules_registered() -> None:
    # Importing the rules package executes every @rule decorator.
    from repro.lint import rules  # noqa: F401  (import-for-side-effect)


def lint_source(
    source: str,
    *,
    path: Union[str, Path] = "<string>",
    module: Optional[str] = None,
    project: Optional[ProjectContext] = None,
    rules: Optional[Sequence[RuleSpec]] = None,
    registry: Optional[RuleRegistry] = None,
) -> tuple[list[Diagnostic], int]:
    """Lint one source text; returns (diagnostics, suppressed-count).

    ``module`` defaults to the package-aware inference from ``path``;
    tests pass it directly to place snippets in arbitrary packages.
    """
    _ensure_rules_registered()
    display = str(path)
    concrete = Path(path)
    if module is None:
        module = module_name_for_path(concrete) if concrete.exists() else concrete.stem
    if project is None:
        project = ProjectContext(root=None)
    if rules is None:
        rules = list(registry if registry is not None else REGISTRY)

    diagnostics, suppressed, _context, _suppressions = _lint_file(
        source, display=display, concrete=concrete, module=module,
        project=project, rules=rules,
    )
    return diagnostics, suppressed


def _lint_file(
    source: str,
    *,
    display: str,
    concrete: Path,
    module: str,
    project: ProjectContext,
    rules: Sequence[RuleSpec],
) -> tuple[list[Diagnostic], int, Optional[FileContext], SuppressionIndex]:
    """Parse and file-lint one source text.

    Returns (diagnostics, suppressed-count, context, suppressions); the
    context is None when the file does not parse.  The context and the
    suppression index are what the deep pass reuses, so a file is never
    parsed or comment-scanned twice.
    """
    suppressions = scan_suppressions(source)
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as error:
        return (
            [
                Diagnostic(
                    path=display,
                    line=error.lineno or 1,
                    column=(error.offset or 1) - 1,
                    rule=PARSE_RULE_ID,
                    message=f"syntax error: {error.msg}",
                )
            ],
            0,
            None,
            suppressions,
        )

    context = FileContext(
        path=concrete,
        display_path=display,
        module=module,
        source=source,
        tree=tree,
        project=project,
    )
    kept: list[Diagnostic] = []
    suppressed = 0
    for spec in rules:
        if spec.scope == PROJECT_SCOPE:
            continue  # project rules need the whole tree; see lint_paths
        try:
            violations = list(cast(RuleCheck, spec.check)(context))
        except Exception as error:  # noqa: BLE001 - must become a diagnostic
            kept.append(
                Diagnostic(
                    path=display,
                    line=1,
                    column=0,
                    rule=INTERNAL_RULE_ID,
                    message=f"rule {spec.id} crashed: {type(error).__name__}: {error}",
                )
            )
            continue
        for violation in violations:
            if suppressions.covers(violation.line, spec.id):
                suppressed += 1
                continue
            kept.append(
                Diagnostic(
                    path=display,
                    line=violation.line,
                    column=violation.column,
                    rule=spec.id,
                    message=violation.message,
                )
            )
    return kept, suppressed, context, suppressions


def lint_paths(
    paths: Sequence[Union[str, Path]],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    project_root: Optional[Union[str, Path]] = None,
    registry: Optional[RuleRegistry] = None,
    deep: bool = False,
    graph_sink: Optional[list["ProjectGraph"]] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` and return the report.

    Args:
        paths: files and/or directories to scan.
        select: run only these rule ids (default: all registered).
        ignore: drop these rule ids from the selection.
        project_root: where project-level inputs (the metric catalogue)
            live; auto-discovered from the first path when omitted.
        registry: alternate rule registry (tests); default the global one.
        deep: also build the project graphs and run project-scoped rules.
        graph_sink: when deep, the built :class:`ProjectGraph` is appended
            here (the CLI's ``--graph-out`` uses it without a second build).
    """
    _ensure_rules_registered()
    files = iter_python_files(paths)
    active_registry = registry if registry is not None else REGISTRY
    specs = active_registry.select(select=select, ignore=ignore)
    if project_root is not None:
        project = ProjectContext(root=Path(project_root))
    elif files:
        project = ProjectContext.discover(files[0])
    else:
        project = ProjectContext(root=None)

    report = LintReport(files_checked=len(files))
    contexts: list[FileContext] = []
    suppressions_by_path: dict[str, SuppressionIndex] = {}
    for file_path in files:
        source = file_path.read_text(encoding="utf-8")
        module = module_name_for_path(file_path)
        diagnostics, suppressed, context, suppressions = _lint_file(
            source,
            display=str(file_path),
            concrete=file_path,
            module=module,
            project=project,
            rules=specs,
        )
        report.extend(diagnostics)
        report.suppressed += suppressed
        if context is not None:
            contexts.append(context)
            suppressions_by_path[context.display_path] = suppressions

    if deep:
        graph = build_project_graph(contexts, root=project.root)
        if graph_sink is not None:
            graph_sink.append(graph)
        project_specs = [spec for spec in specs if spec.scope == PROJECT_SCOPE]
        for spec in project_specs:
            try:
                violations = list(cast(ProjectRuleCheck, spec.check)(graph))
            except Exception as error:  # noqa: BLE001 - must become a diagnostic
                report.extend(
                    [
                        Diagnostic(
                            path="<project>",
                            line=1,
                            column=0,
                            rule=INTERNAL_RULE_ID,
                            message=(
                                f"rule {spec.id} crashed: "
                                f"{type(error).__name__}: {error}"
                            ),
                        )
                    ]
                )
                continue
            for violation in violations:
                index = suppressions_by_path.get(violation.path)
                if index is not None and index.covers(violation.line, spec.id):
                    report.suppressed += 1
                    continue
                report.extend(
                    [
                        Diagnostic(
                            path=violation.path,
                            line=violation.line,
                            column=violation.column,
                            rule=spec.id,
                            message=violation.message,
                        )
                    ]
                )
    report.finalize()
    return report
