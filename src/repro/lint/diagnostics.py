"""Diagnostics and reports produced by the lint engine.

A :class:`Diagnostic` is one finding at one source location; a
:class:`LintReport` is everything one engine run produced, renderable
as human-readable text (``path:line:col: RULE message``) or as a
versioned JSON document for CI and tooling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable

#: Schema version of the JSON report; bump on breaking changes.
JSON_VERSION = 1


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One lint finding, anchored to a file and line.

    Ordering is (path, line, column, rule) so reports are stable
    regardless of rule execution order.
    """

    path: str
    line: int
    column: int
    rule: str
    message: str

    def render(self) -> str:
        """The classic compiler-style one-liner."""
        return f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }


@dataclass
class LintReport:
    """The aggregate outcome of linting a set of files."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any diagnostic survived suppression."""
        return 1 if self.diagnostics else 0

    def by_rule(self) -> dict[str, int]:
        """Diagnostic counts per rule id, sorted by rule id."""
        counts: dict[str, int] = {}
        for diagnostic in self.diagnostics:
            counts[diagnostic.rule] = counts.get(diagnostic.rule, 0) + 1
        return dict(sorted(counts.items()))

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def finalize(self) -> None:
        """Sort diagnostics into their stable report order."""
        self.diagnostics.sort()

    def render_text(self) -> str:
        """Human-readable report: one line per finding plus a summary."""
        lines = [diagnostic.render() for diagnostic in self.diagnostics]
        if self.diagnostics:
            per_rule = ", ".join(
                f"{rule}: {count}" for rule, count in self.by_rule().items()
            )
            lines.append(
                f"{len(self.diagnostics)} problem(s) in {self.files_checked} "
                f"file(s) ({per_rule}); {self.suppressed} suppressed"
            )
        else:
            lines.append(
                f"{self.files_checked} file(s) clean; {self.suppressed} suppressed"
            )
        return "\n".join(lines)

    def to_json(self) -> str:
        """Versioned, deterministic JSON document."""
        payload = {
            "version": JSON_VERSION,
            "files_checked": self.files_checked,
            "summary": {
                "total": len(self.diagnostics),
                "suppressed": self.suppressed,
                "by_rule": self.by_rule(),
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"
