"""The ratcheting lint baseline (``lint-baseline.json``).

A baseline lets ``--deep`` land on a tree with known findings without
turning the gate off: findings recorded in the baseline are
**grandfathered** (reported but non-fatal), anything new fails, and a
baseline entry no longer matched by a real finding is **stale** and
also fails — so the file can only ever shrink.  Fixing a grandfathered
finding therefore *requires* deleting its entry, and nobody can smuggle
a new finding in by adding one.

Findings are matched by ``(path, rule, message)``, deliberately not by
line: unrelated edits move lines constantly, and a baseline that churns
on every commit trains people to regenerate it blindly — which is how
ratchets die.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

from repro.lint.diagnostics import Diagnostic, LintReport

#: Schema version of the baseline file; bump on breaking changes.
BASELINE_VERSION = 1

#: The match key: stable across line-number drift.
Fingerprint = tuple[str, str, str]


def fingerprint(diagnostic: Diagnostic) -> Fingerprint:
    return (diagnostic.path, diagnostic.rule, diagnostic.message)


@dataclass
class Baseline:
    """The grandfathered finding set, as read from disk."""

    entries: list[Fingerprint] = field(default_factory=list)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"baseline {path}: unsupported version {version!r} "
                f"(expected {BASELINE_VERSION})"
            )
        entries = [
            (str(entry["path"]), str(entry["rule"]), str(entry["message"]))
            for entry in payload.get("findings", [])
        ]
        return cls(entries=entries)

    @classmethod
    def from_report(cls, report: LintReport) -> "Baseline":
        seen: set[Fingerprint] = set()
        entries: list[Fingerprint] = []
        for diagnostic in report.diagnostics:
            key = fingerprint(diagnostic)
            if key not in seen:
                seen.add(key)
                entries.append(key)
        return cls(entries=sorted(entries))

    def to_json(self) -> str:
        payload = {
            "version": BASELINE_VERSION,
            "findings": [
                {"path": path, "rule": rule, "message": message}
                for path, rule, message in sorted(self.entries)
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json(), encoding="utf-8")


@dataclass
class BaselineResult:
    """Outcome of checking a report against a baseline."""

    new: list[Diagnostic] = field(default_factory=list)
    grandfathered: list[Diagnostic] = field(default_factory=list)
    stale: list[Fingerprint] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """0 only when nothing is new *and* nothing is stale."""
        return 1 if self.new or self.stale else 0

    def render_text(self) -> str:
        lines: list[str] = []
        for diagnostic in self.new:
            lines.append(diagnostic.render())
        for diagnostic in self.grandfathered:
            lines.append(f"{diagnostic.render()} [baseline]")
        for path, rule, message in self.stale:
            lines.append(
                f"stale baseline entry (no longer found, remove it): "
                f"{path}: {rule} {message}"
            )
        lines.append(
            f"{len(self.new)} new, {len(self.grandfathered)} grandfathered, "
            f"{len(self.stale)} stale baseline entr(ies)"
        )
        return "\n".join(lines)


def apply_baseline(report: LintReport, baseline: Baseline) -> BaselineResult:
    """Split a report's findings into new vs grandfathered, and find
    baseline entries the tree no longer produces (stale).

    Duplicate findings with the same fingerprint (one message at several
    lines) are all covered by a single baseline entry.
    """
    known = set(baseline.entries)
    matched: set[Fingerprint] = set()
    result = BaselineResult()
    for diagnostic in report.diagnostics:
        key = fingerprint(diagnostic)
        if key in known:
            matched.add(key)
            result.grandfathered.append(diagnostic)
        else:
            result.new.append(diagnostic)
    result.stale = sorted(set(baseline.entries) - matched)
    return result
