"""Rule FLT001: recovery paths must not bypass the retry wrapper.

Recovery code exists because fire-and-forget messaging loses exactly
the messages that matter most — the ones sent while the system is
healing (a restarted workstation's hello, the re-reported presences
after a crash).  Those paths must go through the reliable-delivery
chokepoint (``Workstation._push`` / ``LANTransport.send_reliable``); a
direct ``lan.send(...)`` inside a recovery function silently regresses
the restart protocol to best-effort and no test will notice until a
chaos run flakes.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.registry import Violation, at_node, rule

#: Packages that contain recovery-path code.
_SCOPE = ("repro.core", "repro.faults")

#: A function is a recovery path when its name says so.
_RECOVERY_NAME = re.compile(r"recover|restart|reregister|re_register", re.IGNORECASE)

#: Receiver names that look like the LAN transport.
_TRANSPORT_NAMES = frozenset({"lan", "transport", "_lan", "_transport"})


def _is_transport_send(call: ast.Call) -> bool:
    """Whether ``call`` is ``<transport>.send(...)`` (not send_reliable)."""
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "send"):
        return False
    receiver = func.value
    if isinstance(receiver, ast.Attribute):  # self.lan.send(...)
        return receiver.attr in _TRANSPORT_NAMES
    if isinstance(receiver, ast.Name):  # lan.send(...)
        return receiver.id in _TRANSPORT_NAMES
    return False


@rule(
    "FLT001",
    name="recovery-bypasses-retry",
    summary="recovery path calls transport.send directly",
    rationale=(
        "Messages sent while recovering from a fault (restart hellos, "
        "re-reported presences) are the ones a still-degraded network is "
        "most likely to lose. Recovery functions must route through the "
        "retry-wrapped chokepoint (Workstation._push or "
        "LANTransport.send_reliable) so the restart protocol keeps its "
        "bounded-retransmission guarantee; a bare transport.send there "
        "silently downgrades recovery to fire-and-forget."
    ),
)
def check_flt001(ctx: FileContext) -> Iterator[Violation]:
    if not ctx.in_packages(*_SCOPE):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _RECOVERY_NAME.search(node.name):
            continue
        for inner in ast.walk(node):
            if isinstance(inner, ast.Call) and _is_transport_send(inner):
                yield at_node(
                    inner,
                    f"recovery path {node.name}() calls transport.send "
                    "directly; route through the retry wrapper "
                    "(Workstation._push / send_reliable) so recovery "
                    "traffic keeps bounded retransmission",
                )
