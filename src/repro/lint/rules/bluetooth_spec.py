"""Rule BT001: Bluetooth constant drift against the paper/spec table.

The rule statically evaluates every module-level assignment in
``repro.bluetooth.constants`` with a tiny constant-expression
interpreter (literals, arithmetic, and the repro.sim.clock conversion
helpers) and compares the results against :data:`repro.lint.spec.PAPER_SPEC`.
Nothing from the linted file is imported or executed.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator, Optional, Union

from repro.lint.context import FileContext
from repro.lint.registry import Violation, at_node, rule
from repro.lint.spec import PAPER_SPEC
from repro.sim.clock import (
    ticks_from_milliseconds,
    ticks_from_seconds,
    ticks_from_slots,
)

#: The module this rule pins down.
CONSTANTS_MODULE = "repro.bluetooth.constants"

Numeric = Union[int, float]

#: Conversion helpers the constants module may call; evaluated with the
#: real repro.sim.clock implementations so the tick authority stays
#: single-sourced.
_KNOWN_FUNCTIONS: dict[str, Callable[..., Numeric]] = {
    "ticks_from_seconds": ticks_from_seconds,
    "ticks_from_milliseconds": ticks_from_milliseconds,
    "ticks_from_slots": ticks_from_slots,
    "round": round,
    "int": int,
}

_BINARY_OPS: dict[type, Callable[[Numeric, Numeric], Numeric]] = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.Pow: lambda a, b: a**b,
}


class _Unevaluable(Exception):
    """The expression is not a static constant we know how to fold."""


def _evaluate(node: ast.expr, env: dict[str, Numeric]) -> Numeric:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            raise _Unevaluable()
        return node.value
    if isinstance(node, ast.Name):
        if node.id in env:
            return env[node.id]
        raise _Unevaluable()
    if isinstance(node, ast.BinOp):
        operator = _BINARY_OPS.get(type(node.op))
        if operator is None:
            raise _Unevaluable()
        return operator(_evaluate(node.left, env), _evaluate(node.right, env))
    if isinstance(node, ast.UnaryOp):
        operand = _evaluate(node.operand, env)
        if isinstance(node.op, ast.USub):
            return -operand
        if isinstance(node.op, ast.UAdd):
            return +operand
        raise _Unevaluable()
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        function = _KNOWN_FUNCTIONS.get(node.func.id)
        if function is None or node.keywords:
            raise _Unevaluable()
        return function(*[_evaluate(argument, env) for argument in node.args])
    raise _Unevaluable()


def evaluate_constants(
    tree: ast.Module,
) -> tuple[dict[str, Numeric], dict[str, ast.stmt], set[str]]:
    """Fold every module-level constant assignment.

    Returns (values, assignment-node per name, unevaluable names).
    """
    values: dict[str, Numeric] = {}
    nodes: dict[str, ast.stmt] = {}
    unevaluable: set[str] = set()
    for statement in tree.body:
        target: Optional[ast.expr]
        value: Optional[ast.expr]
        if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
            target, value = statement.targets[0], statement.value
        elif isinstance(statement, ast.AnnAssign):
            target, value = statement.target, statement.value
        else:
            continue
        if not isinstance(target, ast.Name) or value is None:
            continue
        nodes[target.id] = statement
        try:
            values[target.id] = _evaluate(value, values)
        except _Unevaluable:
            unevaluable.add(target.id)
    return values, nodes, unevaluable


@rule(
    "BT001",
    name="bluetooth-constant-drift",
    summary="repro.bluetooth.constants diverges from the paper/spec table",
    rationale=(
        "The paper's Table 1 discovery times and the §5 schedule follow "
        "arithmetically from a handful of protocol constants (625 µs slots, "
        "10 ms train passes, 2.56 s dwells, the 3.84 s window, the 15.4 s "
        "cycle). An edit that drifts from those values still simulates "
        "*something*, just not Bluetooth 1.1 as the paper measured it — so "
        "drift must fail loudly with a citation, not surface as a subtly "
        "wrong reproduction."
    ),
)
def check_bt001(ctx: FileContext) -> Iterator[Violation]:
    if ctx.module != CONSTANTS_MODULE:
        return
    values, nodes, unevaluable = evaluate_constants(ctx.tree)
    for entry in PAPER_SPEC:
        node = nodes.get(entry.name)
        if node is None:
            yield Violation(
                1,
                0,
                f"paper constant {entry.name} is missing (expected "
                f"{entry.expected!r}: {entry.citation})",
            )
        elif entry.name in unevaluable:
            yield at_node(
                node,
                f"paper constant {entry.name} could not be statically "
                f"evaluated against its pinned value ({entry.citation})",
            )
        elif values[entry.name] != entry.expected:
            yield at_node(
                node,
                f"paper constant {entry.name} = {values[entry.name]!r} "
                f"diverges from the pinned {entry.expected!r} "
                f"({entry.citation})",
            )
