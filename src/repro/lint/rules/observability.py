"""Rule OBS001: metric names must come from the catalogued namespace.

docs/observability.md is the operator-facing contract for every metric
the pipeline emits; dashboards, the CI warm-cache assertion, and the
scoreboard all key on those names.  A registration outside the
catalogue is either a typo (it silently creates a parallel series) or
an undocumented metric nobody will find — both are lint failures.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import METRIC_CATALOGUE_PATH, FileContext
from repro.lint.registry import Violation, at_node, rule

#: Method names on a MetricsRegistry that register a series.
_REGISTRATION_METHODS = frozenset({"counter", "gauge", "histogram"})

#: The linter itself registers nothing; keep it out of scope so fixture
#: snippets in its tests do not need a catalogue.
_EXCLUDED_PACKAGES = ("repro.lint",)


@rule(
    "OBS001",
    name="uncatalogued-metric",
    summary="metric registered outside the docs/observability.md catalogue",
    rationale=(
        "Every emitted series must appear in the docs/observability.md "
        "tables: the catalogue is what operators grep, what dashboards "
        "bind to, and what the CI warm-cache check reads. An uncatalogued "
        "name is invisible telemetry; a mistyped name splits one series "
        "into two. Add the metric to the catalogue table (with its kind "
        "and meaning) in the same change that registers it."
    ),
)
def check_obs001(ctx: FileContext) -> Iterator[Violation]:
    if ctx.in_packages(*_EXCLUDED_PACKAGES):
        return
    catalogue = ctx.project.metric_catalogue()
    if catalogue is None:
        return  # no catalogue to check against (e.g. detached snippet)
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _REGISTRATION_METHODS
            and node.args
        ):
            continue
        first = node.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            continue
        name = first.value
        if "." not in name:
            continue  # not a namespaced metric name (e.g. collections use)
        if name not in catalogue:
            yield at_node(
                node,
                f"metric {name!r} is not catalogued in "
                f"{METRIC_CATALOGUE_PATH.as_posix()}; add it to the metric "
                "tables or fix the name",
            )
