"""Rule OBS001: metric and span names must come from the catalogued namespace.

docs/observability.md is the operator-facing contract for every metric
series and every span name the pipeline emits; dashboards, the CI
warm-cache assertion, trace tooling, and the scoreboard all key on
those names.  A registration outside the catalogue is either a typo
(it silently creates a parallel series or splits a causal lane) or an
undocumented name nobody will find — both are lint failures.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import METRIC_CATALOGUE_PATH, FileContext
from repro.lint.registry import Violation, at_node, rule

#: Method names on a MetricsRegistry that register a series.
_REGISTRATION_METHODS = frozenset({"counter", "gauge", "histogram"})

#: Method names on a SpanTracer that open a named span. Kernel-layer
#: spans use dynamic event labels (a variable first argument), which
#: this rule deliberately leaves out of scope.
_SPAN_METHODS = frozenset({"begin", "instant"})

#: The linter itself registers nothing; keep it out of scope so fixture
#: snippets in its tests do not need a catalogue.
_EXCLUDED_PACKAGES = ("repro.lint",)


@rule(
    "OBS001",
    name="uncatalogued-metric",
    summary="metric or span registered outside the docs/observability.md catalogue",
    rationale=(
        "Every emitted series and span must appear in the "
        "docs/observability.md tables: the catalogue is what operators "
        "grep, what dashboards and trace viewers bind to, and what the "
        "CI warm-cache check reads. An uncatalogued name is invisible "
        "telemetry; a mistyped name splits one series (or causal lane) "
        "into two. Add the name to the catalogue table (with its kind "
        "and meaning) in the same change that registers it."
    ),
)
def check_obs001(ctx: FileContext) -> Iterator[Violation]:
    if ctx.in_packages(*_EXCLUDED_PACKAGES):
        return
    catalogue = ctx.project.metric_catalogue()
    if catalogue is None:
        return  # no catalogue to check against (e.g. detached snippet)
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.args
        ):
            continue
        attr = node.func.attr
        if attr in _REGISTRATION_METHODS:
            kind = "metric"
        elif attr in _SPAN_METHODS:
            kind = "span"
        else:
            continue
        first = node.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            continue
        name = first.value
        if "." not in name:
            continue  # not a namespaced name (e.g. collections use)
        if name not in catalogue:
            yield at_node(
                node,
                f"{kind} {name!r} is not catalogued in "
                f"{METRIC_CATALOGUE_PATH.as_posix()}; add it to the "
                f"{kind} tables or fix the name",
            )
