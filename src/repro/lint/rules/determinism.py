"""Determinism rules DET001-DET004.

These guard the property PR 2 turned into a contract: a run is a pure
function of its config digest and seed, so ``--jobs N`` equals serial
byte for byte and the cache can serve any trial.  Each rule targets one
way that contract has historically been broken in simulators.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.context import FileContext, expression_key
from repro.lint.registry import Violation, at_node, rule

#: Packages whose code runs inside the simulation; all randomness there
#: must flow through repro.sim.rng and all time through repro.sim.clock.
#: (repro.runner is deliberately absent: host-side wall timing of worker
#: batches is legitimate and never feeds simulation results.)
SIM_PACKAGES = (
    "repro.sim",
    "repro.bluetooth",
    "repro.core",
    "repro.mobility",
    "repro.radio",
    "repro.lan",
)

#: Modules exempt from DET001 because they *implement* the sanctioned
#: RNG wrapper.
RNG_WRAPPER_MODULES = frozenset({"repro.sim.rng"})

#: Event-dispatch / per-event hot paths where DET003 demands an explicit
#: ordering for every set/dict iteration.
HOT_PATH_MODULES = frozenset(
    {
        "repro.sim.kernel",
        "repro.sim.process",
        "repro.radio.channel",
        "repro.radio.medium",
        "repro.lan.transport",
        "repro.bluetooth.inquiry",
        "repro.bluetooth.scan",
        "repro.bluetooth.link",
        "repro.bluetooth.piconet",
        "repro.core.tracker",
    }
)

_WALL_CLOCK_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "localtime",
        "gmtime",
        "sleep",
    }
)

_WALL_CLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})


def _dotted(node: ast.expr) -> str:
    """Best-effort dotted-name rendering of an attribute chain."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return ""


@rule(
    "DET001",
    name="unseeded-rng",
    summary="global/unseeded RNG use in simulation code",
    rationale=(
        "All randomness must flow through repro.sim.rng.RandomStream, which "
        "derives named child streams from the experiment seed. A single "
        "random.random() or numpy.random call draws from process-global "
        "state, so results depend on import order and worker identity and "
        "the serial == --jobs N guarantee silently breaks."
    ),
)
def check_det001(ctx: FileContext) -> Iterator[Violation]:
    if not ctx.in_packages(*SIM_PACKAGES) or ctx.module in RNG_WRAPPER_MODULES:
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".", 1)[0]
                if root == "random" or alias.name.startswith("numpy.random"):
                    yield at_node(
                        node,
                        f"import of {alias.name!r} in simulation code; use a "
                        "seeded repro.sim.rng.RandomStream instead",
                    )
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "random" or module.startswith("numpy.random") or (
                module == "numpy"
                and any(alias.name == "random" for alias in node.names)
            ):
                yield at_node(
                    node,
                    f"import from {module!r} in simulation code; use a seeded "
                    "repro.sim.rng.RandomStream instead",
                )
        elif isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted.startswith("random.") and dotted.count(".") == 1:
                yield at_node(
                    node,
                    f"{dotted!r} touches the process-global RNG; draw from a "
                    "seeded repro.sim.rng.RandomStream",
                )
            elif dotted.startswith(("numpy.random.", "np.random.")):
                yield at_node(
                    node,
                    f"{dotted!r} uses numpy's global RNG; draw from a seeded "
                    "repro.sim.rng.RandomStream",
                )


@rule(
    "DET002",
    name="wall-clock",
    summary="wall-clock access in simulation code",
    rationale=(
        "Simulated time is integer ticks owned by repro.sim.clock.SimClock; "
        "time.time()/monotonic()/datetime.now() read the host clock, which "
        "differs per run and per worker, so any value derived from it "
        "breaks byte-identical replay and poisons the result cache."
    ),
)
def check_det002(ctx: FileContext) -> Iterator[Violation]:
    if not ctx.in_packages(*SIM_PACKAGES):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    yield at_node(
                        node,
                        "import of 'time' in simulation code; simulated time "
                        "comes from repro.sim.clock",
                    )
        elif isinstance(node, ast.ImportFrom):
            if (node.module or "") == "time":
                names = ", ".join(alias.name for alias in node.names)
                yield at_node(
                    node,
                    f"import of {names} from 'time' in simulation code; "
                    "simulated time comes from repro.sim.clock",
                )
        elif isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted.startswith("time.") and node.attr in _WALL_CLOCK_TIME_ATTRS:
                yield at_node(
                    node,
                    f"{dotted!r} reads the host clock; simulated time comes "
                    "from repro.sim.clock",
                )
            elif (
                node.attr in _WALL_CLOCK_DATETIME_ATTRS
                and _dotted(node.value).split(".")[-1] in ("datetime", "date")
            ):
                yield at_node(
                    node,
                    f"{dotted!r} reads the host calendar; simulated time "
                    "comes from repro.sim.clock",
                )


def _iteration_targets(node: ast.AST) -> Iterator[ast.expr]:
    """The iterables of a for-statement or any comprehension clause."""
    if isinstance(node, (ast.For, ast.AsyncFor)):
        yield node.iter
    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        for generator in node.generators:
            yield generator.iter


def _unordered_kind(iterable: ast.expr, kinds: dict[str, str]) -> tuple[str, str]:
    """(kind, description) when ``iterable`` is an unordered container.

    Returns ("", "") for anything already ordered or unknown.  A
    ``sorted(...)`` wrapper is the sanctioned explicit ordering, and any
    other call/expression we cannot classify is given the benefit of the
    doubt (the rule aims for zero false negatives on *evident* set/dict
    iteration, not whole-program type inference).
    """
    if isinstance(iterable, (ast.Set, ast.SetComp)):
        return "set", "a set expression"
    if isinstance(iterable, ast.DictComp):
        return "dict", "a dict comprehension"
    if isinstance(iterable, ast.Call):
        func = iterable.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return "set", f"a {func.id}() value"
        if (
            isinstance(func, ast.Name)
            and func.id in ("list", "tuple", "iter", "reversed")
            and len(iterable.args) == 1
        ):
            # Order-preserving wrappers are transparent: list(d.items())
            # iterates exactly as d.items() does.
            return _unordered_kind(iterable.args[0], kinds)
        if isinstance(func, ast.Attribute) and func.attr in (
            "keys",
            "values",
            "items",
        ):
            key = expression_key(func.value)
            if key is not None and kinds.get(key) == "dict":
                return "dict", f"{key}.{func.attr}()"
        return "", ""
    key = expression_key(iterable)
    if key is not None and kinds.get(key) in ("set", "dict"):
        return kinds[key], key
    return "", ""


@rule(
    "DET003",
    name="unordered-iteration",
    summary="set/dict iteration without explicit ordering in a hot path",
    rationale=(
        "Event-dispatch hot paths feed the kernel's (time, seq) event order, "
        "so the visit order of a container becomes part of the result. Set "
        "iteration follows hash order (randomised per process for strings); "
        "dict order is insertion order, which silently changes when call "
        "paths are reordered. Iterate sorted(...) or an explicitly ordered "
        "container, or suppress with a justification that order cannot "
        "reach the results."
    ),
)
def check_det003(ctx: FileContext) -> Iterator[Violation]:
    if ctx.module not in HOT_PATH_MODULES:
        return
    kinds = ctx.container_kinds()
    for node in ast.walk(ctx.tree):
        for iterable in _iteration_targets(node):
            kind, description = _unordered_kind(iterable, kinds)
            if kind:
                yield at_node(
                    iterable,
                    f"iteration over {description} ({kind}) in a hot path "
                    "without an explicit ordering; wrap in sorted(...) or "
                    "justify with a suppression",
                )


_TIME_NAME = re.compile(
    r"(?:^|_)(tick|ticks|now|time|deadline|timestamp|seconds|secs)(?:$|_)"
)

_FLOAT_TIME_CALLS = frozenset({"seconds_from_ticks", "milliseconds_from_ticks"})


def _terminal_name(node: ast.expr) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _is_time_valued(node: ast.expr) -> bool:
    name = _terminal_name(node)
    if name and _TIME_NAME.search(name.lower()):
        return True
    if isinstance(node, ast.Call):
        func = _terminal_name(node.func)
        return func in _FLOAT_TIME_CALLS or bool(
            func and _TIME_NAME.search(func.lower())
        )
    return False


def _is_float_valued(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    name = _terminal_name(node)
    if name.endswith(("_seconds", "_ms")) or name == "now_seconds":
        return True
    if isinstance(node, ast.Call):
        return _terminal_name(node.func) in _FLOAT_TIME_CALLS
    return False


@rule(
    "DET004",
    name="float-time-equality",
    summary="float ==/!= comparison on tick/clock-typed values",
    rationale=(
        "Simulated time is exact integer ticks precisely so events compare "
        "equal reliably; converting to float seconds and comparing with == "
        "reintroduces representation error (1.28 s is exact, 15.4 s is "
        "not), so the branch taken can differ between platforms and "
        "optimisation levels. Compare in ticks, or use an explicit "
        "tolerance."
    ),
)
def check_det004(ctx: FileContext) -> Iterator[Violation]:
    if not ctx.in_packages(*SIM_PACKAGES):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if (_is_float_valued(left) and _is_time_valued(right)) or (
                _is_float_valued(right) and _is_time_valued(left)
            ):
                yield at_node(
                    node,
                    "float equality on a time-valued expression; compare "
                    "integer ticks or use an explicit tolerance",
                )
