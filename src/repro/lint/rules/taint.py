"""DET010: interprocedural determinism taint over the call graph.

The file-local determinism rules (DET001/DET002) catch a wall-clock or
unseeded-RNG call *in the file that makes it*.  What they cannot see is
simulation code calling an innocent-looking helper that — two hops away,
possibly outside the sim packages — bottoms out in ``time.time()`` or
the process-global ``random`` state.  DET010 closes that hole: it marks
every function whose body contains a non-deterministic **sink**,
propagates reachability backwards over the project call graph, and
reports each simulation-package *entry point* of a tainted chain with
the full chain cited.

Only chains of length >= 2 are reported here: a direct sink in sim code
is DET001/DET002 territory and would otherwise be double-reported.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.lint.graph.calls import EXTERNAL
from repro.lint.registry import ProjectViolation, project_rule
from repro.lint.rules.determinism import (
    RNG_WRAPPER_MODULES,
    SIM_PACKAGES,
    _WALL_CLOCK_DATETIME_ATTRS,
    _WALL_CLOCK_TIME_ATTRS,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.graph.project import ProjectGraph

#: ``random`` module attributes that are *not* sinks: constructing a
#: ``random.Random(seed)`` is the sanctioned seeded path (the unseeded
#: no-arg form is DET002's argument-level check), and ``SystemRandom``
#: never appears outside DET001-banned contexts anyway.
_RANDOM_NON_SINKS = frozenset({"Random", "SystemRandom"})


def _is_sink(callee: str) -> bool:
    """Whether an EXTERNAL callee dotted name is a non-determinism sink."""
    parts = callee.split(".")
    if parts[0] == "time" and len(parts) == 2:
        return parts[1] in _WALL_CLOCK_TIME_ATTRS
    if parts[0] == "datetime":
        return parts[-1] in _WALL_CLOCK_DATETIME_ATTRS
    if callee == "os.urandom":
        return True
    if parts[0] == "random" and len(parts) >= 2:
        return parts[1] not in _RANDOM_NON_SINKS
    if callee.startswith("numpy.random."):
        return True
    return False


def _in_packages(module: str, packages: tuple[str, ...]) -> bool:
    return any(
        module == package or module.startswith(package + ".")
        for package in packages
    )


@project_rule(
    "DET010",
    name="interprocedural-determinism-taint",
    summary="simulation code reaches a wall-clock/unseeded-RNG sink via calls",
    rationale=(
        "DET001/DET002 only see the file containing the sink. A sim-package "
        "function calling a helper that transitively reaches time.time() or "
        "the global random state breaks the serial == --jobs N contract just "
        "as surely, from a file that lints clean. DET010 propagates sink "
        "reachability up the whole-program call graph and reports the sim "
        "entry point of each tainted chain, chain cited, so the fix site "
        "(reroute through repro.sim.clock / repro.sim.rng) is explicit."
    ),
)
def check_det010(graph: "ProjectGraph") -> Iterator[ProjectViolation]:
    calls = graph.calls
    # Pass 1: functions whose own body calls a sink.  The sanctioned
    # wrapper module is exempt — it exists to contain those calls.
    sink_of: dict[str, str] = {}
    for site in calls.sites:
        if site.kind != EXTERNAL or not _is_sink(site.callee):
            continue
        caller = calls.nodes.get(site.caller)
        if caller is None or caller.module in RNG_WRAPPER_MODULES:
            continue
        sink_of.setdefault(site.caller, site.callee)

    # Pass 2: reverse reachability — every function with a call chain
    # ending in a directly-sinking function.
    chains = calls.chains_to(sink_of)

    for name in sorted(chains):
        chain = chains[name]
        if len(chain) < 2:  # the direct sink itself: DET001/DET002's job
            continue
        node = calls.nodes.get(name)
        if node is None or not _in_packages(node.module, SIM_PACKAGES):
            continue
        if node.module in RNG_WRAPPER_MODULES:
            continue
        # Report only chain *entry points*: tainted sim functions that
        # no other tainted sim function calls (interior links would
        # re-report the same chain once per hop).
        has_tainted_sim_caller = False
        for site in calls.callers_of(name):
            caller = calls.nodes.get(site.caller)
            if (
                site.caller in chains
                and caller is not None
                and _in_packages(caller.module, SIM_PACKAGES)
            ):
                has_tainted_sim_caller = True
                break
        if has_tainted_sim_caller:
            continue
        sink = sink_of[chain[-1]]
        cited = " -> ".join(chain + (f"{sink}()",))
        yield ProjectViolation(
            path=node.path,
            line=node.line,
            column=0,
            message=(
                f"{name} reaches non-deterministic sink {sink}() through "
                f"{cited}; route time through repro.sim.clock and "
                "randomness through repro.sim.rng"
            ),
        )
