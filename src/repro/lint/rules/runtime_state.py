"""Rule RUN001: mutable defaults and module-level mutable state.

The parallel runner executes trial payloads in worker processes that
import the library fresh; any module-level mutable container (or a
mutable default argument, which is one shared object per function) is
state that can silently diverge between the serial and ``--jobs N``
paths, or accumulate across trials within one worker.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.context import FileContext
from repro.lint.registry import Violation, at_node, rule

#: Packages importable from repro.runner worker processes.  repro.lint
#: and the CLI never run inside a worker, so they are out of scope.
WORKER_PACKAGES = (
    "repro.sim",
    "repro.bluetooth",
    "repro.core",
    "repro.mobility",
    "repro.radio",
    "repro.lan",
    "repro.experiments",
    "repro.faults",
    "repro.runner",
    "repro.analysis",
    "repro.building",
    "repro.obs",
)

_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter"}
)

#: Module-level names that are conventional and read-only in practice.
_EXEMPT_MODULE_NAMES = frozenset({"__all__"})


def _mutable_reason(value: ast.expr) -> Optional[str]:
    """Why ``value`` builds a mutable container, or None if it doesn't."""
    if isinstance(value, (ast.List, ast.ListComp)):
        return "a list"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "a dict"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        if value.func.id in _MUTABLE_CONSTRUCTORS:
            return f"a {value.func.id}()"
    return None


@rule(
    "RUN001",
    name="mutable-shared-state",
    summary="mutable default argument or module-level mutable state",
    rationale=(
        "Worker processes must be pure functions of (experiment, config "
        "digest, trial index). A mutable default argument is one object "
        "shared by every call; module-level lists/dicts/sets are state "
        "shared by every trial a worker runs. Both make results depend on "
        "execution history, which breaks the serial == --jobs N guarantee "
        "and invalidates cached results. Use None-defaults, frozen "
        "dataclasses, tuples, frozensets, or types.MappingProxyType."
    ),
)
def check_run001(ctx: FileContext) -> Iterator[Violation]:
    if not ctx.in_packages(*WORKER_PACKAGES):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                reason = _mutable_reason(default)
                if reason is not None:
                    yield at_node(
                        default,
                        f"mutable default argument ({reason}) in "
                        f"{node.name}(); default to None and create the "
                        "container inside the function",
                    )
    for statement in ctx.tree.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
            target, value = statement.targets[0], statement.value
        elif isinstance(statement, ast.AnnAssign):
            target, value = statement.target, statement.value
        if not isinstance(target, ast.Name) or value is None:
            continue
        if target.id in _EXEMPT_MODULE_NAMES:
            continue
        reason = _mutable_reason(value)
        if reason is not None:
            yield at_node(
                statement,
                f"module-level mutable state: {target.id} is {reason}; "
                "use a tuple/frozenset/types.MappingProxyType or move it "
                "into the owning object",
            )
