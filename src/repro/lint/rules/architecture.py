"""ARCH001: layering enforcement over the import graph.

The repo's architecture is a DAG of layers — the event kernel at the
bottom, the paper harnesses and CLI at the top::

    sim  <-  radio  <-  bluetooth  <-  lan  <-  core  <-  experiments

with ``obs``/``faults``/``lint`` as side layers that only look down at
``sim``.  ARCH001 turns that sentence into an enforced invariant: every
runtime project import must point at the importer's own layer or a
declared (transitive) dependency, and the runtime import graph must be
acyclic.  ``if TYPE_CHECKING:`` imports are exempt (they do not exist
at runtime); function-body imports count for layering (they are real
runtime dependencies) but not for the cycle check (they cannot deadlock
module initialisation).

Genuine, reviewed entanglements are listed in :data:`EDGE_EXCEPTIONS`
rather than silenced in-file, so the full exception inventory lives in
one place.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from repro.lint.registry import ProjectViolation, project_rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.graph.project import ProjectGraph

#: Direct allowed dependencies of each layer (transitive closure is
#: computed below): the architecture DAG, one line per layer.
LAYER_DEPS: dict[str, frozenset[str]] = {
    "sim": frozenset(),
    "analysis": frozenset(),
    "building": frozenset({"sim"}),
    "obs": frozenset({"sim"}),
    "lint": frozenset({"sim"}),
    "faults": frozenset({"sim", "obs"}),
    "mobility": frozenset({"sim", "building"}),
    "radio": frozenset({"sim", "obs"}),
    "bluetooth": frozenset({"radio"}),
    "lan": frozenset({"bluetooth", "faults"}),
    "core": frozenset({"lan", "mobility", "analysis"}),
    "api": frozenset({"core"}),
    "runner": frozenset({"api", "obs"}),
    "experiments": frozenset({"core", "runner", "faults"}),
    "bench": frozenset({"experiments"}),
    "cli": frozenset({"bench", "lint", "experiments"}),
}

#: Package (dotted prefix) -> layer.  Anything under ``repro.X`` maps
#: through its second component; the overrides below win first.
PACKAGE_LAYERS: dict[str, str] = {
    "repro.sim": "sim",
    "repro.analysis": "analysis",
    "repro.building": "building",
    "repro.obs": "obs",
    "repro.lint": "lint",
    "repro.faults": "faults",
    "repro.mobility": "mobility",
    "repro.radio": "radio",
    "repro.bluetooth": "bluetooth",
    "repro.lan": "lan",
    "repro.core": "core",
    "repro.runner": "runner",
    "repro.experiments": "experiments",
    "repro.bench": "bench",
    "repro.cli": "cli",
    "repro.__main__": "cli",
}

#: Module-level overrides, consulted before the package mapping.
#: ``trace_cli`` is the observability *command line*: it orchestrates
#: experiments and the runner (deferred imports), which is cli-layer
#: behaviour living in the obs package for discoverability.
MODULE_LAYER_OVERRIDES: dict[str, str] = {
    "repro": "api",
    "repro.obs.trace_cli": "cli",
}

#: Reviewed module-to-module edges that cross the DAG upwards.  The
#: radio package reuses two leaf bluetooth definitions (the FHS packet
#: dataclass and the RF channel count) rather than duplicating them;
#: both targets are constants/dataclass modules with no radio imports,
#: so no cycle can form.
EDGE_EXCEPTIONS: frozenset[tuple[str, str]] = frozenset(
    {
        ("repro.radio.channel", "repro.bluetooth.packets"),
        ("repro.radio.interference", "repro.bluetooth.constants"),
    }
)


def _transitive_deps(layers: dict[str, frozenset[str]]) -> dict[str, frozenset[str]]:
    closed: dict[str, frozenset[str]] = {}

    def close(layer: str, trail: tuple[str, ...] = ()) -> frozenset[str]:
        if layer in closed:
            return closed[layer]
        if layer in trail:
            raise ValueError(f"LAYER_DEPS itself has a cycle at {layer!r}")
        deps = set(layers[layer])
        for dep in layers[layer]:
            deps |= close(dep, trail + (layer,))
        closed[layer] = frozenset(deps)
        return closed[layer]

    for layer in layers:
        close(layer)
    return closed


ALLOWED: dict[str, frozenset[str]] = _transitive_deps(LAYER_DEPS)


def layer_of(module: str) -> Optional[str]:
    """The layer a dotted module belongs to, or None if unmapped."""
    probe = module
    while probe:
        if probe in MODULE_LAYER_OVERRIDES:
            return MODULE_LAYER_OVERRIDES[probe]
        if probe in PACKAGE_LAYERS:
            return PACKAGE_LAYERS[probe]
        probe = probe.rpartition(".")[0]
    return None


@project_rule(
    "ARCH001",
    name="layering",
    summary="runtime import violates the layer DAG (or forms a cycle)",
    rationale=(
        "The kernel-up layering (sim <- radio <- bluetooth <- lan <- core <- "
        "experiments) is what keeps the simulator testable in isolation and "
        "the determinism rules' package boundaries meaningful. An upward "
        "import — sim reaching into core, bluetooth into experiments — "
        "couples the bottom of the stack to the top, and an import cycle "
        "makes initialisation order load-bearing. Both regress silently "
        "without a whole-program check; file-local lint cannot see them."
    ),
)
def check_arch001(graph: "ProjectGraph") -> Iterator[ProjectViolation]:
    for edge in graph.imports.project_edges(runtime_only=True):
        source_layer = layer_of(edge.source)
        target_layer = layer_of(edge.target)
        if source_layer is None or target_layer is None:
            continue  # scripts/tests outside the mapped tree
        if target_layer == source_layer or target_layer in ALLOWED[source_layer]:
            continue
        if (edge.source, edge.target) in EDGE_EXCEPTIONS:
            continue
        context = graph.file_for_module(edge.source)
        if context is None:
            continue
        yield ProjectViolation(
            path=context.display_path,
            line=edge.line,
            column=0,
            message=(
                f"layer {source_layer!r} ({edge.source}) must not import "
                f"layer {target_layer!r} ({edge.target}); allowed from "
                f"{source_layer!r}: "
                f"{', '.join(sorted(ALLOWED[source_layer])) or '(nothing)'}"
            ),
        )

    for cycle in graph.imports.cycles():
        anchor = graph.file_for_module(cycle[0])
        yield ProjectViolation(
            path=anchor.display_path if anchor is not None else "<project>",
            line=1,
            column=0,
            message=(
                "import-time cycle: " + " -> ".join(cycle + (cycle[0],))
            ),
        )
