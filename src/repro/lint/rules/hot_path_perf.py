"""PERF001: allocation audit of ``@hot_path`` functions and their callees.

docs/performance.md identifies the per-event functions that dominate a
run: the kernel drains, the inquiry hop schedule, radio coverage, LAN
delivery.  Those carry the :func:`repro.sim.hotpath.hot_path` marker (a
zero-cost identity decorator), and PERF001 audits the marked functions
**plus everything they transitively call** inside the project for
avoidable per-call allocation:

* list/set/dict comprehensions (a fresh container per call),
* f-strings (string building on the hot path),
* nested ``def``/``lambda`` (a closure object per call),
* ``**kwargs`` call expansion (a dict per call).

Generator expressions are not flagged (lazy, no up-front container),
and nothing under a ``raise`` statement is flagged — error paths are
cold by construction.  A finding that is genuinely the function's
purpose (e.g. the result list it returns) is suppressed in-file with a
``-- why`` justification, same as every other rule.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from repro.lint.registry import ProjectViolation, project_rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.graph.project import ProjectGraph

#: Final dotted component that marks a function as hot.  The marker is
#: consumed statically from the AST; this module never imports
#: repro.sim.hotpath.
HOT_PATH_MARKER = "hot_path"


def _is_marked(decorators: tuple[str, ...]) -> bool:
    return any(
        dotted == HOT_PATH_MARKER or dotted.endswith("." + HOT_PATH_MARKER)
        for dotted in decorators
    )


def _find_function(
    tree: ast.Module, line: int
) -> Optional[ast.stmt]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.lineno == line:
                return node
    return None


def _raise_descendants(function: ast.stmt) -> frozenset[int]:
    cold: set[int] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Raise):
            for sub in ast.walk(node):
                cold.add(id(sub))
    return frozenset(cold)


def _allocation_findings(function: ast.stmt) -> Iterator[tuple[ast.AST, str]]:
    cold = _raise_descendants(function)
    for node in ast.walk(function):
        if id(node) in cold or node is function:
            continue
        if isinstance(node, ast.ListComp):
            yield node, "list comprehension allocates a container per call"
        elif isinstance(node, ast.SetComp):
            yield node, "set comprehension allocates a container per call"
        elif isinstance(node, ast.DictComp):
            yield node, "dict comprehension allocates a container per call"
        elif isinstance(node, ast.JoinedStr):
            yield node, "f-string builds a string per call"
        elif isinstance(node, ast.Lambda):
            yield node, "lambda allocates a closure per call"
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, f"nested def {node.name!r} allocates a closure per call"
        elif isinstance(node, ast.Call) and any(
            keyword.arg is None for keyword in node.keywords
        ):
            yield node, "**kwargs expansion allocates a dict per call"


@project_rule(
    "PERF001",
    name="hot-path-allocation",
    summary="avoidable per-call allocation in an @hot_path function or callee",
    rationale=(
        "The @hot_path functions run once per simulated event — millions of "
        "times per experiment — so a comprehension, f-string, closure or "
        "**kwargs dict there is a measured cost, not a style point (the "
        "tracing-overhead gate in CI exists for the same reason). The audit "
        "covers transitive project callees because hot loops rarely allocate "
        "directly; they call helpers that do. Cold paths (raise arguments) "
        "are exempt, and intentional allocations carry a -- why suppression."
    ),
)
def check_perf001(graph: "ProjectGraph") -> Iterator[ProjectViolation]:
    calls = graph.calls
    marked = sorted(
        name for name, node in calls.nodes.items() if _is_marked(node.decorators)
    )
    if not marked:
        return
    chains = calls.reachable_from(marked)
    for name in sorted(chains):
        node = calls.nodes.get(name)
        if node is None:
            continue
        context = graph.file_for_module(node.module)
        if context is None:
            continue
        function = _find_function(context.tree, node.line)
        if function is None:
            continue
        chain = chains[name]
        via = "" if len(chain) == 1 else (
            " (hot via " + " -> ".join(chain) + ")"
        )
        for found, what in _allocation_findings(function):
            yield ProjectViolation(
                path=node.path,
                line=getattr(found, "lineno", node.line),
                column=getattr(found, "col_offset", 0),
                message=f"{what} in hot path {name}{via}",
            )
