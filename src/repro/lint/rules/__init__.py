"""Rule modules; importing this package registers every rule.

Add a new rule by creating (or extending) a module here with a
``@rule(...)``-decorated check and importing it below — see
docs/static-analysis.md for the full recipe.
"""

from __future__ import annotations

from repro.lint.rules import (  # noqa: F401  (imported for registration)
    bluetooth_spec,
    determinism,
    faults,
    observability,
    runtime_state,
)

__all__ = [
    "bluetooth_spec",
    "determinism",
    "faults",
    "observability",
    "runtime_state",
]
