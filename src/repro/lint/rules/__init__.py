"""Rule modules; importing this package registers every rule.

Add a new rule by creating (or extending) a module here with a
``@rule(...)``-decorated check and importing it below — see
docs/static-analysis.md for the full recipe.
"""

from __future__ import annotations

from repro.lint.rules import (  # noqa: F401  (imported for registration)
    architecture,
    bluetooth_spec,
    determinism,
    faults,
    hot_path_perf,
    observability,
    runtime_state,
    taint,
)

__all__ = [
    "architecture",
    "bluetooth_spec",
    "determinism",
    "faults",
    "hot_path_perf",
    "observability",
    "runtime_state",
    "taint",
]
