"""Experiment `table1`: the §4.1 device-discovery-time table.

Paper setup: the master is *continuously* in inquiry; one slave
alternates inquiry-scan and page-scan periods (11.25 ms windows), so an
inquiry-scan window opens every 2.56 s.  500 trials are classified by
whether master and slave started on the same frequency train:

    Starting Train | Cases | T_average
    Same           |  236  | 1.6028 s
    Different      |  264  | 4.1320 s
    Mixed          |  500  | 2.865 s

Our trial measures the same interval the authors' ``ftime`` calls did:
from the master entering the inquiry state to the first FHS response
received.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import ClassVar, Mapping, Optional

from repro.analysis.stats import Summary, summarize
from repro.analysis.tables import render_comparison, render_table
from repro.bluetooth.address import BDAddr
from repro.bluetooth.btclock import CLKN_WRAP, BluetoothClock
from repro.bluetooth.constants import NUM_INQUIRY_FREQUENCIES
from repro.bluetooth.hopping import Train, continuous_inquiry, train_of_position
from repro.bluetooth.inquiry import InquiryProcedure
from repro.bluetooth.scan import BackoffReentry, InquiryScanner, PhaseMode, ScanConfig
from repro.bluetooth.swarm import InquiryScanSwarm, SwarmSlave
from repro.faults import FaultPlan, profile_named
from repro.obs.metrics import MetricsRegistry
from repro.runner.executor import ExperimentRunner
from repro.runner.seeding import config_digest, trial_seed
from repro.sim.batch import resolve_engine
from repro.sim.clock import seconds_from_ticks, ticks_from_seconds
from repro.sim.kernel import Kernel
from repro.sim.rng import RandomStream

#: Runner experiment name; part of every trial's seed derivation.
EXPERIMENT = "table1"

#: The values measured in the paper, for comparison output (read-only:
#: worker processes import this module).
PAPER_REFERENCE: Mapping[str, float] = MappingProxyType(
    {"same": 1.6028, "different": 4.1320, "mixed": 2.865}
)


@dataclass(frozen=True)
class Table1Config:
    """Parameters of the discovery-time experiment."""

    trials: int = 500
    seed: int = 20031001
    #: Give up on a trial after this much simulated time (discovery in
    #: this setup always succeeds well before it).
    horizon_seconds: float = 30.0
    #: FIXED models the hardware's effectively constant train membership
    #: over a multi-second trial; the SEQUENCE ablation moves the
    #: listening frequency through the whole sequence (see DESIGN.md §5).
    phase_mode: PhaseMode = PhaseMode.FIXED
    backoff_reentry: BackoffReentry = BackoffReentry.IMMEDIATE
    #: The paper's slave interleaves inquiry and page scan, halving the
    #: effective inquiry-scan rate.  Setting False gives a pure
    #: inquiry-scan slave (an ablation).
    interleave_page_scan: bool = True
    #: Fault profile name (``repro.faults.PROFILES``).  This harness has
    #: no LAN, so only the profile's radio-outage axis applies: the
    #: master goes deaf for seed-derived windows, degrading discovery.
    faults: str = "none"
    fault_seed: int = 0
    #: Span tracing (``bips trace``): collect per-trial span records in
    #: the payload.  Tracing never changes a simulated result — only
    #: whether the payload carries a ``"spans"`` key.
    trace: bool = False
    #: Root-span sampling rate when tracing (see ``repro.obs.tracing``).
    trace_sample: float = 1.0

    #: Kept out of the digest at their defaults so pre-fault configs
    #: keep their historical trial seeds (see ``runner.seeding``).
    DIGEST_OMIT_IF_DEFAULT: ClassVar[tuple[str, ...]] = (
        "faults",
        "fault_seed",
        "trace",
        "trace_sample",
    )
    #: Fault fields never shift the *seeding* digest: a fault plan
    #: draws only from its own seed, so a chaos run degrades the very
    #: same trials the clean run computes (see ``runner.seeding``).
    #: Trace fields likewise: the tracer observes, never draws.
    SEED_DIGEST_OMIT: ClassVar[tuple[str, ...]] = (
        "faults",
        "fault_seed",
        "trace",
        "trace_sample",
    )

    def __post_init__(self) -> None:
        if self.trials <= 0:
            raise ValueError(f"trials must be positive: {self.trials}")
        if self.horizon_seconds <= 0:
            raise ValueError(f"horizon must be positive: {self.horizon_seconds}")
        profile_named(self.faults)  # unknown profile names fail fast

    def fault_plan(self) -> Optional[FaultPlan]:
        """The bound fault plan, or None for the ``none`` profile."""
        plan = FaultPlan.named(self.faults, self.fault_seed)
        return None if plan.is_noop else plan


@dataclass(frozen=True)
class Trial:
    """One discovery trial."""

    index: int
    same_train: bool
    discovery_seconds: Optional[float]


@dataclass
class Table1Result:
    """All trials plus the three-row summary of the paper's table."""

    config: Table1Config
    trials: list[Trial] = field(default_factory=list)

    def _times(self, same: Optional[bool]) -> list[float]:
        return [
            t.discovery_seconds
            for t in self.trials
            if t.discovery_seconds is not None and (same is None or t.same_train == same)
        ]

    @property
    def same_summary(self) -> Summary:
        """Discovery-time stats for same-train trials."""
        return summarize(self._times(True))

    @property
    def different_summary(self) -> Summary:
        """Discovery-time stats for different-train trials."""
        return summarize(self._times(False))

    @property
    def mixed_summary(self) -> Summary:
        """Discovery-time stats over all trials."""
        return summarize(self._times(None))

    @property
    def undiscovered(self) -> int:
        """Trials that never discovered (should be zero)."""
        return sum(1 for t in self.trials if t.discovery_seconds is None)

    def cdf(self, same: Optional[bool]) -> "EmpiricalCDF":
        """Empirical discovery-time CDF (same=True/False, None=mixed)."""
        from repro.analysis.stats import EmpiricalCDF

        population = [
            t for t in self.trials if same is None or t.same_train == same
        ]
        return EmpiricalCDF.from_samples([t.discovery_seconds for t in population])

    def render_cdf(self, horizon_seconds: float = 8.0) -> str:
        """The discovery-time distribution as an ASCII figure.

        The paper reports only averages; the full distribution makes the
        train mechanics visible — the same-train curve rises within one
        scan interval while the different-train curve is shifted by one
        2.56 s dwell.
        """
        from repro.analysis.curves import Series, render_curves

        grid = [round(0.1 * i, 3) for i in range(int(horizon_seconds * 10) + 1)]
        series = [
            Series("same train", tuple(self.cdf(True).sample_curve(grid))),
            Series("different train", tuple(self.cdf(False).sample_curve(grid))),
            Series("mixed", tuple(self.cdf(None).sample_curve(grid))),
        ]
        return render_curves(
            grid,
            series,
            title="Discovery-time distribution (extension of the §4.1 table)",
        )

    def to_csv(self) -> str:
        """Per-trial data as CSV (for external analysis/plotting)."""
        lines = ["trial,same_train,discovery_seconds"]
        for trial in self.trials:
            seconds = "" if trial.discovery_seconds is None else f"{trial.discovery_seconds:.6f}"
            lines.append(f"{trial.index},{int(trial.same_train)},{seconds}")
        return "\n".join(lines)

    def render(self) -> str:
        """The reproduced table, paper-style plus paper comparison."""
        same, diff, mixed = self.same_summary, self.different_summary, self.mixed_summary
        own = render_table(
            ["Starting Train", "Case No.", "T_average"],
            [
                ["Same", same.count, f"{same.mean:.4f}s"],
                ["Different", diff.count, f"{diff.mean:.4f}s"],
                ["Mixed", mixed.count, f"{mixed.mean:.4f}s"],
            ],
            title="Reproduced §4.1 table: average device discovery time",
        )
        comparison = render_comparison(
            "Measured vs paper",
            [
                ("same", same.mean, PAPER_REFERENCE["same"]),
                ("different", diff.mean, PAPER_REFERENCE["different"]),
                ("mixed", mixed.mean, PAPER_REFERENCE["mixed"]),
                ("different - same", diff.mean - same.mean,
                 PAPER_REFERENCE["different"] - PAPER_REFERENCE["same"]),
            ],
            unit="s",
        )
        return own + "\n\n" + comparison


def trial_payload(config: Table1Config, trial_index: int, seed: int) -> dict:
    """One discovery trial on a fresh kernel (runner entry point).

    ``seed`` is the trial's own root seed, derived by the runner from
    ``(experiment, config digest, trial index)`` — never from worker
    identity — so the payload is the same whether this runs inline or
    in a worker process.
    """
    tracer = None
    if config.trace:
        from repro.obs.tracing import SpanTracer

        tracer = SpanTracer(seed=seed, sample=config.trace_sample)
    kernel = Kernel(spans=tracer)
    rng = RandomStream(seed, "table1", str(trial_index))
    # The master's starting train is outside the programmer's control
    # (§4.2): randomise it, like powering the card up at a random moment.
    start_train = Train.A if rng.random() < 0.5 else Train.B
    schedule = continuous_inquiry(start_train=start_train)
    horizon = ticks_from_seconds(config.horizon_seconds)
    plan = config.fault_plan()
    reachable = (
        plan.survival_predicate(str(trial_index), horizon) if plan is not None else None
    )
    master = InquiryProcedure(
        kernel, schedule, name=f"master-{trial_index}", reachable=reachable, spans=tracer
    )

    address = BDAddr(0x0002_5B_000000 + trial_index)
    clock = BluetoothClock(offset=rng.randint(0, CLKN_WRAP - 1))
    base_phase = rng.randint(0, NUM_INQUIRY_FREQUENCIES - 1)
    if config.interleave_page_scan:
        scan = ScanConfig.interleaved_with_page_scan(
            phase_mode=config.phase_mode, backoff_reentry=config.backoff_reentry
        )
    else:
        scan = ScanConfig(
            phase_mode=config.phase_mode, backoff_reentry=config.backoff_reentry
        )
    if resolve_engine() == "batched":
        # Same construction draws in the same order (child consumes no
        # parent draws; the anchor randint is the next one either way),
        # so the trial replays byte-identically on either engine.
        swarm = InquiryScanSwarm(
            kernel, schedule, master.channel, config=scan, name=f"swarm-{trial_index}"
        )
        scanner: "InquiryScanner | SwarmSlave" = swarm.add_slave(
            address=address,
            rng=rng.child("slave"),
            clock=clock,
            base_phase=base_phase,
            window_anchor=rng.randint(0, scan.interval_ticks - 1),
            horizon_tick=horizon,
            name=f"slave-{trial_index}",
        )
    else:
        scanner = InquiryScanner(
            kernel=kernel,
            address=address,
            schedule=schedule,
            channel=master.channel,
            rng=rng.child("slave"),
            config=scan,
            clock=clock,
            base_phase=base_phase,
            window_anchor=rng.randint(0, scan.interval_ticks - 1),
            horizon_tick=horizon,
            name=f"slave-{trial_index}",
        )
    # Stop the scanner as soon as the master has its answer, so the
    # remainder of the horizon costs no events.
    master.on_discovered = lambda packet, tick: scanner.stop()
    scanner.start()
    kernel.run_until(horizon)

    same_train = train_of_position(scanner.listen_position(0)) is start_train
    tick = master.discovery_tick(address)
    payload = {
        "index": trial_index,
        "same_train": same_train,
        "discovery_seconds": seconds_from_ticks(tick) if tick is not None else None,
    }
    if tracer is not None:
        payload["spans"] = tracer.records()
    return payload


def run_trial(config: Table1Config, trial_index: int) -> Trial:
    """One trial with the exact seed the runner would derive for it."""
    digest = config_digest(EXPERIMENT, config)
    payload = trial_payload(
        config, trial_index, trial_seed(EXPERIMENT, digest, trial_index)
    )
    return Trial(
        index=payload["index"],
        same_train=payload["same_train"],
        discovery_seconds=payload["discovery_seconds"],
    )


def run_table1(
    config: Optional[Table1Config] = None,
    metrics: Optional[MetricsRegistry] = None,
    runner: Optional[ExperimentRunner] = None,
) -> Table1Result:
    """Run the full experiment (500 trials by default).

    Trials are submitted through an :class:`ExperimentRunner` (an
    in-process serial one when none is given); ``runner`` controls
    parallelism and caching without changing a single result byte.
    With a :class:`MetricsRegistry` the experiment layer records a
    discovery-time histogram, per-train counters, and an undiscovered
    gauge — the machine-readable form of the rendered table.
    """
    config = config if config is not None else Table1Config()
    runner = runner if runner is not None else ExperimentRunner()
    result = Table1Result(config=config)
    histogram = (
        metrics.histogram(
            "table1.discovery_seconds",
            buckets=(0.5, 1.0, 1.6, 2.56, 4.0, 5.12, 8.0, 12.0, 20.0, 30.0),
        )
        if metrics is not None
        else None
    )
    payloads = runner.map_trials(EXPERIMENT, config, trial_payload, config.trials)
    for payload in payloads:
        trial = Trial(
            index=payload["index"],
            same_train=payload["same_train"],
            discovery_seconds=payload["discovery_seconds"],
        )
        result.trials.append(trial)
        if metrics is not None:
            metrics.counter(
                "table1.trials", train="same" if trial.same_train else "different"
            ).inc()
            if trial.discovery_seconds is not None:
                histogram.observe(trial.discovery_seconds)
    if metrics is not None:
        metrics.gauge("table1.undiscovered").set(result.undiscovered)
        if config.faults != "none":
            metrics.gauge("faults.active").set(1)
    return result
