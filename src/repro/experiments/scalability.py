"""Experiment `scalability`: how BIPS scales with building size (extension).

The paper's architecture argument (§2) is that delta reporting makes the
central server's load proportional to user *movement*, not to the
number of workstations.  This harness grows the building (a linear wing
of N rooms) with a fixed user population and verifies the claim: LAN
presence traffic and tracking quality should be flat in N while the
per-workstation cost stays constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.tables import render_table
from repro.building.layouts import linear_wing
from repro.core.config import BIPSConfig
from repro.core.simulation import BIPSSimulation
from repro.runner.executor import ExperimentRunner
from repro.runner.seeding import config_digest, trial_seed

#: Runner experiment name; part of every point's seed derivation.
EXPERIMENT = "scalability"


@dataclass(frozen=True)
class ScalabilityConfig:
    """Parameters of the scaling sweep."""

    room_counts: tuple[int, ...] = (4, 8, 16, 32)
    user_count: int = 8
    hops_per_user: int = 5
    duration_seconds: float = 400.0
    seed: int = 20031006

    def __post_init__(self) -> None:
        if not self.room_counts or any(n < 2 for n in self.room_counts):
            raise ValueError(f"invalid room counts: {self.room_counts}")
        if self.user_count <= 0:
            raise ValueError(f"user count must be positive: {self.user_count}")


@dataclass(frozen=True)
class ScalabilityPoint:
    """Measurements for one building size."""

    rooms: int
    users: int
    lan_messages: int
    presence_updates: int
    mean_accuracy: float
    kernel_events: int

    @property
    def updates_per_user_minute(self) -> float:
        """Presence deltas per user per simulated minute."""
        return self.presence_updates / self.users

    @property
    def events_per_room(self) -> float:
        """Kernel events per room — the per-workstation simulation cost."""
        return self.kernel_events / self.rooms


@dataclass
class ScalabilityResult:
    """The sweep with rendering."""

    config: ScalabilityConfig
    points: list[ScalabilityPoint] = field(default_factory=list)

    def point_for(self, rooms: int) -> ScalabilityPoint:
        """Find one sweep point."""
        for point in self.points:
            if point.rooms == rooms:
                return point
        raise KeyError(f"no point for {rooms} rooms")

    def render(self) -> str:
        """The scaling table."""
        rows = [
            [
                point.rooms,
                point.users,
                point.presence_updates,
                point.lan_messages,
                f"{point.mean_accuracy * 100:.1f}%",
                point.kernel_events,
            ]
            for point in self.points
        ]
        return render_table(
            ["rooms", "users", "presence deltas", "LAN msgs", "accuracy", "kernel events"],
            rows,
            title=(
                f"BIPS scaling with building size ({self.config.user_count} users, "
                f"{self.config.duration_seconds:.0f}s): server load tracks movement, "
                "not deployment size"
            ),
        )


def point_payload(config: ScalabilityConfig, index: int, seed: int) -> dict:
    """One building size (runner entry point).

    Each point gets an independent derived seed; the paper's flatness
    claim is about scaling shape, not about replaying one stream across
    building sizes.
    """
    rooms = config.room_counts[index]
    sim = BIPSSimulation(plan=linear_wing(rooms), config=BIPSConfig(seed=seed))
    rng = sim.rng.child("scalability")
    room_ids = sim.plan.room_ids()
    for user_index in range(config.user_count):
        userid = f"u-{user_index}"
        sim.add_user(userid, f"U{user_index}")
        sim.login(userid)
        sim.walk(
            userid,
            start_room=rng.choice(room_ids),
            hops=config.hops_per_user,
            start_at_seconds=rng.uniform(0.0, 30.0),
        )
    sim.run(until_seconds=config.duration_seconds)
    return {
        "rooms": rooms,
        "users": config.user_count,
        "lan_messages": sim.lan.stats.sent,
        "presence_updates": sim.server.presence_updates_received,
        "mean_accuracy": sim.tracking_report().mean_accuracy,
        "kernel_events": sim.kernel.events_fired,
    }


def run_point(config: ScalabilityConfig, rooms: int) -> ScalabilityPoint:
    """One building size with the exact seed the runner would derive."""
    index = config.room_counts.index(rooms)
    digest = config_digest(EXPERIMENT, config)
    payload = point_payload(config, index, trial_seed(EXPERIMENT, digest, index))
    return ScalabilityPoint(**payload)


def run_scalability(
    config: Optional[ScalabilityConfig] = None,
    runner: Optional[ExperimentRunner] = None,
) -> ScalabilityResult:
    """Run the full sweep."""
    config = config if config is not None else ScalabilityConfig()
    runner = runner if runner is not None else ExperimentRunner()
    result = ScalabilityResult(config=config)
    payloads = runner.map_trials(
        EXPERIMENT, config, point_payload, len(config.room_counts)
    )
    result.points.extend(ScalabilityPoint(**payload) for payload in payloads)
    return result
