"""Experiment `policies`: how should a master spend its tracking budget?

§5 fixes the inquiry window at 3.84 s out of a 15.4 s cycle (≈25 %
tracking load) but does not compare against other ways of spending the
same budget.  This harness runs the full system under alternative
schedules at (approximately) equal load:

* ``paper``      — 3.84 s / 15.4 s: one train dwell + half, once per crossing;
* ``split``      — 1.92 s / 7.7 s: half the window twice as often (covers
  less than one train dwell per window!);
* ``double``     — 7.68 s / 30.8 s: three dwells, half as often (a slow
  walker can cross the piconet between windows);
* ``continuous`` — 100 % inquiry: the §4.1 upper bound (no serving time
  left for connected slaves).

Metrics come from end-to-end runs with identical user walks: detection
rate (room changes noticed), mean detection latency, and tracking
accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.tables import render_table
from repro.building.layouts import academic_department
from repro.core.config import BIPSConfig
from repro.core.scheduler import MasterSchedulingPolicy
from repro.core.simulation import BIPSSimulation


@dataclass(frozen=True)
class PolicyCase:
    """One candidate schedule."""

    name: str
    inquiry_window_seconds: float
    operational_cycle_seconds: float

    @property
    def load(self) -> float:
        """Tracking load fraction."""
        return self.inquiry_window_seconds / self.operational_cycle_seconds


DEFAULT_CASES = (
    PolicyCase("paper 3.84/15.4", 3.84, 15.4),
    PolicyCase("split 1.92/7.7", 1.92, 7.7),
    PolicyCase("double 7.68/30.8", 7.68, 30.8),
    PolicyCase("continuous", 15.4, 15.4),
)


@dataclass(frozen=True)
class PolicyComparisonConfig:
    """Parameters of the comparison."""

    cases: tuple[PolicyCase, ...] = DEFAULT_CASES
    seeds: tuple[int, ...] = (9001, 9002, 9003)
    user_count: int = 6
    hops_per_user: int = 5
    duration_seconds: float = 600.0

    def __post_init__(self) -> None:
        if not self.cases:
            raise ValueError("no policy cases")
        if not self.seeds:
            raise ValueError("no seeds")


@dataclass(frozen=True)
class PolicyOutcome:
    """Averaged metrics for one policy."""

    case: PolicyCase
    detection_rate: float
    mean_detection_latency_seconds: float
    mean_accuracy: float


@dataclass
class PolicyComparisonResult:
    """All outcomes, with rendering."""

    config: PolicyComparisonConfig
    outcomes: list[PolicyOutcome] = field(default_factory=list)

    def outcome_for(self, name: str) -> PolicyOutcome:
        """Find one policy's outcome."""
        for outcome in self.outcomes:
            if outcome.case.name == name:
                return outcome
        raise KeyError(f"no outcome for policy {name!r}")

    def render(self) -> str:
        """The comparison table."""
        rows = [
            [
                outcome.case.name,
                f"{outcome.case.load * 100:.0f}%",
                f"{outcome.detection_rate * 100:.1f}%",
                f"{outcome.mean_detection_latency_seconds:.1f}s",
                f"{outcome.mean_accuracy * 100:.1f}%",
            ]
            for outcome in self.outcomes
        ]
        return render_table(
            ["policy", "tracking load", "detection rate", "mean latency", "accuracy"],
            rows,
            title=(
                "Master scheduling policies at (near-)equal budget "
                f"({self.config.user_count} users, "
                f"{self.config.duration_seconds:.0f}s, "
                f"{len(self.config.seeds)} seeds)"
            ),
        )


def _run_case(config: PolicyComparisonConfig, case: PolicyCase, seed: int):
    sim = BIPSSimulation(
        plan=academic_department(),
        config=BIPSConfig(
            seed=seed,
            policy=MasterSchedulingPolicy(
                inquiry_window_seconds=case.inquiry_window_seconds,
                operational_cycle_seconds=case.operational_cycle_seconds,
            ),
        ),
    )
    rng = sim.rng.child("policies")
    rooms = sim.plan.room_ids()
    for index in range(config.user_count):
        userid = f"u-{index}"
        sim.add_user(userid, f"U{index}")
        sim.login(userid)
        sim.walk(
            userid,
            start_room=rng.choice(rooms),
            hops=config.hops_per_user,
            start_at_seconds=rng.uniform(0.0, 30.0),
        )
    sim.run(until_seconds=config.duration_seconds)
    return sim.tracking_report()


def run_policy_comparison(
    config: Optional[PolicyComparisonConfig] = None,
) -> PolicyComparisonResult:
    """Run every case over every seed and average."""
    config = config if config is not None else PolicyComparisonConfig()
    result = PolicyComparisonResult(config=config)
    for case in config.cases:
        rates: list[float] = []
        latencies: list[float] = []
        accuracies: list[float] = []
        for seed in config.seeds:
            report = _run_case(config, case, seed)
            user_rates = [user.detection_rate for user in report.users]
            rates.append(sum(user_rates) / len(user_rates))
            accuracies.append(report.mean_accuracy)
            latency = report.mean_detection_latency_seconds
            if latency is not None:
                latencies.append(latency)
        result.outcomes.append(
            PolicyOutcome(
                case=case,
                detection_rate=sum(rates) / len(rates),
                mean_detection_latency_seconds=(
                    sum(latencies) / len(latencies) if latencies else float("inf")
                ),
                mean_accuracy=sum(accuracies) / len(accuracies),
            )
        )
    return result
