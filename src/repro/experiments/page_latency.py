"""Experiment `page-latency`: connection-setup time (§3.2, extension).

The paper describes the page/connection phases but measures only
discovery.  This harness characterises the second half of enrolment on
the slot-level pager: how long a BIPS workstation needs to connect a
discovered device, as a function of the freshness of its clock estimate
and of the slave's page-scan duty cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.stats import Summary, summarize
from repro.analysis.tables import render_table
from repro.bluetooth.device import make_devices
from repro.bluetooth.page import PageOutcome
from repro.bluetooth.paging import SlotLevelPager
from repro.sim.clock import seconds_from_ticks, ticks_from_seconds
from repro.sim.kernel import Kernel
from repro.sim.rng import RandomStream


@dataclass(frozen=True)
class PageLatencyConfig:
    """Parameters of the page-latency experiment."""

    samples_per_case: int = 300
    seed: int = 20031005
    timeout_seconds: float = 10.24
    #: Clock-estimate errors to sweep, in 1.28 s phase periods: 0 models
    #: paging straight after the inquiry response; larger values model
    #: paging from a progressively staler location-database entry.  An
    #: 8-period shift lands the predicted frequency in the other train
    #: for half the phase positions (the worst case for prediction); a
    #: 17-period shift flips almost every position.
    estimate_error_periods: tuple[float, ...] = (0.0, 0.5, 3.5, 8.5, 17.5)

    def __post_init__(self) -> None:
        if self.samples_per_case <= 0:
            raise ValueError(f"samples must be positive: {self.samples_per_case}")
        if self.timeout_seconds <= 0:
            raise ValueError(f"timeout must be positive: {self.timeout_seconds}")


@dataclass(frozen=True)
class PageLatencyCase:
    """One sweep point's outcome."""

    estimate_error_periods: float
    latency: Summary  # seconds, over connected attempts
    connected: int
    timeouts: int
    wrong_train_fraction: float


@dataclass
class PageLatencyResult:
    """All sweep points plus rendering."""

    config: PageLatencyConfig
    cases: list[PageLatencyCase] = field(default_factory=list)

    def case_for(self, periods: float) -> PageLatencyCase:
        """Find a sweep point by its error value."""
        for case in self.cases:
            if case.estimate_error_periods == periods:
                return case
        raise KeyError(f"no case for error {periods}")

    def render(self) -> str:
        """Latency table over estimate staleness."""
        rows = []
        for case in self.cases:
            rows.append(
                [
                    f"{case.estimate_error_periods:g} periods",
                    f"{case.latency.mean:.4f}s",
                    f"{case.latency.maximum:.4f}s",
                    f"{case.wrong_train_fraction * 100:.0f}%",
                    f"{case.connected}/{case.connected + case.timeouts}",
                ]
            )
        return render_table(
            ["clock-estimate error", "mean latency", "max latency",
             "wrong train", "connected"],
            rows,
            title=(
                "Page latency vs clock-estimate staleness "
                "(slot-level §3.2 simulation, 11.25 ms page-scan windows "
                "every 1.28 s)"
            ),
        )


def run_page_latency(config: Optional[PageLatencyConfig] = None) -> PageLatencyResult:
    """Run the sweep."""
    config = config if config is not None else PageLatencyConfig()
    result = PageLatencyResult(config=config)
    timeout_ticks = ticks_from_seconds(config.timeout_seconds)
    for periods in config.estimate_error_periods:
        error_ticks = round(periods * 4096)
        latencies: list[float] = []
        connected = 0
        timeouts = 0
        wrong = 0
        for sample in range(config.samples_per_case):
            kernel = Kernel()
            rng = RandomStream(config.seed, "page-latency", str(periods), str(sample))
            target = make_devices(1, rng)[0]
            pager = SlotLevelPager(kernel)
            outcomes = []
            pager.page(
                target,
                outcomes.append,
                timeout_ticks=timeout_ticks,
                estimate_error_ticks=error_ticks,
            )
            kernel.run_until(timeout_ticks + 100)
            outcome = outcomes[0]
            if not outcome.train_prediction_correct:
                wrong += 1
            if outcome.result.outcome is PageOutcome.CONNECTED:
                connected += 1
                latencies.append(seconds_from_ticks(outcome.result.latency_ticks))
            else:
                timeouts += 1
        result.cases.append(
            PageLatencyCase(
                estimate_error_periods=periods,
                latency=summarize(latencies),
                connected=connected,
                timeouts=timeouts,
                wrong_train_fraction=wrong / config.samples_per_case,
            )
        )
    return result
