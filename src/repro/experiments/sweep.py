"""Ablation sweeps over the design choices DESIGN.md §5 calls out.

Each sweep isolates one modelling decision and shows its effect on the
headline numbers, so a reader can see *why* the defaults are what they
are (and how sensitive the reproduction is to each choice).

Seeding note: every variant/window cell runs under a seed stream
derived from its *own* config digest (see :mod:`repro.runner.seeding`),
so no two cells replay the same random draws — sharing one stream
across variants silently correlates the columns being compared.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.analysis.tables import render_table
from repro.bluetooth.scan import BackoffReentry, PhaseMode, ResponseMode
from repro.runner.executor import ExperimentRunner

from .duty_cycle import EXPERIMENT as SECTION5_EXPERIMENT
from .duty_cycle import Section5Config, window_payload
from .figure2 import Figure2Config, run_figure2
from .table1 import Table1Config, run_table1


@dataclass(frozen=True)
class SweepRow:
    """One configuration's headline numbers."""

    label: str
    values: tuple[float, ...]


@dataclass
class SweepResult:
    """A labelled grid of numbers with a renderer."""

    title: str
    columns: tuple[str, ...]
    rows: list[SweepRow]

    def render(self) -> str:
        """Monospace table of the sweep."""
        return render_table(
            ("variant",) + self.columns,
            [[row.label] + [f"{v:.4f}" for v in row.values] for row in self.rows],
            title=self.title,
        )

    def row(self, label: str) -> SweepRow:
        """Find a row by label."""
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(f"no sweep row {label!r}")


def sweep_table1_phase_mode(
    trials: int = 300, seed: int = 77001, runner: Optional[ExperimentRunner] = None
) -> SweepResult:
    """Ablation 6: slave listening-frequency evolution (FIXED vs SEQUENCE)."""
    rows = []
    for mode in (PhaseMode.FIXED, PhaseMode.SEQUENCE):
        result = run_table1(
            Table1Config(trials=trials, seed=seed, phase_mode=mode), runner=runner
        )
        rows.append(
            SweepRow(
                label=mode.value,
                values=(
                    result.same_summary.mean,
                    result.different_summary.mean,
                    result.mixed_summary.mean,
                ),
            )
        )
    return SweepResult(
        title="Table-1 ablation: scan phase evolution",
        columns=("same (s)", "different (s)", "mixed (s)"),
        rows=rows,
    )


def sweep_table1_backoff_reentry(
    trials: int = 300, seed: int = 77002, runner: Optional[ExperimentRunner] = None
) -> SweepResult:
    """Ablation 1: where the slave listens after its backoff."""
    rows = []
    for reentry in (BackoffReentry.IMMEDIATE, BackoffReentry.NEXT_WINDOW):
        result = run_table1(
            Table1Config(trials=trials, seed=seed, backoff_reentry=reentry),
            runner=runner,
        )
        rows.append(
            SweepRow(
                label=reentry.value,
                values=(
                    result.same_summary.mean,
                    result.different_summary.mean,
                    result.mixed_summary.mean,
                ),
            )
        )
    return SweepResult(
        title="Table-1 ablation: backoff re-entry policy",
        columns=("same (s)", "different (s)", "mixed (s)"),
        rows=rows,
    )


def sweep_table1_scan_interleaving(
    trials: int = 300, seed: int = 77003, runner: Optional[ExperimentRunner] = None
) -> SweepResult:
    """Ablation 2: inquiry-scan-only slave vs the paper's interleaved slave."""
    rows = []
    for interleave in (True, False):
        result = run_table1(
            Table1Config(trials=trials, seed=seed, interleave_page_scan=interleave),
            runner=runner,
        )
        label = "inquiry+page scan (paper)" if interleave else "inquiry scan only"
        rows.append(
            SweepRow(
                label=label,
                values=(
                    result.same_summary.mean,
                    result.different_summary.mean,
                    result.mixed_summary.mean,
                ),
            )
        )
    return SweepResult(
        title="Table-1 ablation: slave scan interleaving",
        columns=("same (s)", "different (s)", "mixed (s)"),
        rows=rows,
    )


def sweep_figure2_contention(
    replications: int = 30,
    seed: int = 77004,
    slave_counts: Sequence[int] = (10, 20),
    runner: Optional[ExperimentRunner] = None,
) -> SweepResult:
    """Ablation 3: what each contention mechanism costs in window 1."""
    variants = [
        ("full model (paper)", dict()),
        ("no receiver capture", dict(receiver_capture=False)),
        ("no enrolment", dict(enroll_discovered=False)),
        ("backoff after every response", dict(response_mode=ResponseMode.BACKOFF_EACH)),
    ]
    base = Figure2Config(
        slave_counts=tuple(slave_counts), replications=replications, seed=seed
    )
    rows = []
    for label, overrides in variants:
        result = run_figure2(replace(base, **overrides), runner=runner)
        values = []
        for count in slave_counts:
            curve = result.curve_for(count)
            values.append(curve.probability_by(base.inquiry_window_seconds))
            values.append(
                curve.probability_by(
                    base.cycle_period_seconds + base.inquiry_window_seconds
                )
            )
        rows.append(SweepRow(label=label, values=tuple(values)))
    columns = []
    for count in slave_counts:
        columns.append(f"n={count} by w1")
        columns.append(f"n={count} by w2")
    return SweepResult(
        title="Figure-2 ablation: contention mechanisms",
        columns=tuple(columns),
        rows=rows,
    )


def sweep_inquiry_window(
    windows_seconds: Sequence[float] = (1.28, 2.56, 3.84, 5.12, 7.68, 10.24),
    slave_count: int = 20,
    replications: int = 40,
    seed: int = 77005,
    runner: Optional[ExperimentRunner] = None,
) -> SweepResult:
    """Ablation 4: discovery coverage vs inquiry-window length.

    Reproduces the reasoning behind the §5 recommendation: 3.84 s is the
    knee — below one full train dwell (2.56 s) coverage collapses, and
    beyond ~3.84 s the extra dwell buys little.
    """
    runner = runner if runner is not None else ExperimentRunner()
    rows = []
    for window in windows_seconds:
        config = Section5Config(
            slave_count=slave_count,
            replications=replications,
            seed=seed,
            inquiry_window_seconds=window,
        )
        payloads = runner.map_trials(
            SECTION5_EXPERIMENT, config, window_payload, config.replications
        )
        discovered = sum(payload["found"] for payload in payloads)
        total = sum(payload["count"] for payload in payloads)
        rows.append(
            SweepRow(label=f"{window:.2f}s", values=(discovered / total,))
        )
    return SweepResult(
        title=f"§5 ablation: inquiry window vs discovered fraction ({slave_count} slaves)",
        columns=("discovered fraction",),
        rows=rows,
    )


def run_all_sweeps(
    fast: bool = True, runner: Optional[ExperimentRunner] = None
) -> list[SweepResult]:
    """Every ablation, optionally at reduced sample sizes."""
    trials = 150 if fast else 500
    reps = 15 if fast else 60
    return [
        sweep_table1_phase_mode(trials=trials, runner=runner),
        sweep_table1_backoff_reentry(trials=trials, runner=runner),
        sweep_table1_scan_interleaving(trials=trials, runner=runner),
        sweep_figure2_contention(replications=reps, runner=runner),
        sweep_inquiry_window(replications=max(10, reps), runner=runner),
    ]
