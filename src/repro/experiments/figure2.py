"""Experiment `figure2`: discovery probability vs time, 2–20 slaves.

Paper setup (§4.2, simulated on BlueHoc + ns-2 with added collision
handling): a single piconet whose master alternates device discovery and
connection management — a 1 s inquiry window at the start of every 5 s
operational cycle, transmitting **train A only**.  Slaves are always in
inquiry scan and start listening on train-A frequencies.  The plotted
curves give, for each population size in {2,4,6,8,10,15,20}, the
probability that a slave has been discovered by time *t* (0–14 s).

Reported shape: ≈90 % of 10 slaves discovered within the first 1 s
window, 100 % within the second operational cycle; 15–20 slaves all
discovered within two cycles.

The contention mechanisms reproduced here:

* FHS collisions between same-frequency slaves (the authors' BlueHoc
  extension) — resolved by the v1.1 random backoff;
* single-receiver capture at the master: an FHS occupies a full slot,
  so responses to the two ID packets of one even slot overlap and the
  second is lost;
* enrolment: slaves discovered in a window are paged and connected
  during the following connection-management phase and leave inquiry
  scan, so later windows carry only the survivors.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.analysis.curves import Series, render_curves
from repro.analysis.stats import EmpiricalCDF
from repro.analysis.tables import render_table
from repro.bluetooth.device import make_devices
from repro.bluetooth.hopping import TrainStrategy, periodic_inquiry
from repro.bluetooth.inquiry import InquiryProcedure
from repro.bluetooth.scan import InquiryScanner, PhaseMode, ResponseMode, ScanConfig
from repro.bluetooth.swarm import InquiryScanSwarm
from repro.runner.executor import ExperimentRunner
from repro.runner.seeding import config_digest, trial_seed
from repro.sim.batch import resolve_engine
from repro.sim.clock import seconds_from_ticks, ticks_from_seconds
from repro.sim.kernel import Kernel
from repro.sim.rng import RandomStream

#: Runner experiment name; part of every replication's seed derivation.
EXPERIMENT = "figure2"


@dataclass(frozen=True)
class Figure2Config:
    """Parameters of the multi-slave discovery simulation."""

    slave_counts: tuple[int, ...] = (2, 4, 6, 8, 10, 15, 20)
    replications: int = 60
    seed: int = 20031002
    horizon_seconds: float = 14.0
    inquiry_window_seconds: float = 1.0
    cycle_period_seconds: float = 5.0
    train_strategy: TrainStrategy = TrainStrategy.A_ONLY
    #: Page-and-connect discovered slaves at the end of each inquiry
    #: window so they leave inquiry scan (the paper's enrolment).
    enroll_discovered: bool = True
    #: Master single-receiver capture of overlapping FHS responses.
    receiver_capture: bool = True
    #: Slave response behaviour (see :class:`ResponseMode`).
    response_mode: ResponseMode = ResponseMode.CONTINUOUS
    grid_step_seconds: float = 0.25

    def __post_init__(self) -> None:
        if not self.slave_counts:
            raise ValueError("no slave counts given")
        if any(n <= 0 for n in self.slave_counts):
            raise ValueError(f"slave counts must be positive: {self.slave_counts}")
        if self.replications <= 0:
            raise ValueError(f"replications must be positive: {self.replications}")
        if self.inquiry_window_seconds > self.cycle_period_seconds:
            raise ValueError("inquiry window longer than the cycle period")

    def time_grid(self) -> list[float]:
        """The x-axis sample points."""
        points = []
        t = 0.0
        while t <= self.horizon_seconds + 1e-9:
            points.append(round(t, 6))
            t += self.grid_step_seconds
        return points


@dataclass
class Figure2Curve:
    """One population size's discovery-probability curve."""

    slave_count: int
    cdf: EmpiricalCDF
    collisions: int
    blocked_responses: int

    def probability_by(self, seconds: float) -> float:
        """P(a slave is discovered by ``seconds``)."""
        return self.cdf.value(seconds)


@dataclass
class Figure2Result:
    """All curves plus rendering helpers."""

    config: Figure2Config
    curves: list[Figure2Curve] = field(default_factory=list)

    def curve_for(self, slave_count: int) -> Figure2Curve:
        """The curve of one population size."""
        for curve in self.curves:
            if curve.slave_count == slave_count:
                return curve
        raise KeyError(f"no curve for {slave_count} slaves")

    def to_csv(self) -> str:
        """The curves as CSV: one row per grid point, one column per
        population size (for external plotting)."""
        grid = self.config.time_grid()
        header = "time_seconds," + ",".join(
            f"p_discovered_n{curve.slave_count}" for curve in self.curves
        )
        sampled = [curve.cdf.sample_curve(grid) for curve in self.curves]
        lines = [header]
        for row_index, t in enumerate(grid):
            values = ",".join(f"{column[row_index]:.4f}" for column in sampled)
            lines.append(f"{t:.2f},{values}")
        return "\n".join(lines)

    def render(self) -> str:
        """ASCII reproduction of Figure 2 plus the landmark table."""
        grid = self.config.time_grid()
        series = [
            Series(
                label=f"{curve.slave_count} slaves",
                values=tuple(curve.cdf.sample_curve(grid)),
            )
            for curve in self.curves
        ]
        plot = render_curves(
            grid,
            series,
            title=(
                "Reproduced Figure 2: discovery probability vs time "
                f"({self.config.inquiry_window_seconds:g}s inquiry / "
                f"{self.config.cycle_period_seconds:g}s cycle, train A)"
            ),
        )
        window = self.config.inquiry_window_seconds
        cycle = self.config.cycle_period_seconds
        landmarks = render_table(
            ["slaves", f"by {window:g}s (window 1)", f"by {cycle + window:g}s (window 2)",
             f"by {2 * cycle + window:g}s (window 3)", "ever"],
            [
                [
                    curve.slave_count,
                    f"{curve.probability_by(window):.3f}",
                    f"{curve.probability_by(cycle + window):.3f}",
                    f"{curve.probability_by(2 * cycle + window):.3f}",
                    f"{curve.cdf.completion_fraction:.3f}",
                ]
                for curve in self.curves
            ],
            title="Discovery probability landmarks "
            "(paper: ~0.9 by window 1 for 10 slaves; 1.0 within two cycles)",
        )
        return plot + "\n\n" + landmarks


def cell_config(config: Figure2Config, slave_count: int) -> Figure2Config:
    """The single-population config a cache/seed cell is keyed by.

    A full Figure-2 run is a sweep over slave counts; every count gets
    its own digest (and hence its own seeds and cache cell), so a run
    over ``(2, 10)`` and a later run over ``(10, 20)`` share the
    ``n=10`` work.
    """
    return replace(config, slave_counts=(slave_count,))


def replication_payload(config: Figure2Config, replication: int, seed: int) -> dict:
    """One simulation run of a single-count cell (runner entry point)."""
    if len(config.slave_counts) != 1:
        raise ValueError(
            f"replication payload needs a single-count cell config, "
            f"got counts {config.slave_counts}"
        )
    slave_count = config.slave_counts[0]
    kernel = Kernel()
    rng = RandomStream(seed, "figure2", str(slave_count), str(replication))
    horizon = ticks_from_seconds(config.horizon_seconds)
    schedule = periodic_inquiry(
        window_ticks=ticks_from_seconds(config.inquiry_window_seconds),
        period_ticks=ticks_from_seconds(config.cycle_period_seconds),
        strategy=config.train_strategy,
    )
    master = InquiryProcedure(
        kernel, schedule, name="master", receiver_capture=config.receiver_capture
    )
    # Slaves "start listening on frequencies of train A": phases 0-15.
    devices = make_devices(slave_count, rng.child("devices"), phase_range=(0, 15))
    scan = ScanConfig.continuous(
        phase_mode=PhaseMode.TRAIN_LOCKED, response_mode=config.response_mode
    )
    batched = resolve_engine() == "batched"
    swarm = (
        InquiryScanSwarm(kernel, schedule, master.channel, config=scan, name="piconet")
        if batched
        else None
    )
    scanners: dict = {}
    for index, device in enumerate(devices):
        if swarm is not None:
            # Same per-slave child streams in the same creation order,
            # so a replication replays byte-identically on either
            # engine; the handle duck-types the scanner's stop().
            scanner = swarm.add_slave(
                address=device.address,
                rng=rng.child("slave", str(index)),
                clock=device.clock,
                base_phase=device.base_phase,
                horizon_tick=horizon,
                name=device.name,
            )
        else:
            scanner = InquiryScanner(
                kernel=kernel,
                address=device.address,
                schedule=schedule,
                channel=master.channel,
                rng=rng.child("slave", str(index)),
                config=scan,
                clock=device.clock,
                base_phase=device.base_phase,
                horizon_tick=horizon,
                name=device.name,
            )
        scanners[device.address] = scanner
        scanner.start()

    if config.enroll_discovered:
        # At each window's end the master pages and connects everything
        # it discovered; connected slaves leave inquiry scan.
        def on_discovered(packet, tick):
            window = schedule.windows.containing(tick)
            stop_at = window.end if window is not None else tick
            kernel.schedule_at(
                max(stop_at, kernel.now),
                lambda addr=packet.sender: scanners[addr].stop(),
                label="enroll",
            )

        master.on_discovered = on_discovered

    kernel.run_until(horizon)
    ticks = [master.discovery_tick(device.address) for device in devices]
    return {
        "ticks": ticks,
        "collisions": master.channel.stats.collision_events,
        "blocked": master.responses_blocked,
    }


def run_replication(
    config: Figure2Config, slave_count: int, replication: int
) -> dict:
    """One replication with the exact seed the runner would derive."""
    cell = cell_config(config, slave_count)
    digest = config_digest(EXPERIMENT, cell)
    return replication_payload(
        cell, replication, trial_seed(EXPERIMENT, digest, replication)
    )


def run_figure2(
    config: Optional[Figure2Config] = None,
    runner: Optional[ExperimentRunner] = None,
) -> Figure2Result:
    """Run the full sweep over slave counts."""
    config = config if config is not None else Figure2Config()
    runner = runner if runner is not None else ExperimentRunner()
    result = Figure2Result(config=config)
    for slave_count in config.slave_counts:
        payloads = runner.map_trials(
            EXPERIMENT,
            cell_config(config, slave_count),
            replication_payload,
            config.replications,
        )
        samples: list[Optional[float]] = []
        collisions = 0
        blocked = 0
        for payload in payloads:
            samples.extend(
                seconds_from_ticks(t) if t is not None else None
                for t in payload["ticks"]
            )
            collisions += payload["collisions"]
            blocked += payload["blocked"]
        result.curves.append(
            Figure2Curve(
                slave_count=slave_count,
                cdf=EmpiricalCDF.from_samples(samples),
                collisions=collisions,
                blocked_responses=blocked,
            )
        )
    return result
