"""Experiment `serving`: the other half of the §5 duty cycle (extension).

§5 fixes 11.56 s of every 15.4 s cycle for "serving the slaves
applications" without quantifying what the slaves get.  This harness
measures it: per-slave goodput and application-message latency as the
piconet fills toward its seven-slave limit, under the paper's schedule.

The workload is the service BIPS itself provides: pushing a navigation
answer (a room path rendered for the handheld, ~500 bytes) to each
connected slave once per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.stats import Summary, summarize
from repro.analysis.tables import render_table
from repro.bluetooth.link import RoundRobinLinkScheduler
from repro.core.scheduler import MasterSchedulingPolicy


@dataclass(frozen=True)
class ServingConfig:
    """Parameters of the serving-capacity experiment."""

    slave_counts: tuple[int, ...] = (1, 2, 3, 5, 7)
    cycles: int = 40
    message_bytes: int = 500
    policy: MasterSchedulingPolicy = field(default_factory=MasterSchedulingPolicy)

    def __post_init__(self) -> None:
        if not self.slave_counts or any(n < 1 or n > 7 for n in self.slave_counts):
            raise ValueError(f"invalid slave counts: {self.slave_counts}")
        if self.cycles <= 0:
            raise ValueError(f"cycles must be positive: {self.cycles}")
        if self.message_bytes <= 0:
            raise ValueError(f"message size must be positive: {self.message_bytes}")


@dataclass(frozen=True)
class ServingPoint:
    """Measurements for one occupancy level."""

    slaves: int
    goodput_bytes_per_second: float
    message_latency: Summary  # seconds
    messages_delivered: int
    messages_pending: int
    #: Fraction of poll rounds that carried payload (the rest are
    #: POLL/NULL keep-alives).
    payload_fraction: float


@dataclass
class ServingResult:
    """All occupancy levels, with rendering."""

    config: ServingConfig
    points: list[ServingPoint] = field(default_factory=list)

    def point_for(self, slaves: int) -> ServingPoint:
        """Find one occupancy level."""
        for point in self.points:
            if point.slaves == slaves:
                return point
        raise KeyError(f"no point for {slaves} slaves")

    def render(self) -> str:
        """The serving-capacity table."""
        rows = [
            [
                point.slaves,
                f"{point.goodput_bytes_per_second:.0f} B/s",
                f"{point.message_latency.mean:.2f}s",
                f"{point.message_latency.maximum:.2f}s",
                f"{point.messages_delivered}/{point.messages_delivered + point.messages_pending}",
                f"{point.payload_fraction * 100:.1f}%",
            ]
            for point in self.points
        ]
        policy = self.config.policy
        return render_table(
            ["slaves", "per-slave goodput", "mean msg latency", "max",
             "delivered", "payload polls"],
            rows,
            title=(
                f"Serving capacity under the §5 schedule "
                f"({policy.serving_window_seconds:.2f}s serving per "
                f"{policy.operational_cycle_seconds:.1f}s cycle, "
                f"{self.config.message_bytes}B messages, "
                f"{self.config.cycles} cycles)"
            ),
        )


def run_occupancy(config: ServingConfig, slaves: int) -> ServingPoint:
    """Simulate ``cycles`` duty cycles at one occupancy level."""
    policy = config.policy
    scheduler = RoundRobinLinkScheduler()
    slave_ids = [f"slave-{index}" for index in range(slaves)]
    for slave_id in slave_ids:
        scheduler.attach(slave_id)

    cycle_ticks = policy.operational_cycle_ticks
    inquiry_ticks = policy.inquiry_window_ticks
    for cycle in range(config.cycles):
        cycle_start = cycle * cycle_ticks
        serving_start = cycle_start + inquiry_ticks
        serving_end = cycle_start + cycle_ticks
        # The application pushes one message per slave per cycle at the
        # start of the serving phase (e.g. a refreshed navigation path).
        for slave_id in slave_ids:
            scheduler.enqueue(slave_id, config.message_bytes, serving_start)
        scheduler.serve_window(serving_start, serving_end)

    delivered = scheduler.delivered_messages()
    latencies = [m.latency_seconds for m in delivered if m.latency_seconds is not None]
    pending = sum(len(scheduler.state_of(s).queue) for s in slave_ids)
    total_polls = sum(scheduler.state_of(s).polls for s in slave_ids)
    idle_polls = sum(scheduler.state_of(s).idle_polls for s in slave_ids)
    payload_fraction = (
        (total_polls - idle_polls) / total_polls if total_polls else 0.0
    )
    return ServingPoint(
        slaves=slaves,
        goodput_bytes_per_second=scheduler.per_slave_goodput_bytes_per_second(
            policy.serving_window_seconds, policy.operational_cycle_seconds
        ),
        message_latency=summarize(latencies) if latencies else summarize([0.0]),
        messages_delivered=len(delivered),
        messages_pending=pending,
        payload_fraction=payload_fraction,
    )


def run_serving(config: Optional[ServingConfig] = None) -> ServingResult:
    """Run the occupancy sweep."""
    config = config if config is not None else ServingConfig()
    result = ServingResult(config=config)
    for slaves in config.slave_counts:
        result.points.append(run_occupancy(config, slaves))
    return result
