"""Harnesses regenerating every result in the paper's evaluation.

* ``table1`` — the §4.1 discovery-time table (hardware experiment)
* ``figure2`` — the §4.2 multi-slave discovery-probability curves
* ``section5`` — the scheduling-policy numbers of the conclusions
* ``e2e`` — the full BIPS system under walking users (extension)
* ``sweep`` — ablations over the modelling choices
"""

from .duty_cycle import Section5Config, Section5Result, run_section5
from .e2e import E2EConfig, E2EResult, run_e2e
from .figure2 import Figure2Config, Figure2Curve, Figure2Result, run_figure2
from .page_latency import (
    PageLatencyCase,
    PageLatencyConfig,
    PageLatencyResult,
    run_page_latency,
)
from .policies import (
    PolicyCase,
    PolicyComparisonConfig,
    PolicyComparisonResult,
    PolicyOutcome,
    run_policy_comparison,
)
from .scalability import (
    ScalabilityConfig,
    ScalabilityPoint,
    ScalabilityResult,
    run_scalability,
)
from .serving import ServingConfig, ServingPoint, ServingResult, run_serving
from .sweep import (
    SweepResult,
    SweepRow,
    run_all_sweeps,
    sweep_figure2_contention,
    sweep_inquiry_window,
    sweep_table1_backoff_reentry,
    sweep_table1_phase_mode,
    sweep_table1_scan_interleaving,
)
from .table1 import Table1Config, Table1Result, Trial, run_table1

__all__ = [
    "Section5Config",
    "Section5Result",
    "run_section5",
    "E2EConfig",
    "E2EResult",
    "run_e2e",
    "Figure2Config",
    "Figure2Curve",
    "Figure2Result",
    "run_figure2",
    "PageLatencyCase",
    "PageLatencyConfig",
    "PageLatencyResult",
    "run_page_latency",
    "PolicyCase",
    "PolicyComparisonConfig",
    "PolicyComparisonResult",
    "PolicyOutcome",
    "run_policy_comparison",
    "ScalabilityConfig",
    "ScalabilityPoint",
    "ScalabilityResult",
    "run_scalability",
    "ServingConfig",
    "ServingPoint",
    "ServingResult",
    "run_serving",
    "SweepResult",
    "SweepRow",
    "run_all_sweeps",
    "sweep_figure2_contention",
    "sweep_inquiry_window",
    "sweep_table1_backoff_reentry",
    "sweep_table1_phase_mode",
    "sweep_table1_scan_interleaving",
    "Table1Config",
    "Table1Result",
    "Trial",
    "run_table1",
]
