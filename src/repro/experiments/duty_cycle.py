"""Experiment `section5`: the scheduling-policy numbers of §5.

The paper's conclusions rest on three quantities:

1. **Discovery coverage** — with a 3.84 s inquiry window (one full
   2.56 s train dwell + 1.28 s on the second train) and 20 slaves in
   coverage, ≈95 % of the slaves are discovered: 50 % of the slaves
   share the master's starting train and are fully discovered; ≈90 % of
   the other half are caught in the remaining 1.28 s.
2. **Crossing time** — a walking user (mean 1.3 m/s) crosses the ≈20 m
   piconet in ≈15.4 s, which bounds the operational cycle.
3. **Tracking load** — 3.84 s / 15.4 s ≈ 24 % of the cycle.

This harness measures (1) with the full baseband simulation and
computes (2) and (3) from the mobility model, then renders a
paper-vs-measured comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping, Optional

from repro.analysis.stats import proportion_ci95
from repro.analysis.tables import render_comparison
from repro.bluetooth.device import make_devices
from repro.bluetooth.hopping import Train, TrainStrategy, periodic_inquiry
from repro.bluetooth.inquiry import InquiryProcedure
from repro.bluetooth.scan import InquiryScanner, PhaseMode, ResponseMode, ScanConfig
from repro.mobility.residence import crossing_time_seconds, tracking_load_fraction
from repro.mobility.speeds import MEAN_WALKING_SPEED_MPS
from repro.runner.executor import ExperimentRunner
from repro.runner.seeding import config_digest, trial_seed
from repro.sim.clock import ticks_from_seconds
from repro.sim.kernel import Kernel
from repro.sim.rng import RandomStream

#: Runner experiment name; part of every replication's seed derivation.
EXPERIMENT = "section5"

#: The paper's §5 claims (read-only: worker processes import this module).
PAPER_REFERENCE: Mapping[str, float] = MappingProxyType(
    {
        "discovered_fraction": 0.95,
        "crossing_seconds": 15.4,
        "tracking_load": 0.24,
    }
)


@dataclass(frozen=True)
class Section5Config:
    """Parameters of the policy experiment."""

    slave_count: int = 20
    replications: int = 100
    seed: int = 20031003
    inquiry_window_seconds: float = 3.84
    coverage_diameter_m: float = 20.0
    mean_walking_speed_mps: float = MEAN_WALKING_SPEED_MPS

    def __post_init__(self) -> None:
        if self.slave_count <= 0:
            raise ValueError(f"slave count must be positive: {self.slave_count}")
        if self.replications <= 0:
            raise ValueError(f"replications must be positive: {self.replications}")
        if self.inquiry_window_seconds <= 0:
            raise ValueError(f"window must be positive: {self.inquiry_window_seconds}")


@dataclass
class Section5Result:
    """Measured §5 quantities."""

    config: Section5Config
    discovered: int
    total_slaves: int
    crossing_seconds: float
    tracking_load: float

    @property
    def discovered_fraction(self) -> float:
        """Fraction of in-coverage slaves discovered in one window."""
        return self.discovered / self.total_slaves

    @property
    def discovered_ci95(self) -> tuple[float, float]:
        """Wilson interval on the discovery fraction."""
        return proportion_ci95(self.discovered, self.total_slaves)

    def render(self) -> str:
        """Measured-vs-paper comparison table."""
        low, high = self.discovered_ci95
        table = render_comparison(
            "Reproduced §5 policy numbers",
            [
                (
                    f"discovered fraction (20 slaves, "
                    f"{self.config.inquiry_window_seconds:g}s window)",
                    self.discovered_fraction,
                    PAPER_REFERENCE["discovered_fraction"],
                ),
                ("piconet crossing time (s)", self.crossing_seconds,
                 PAPER_REFERENCE["crossing_seconds"]),
                ("tracking load fraction", self.tracking_load,
                 PAPER_REFERENCE["tracking_load"]),
            ],
        )
        return table + f"\n(discovery fraction 95% CI: [{low:.3f}, {high:.3f}])"


def window_payload(config: Section5Config, replication: int, seed: int) -> dict:
    """One 3.84 s inquiry window over ``slave_count`` slaves (runner
    entry point).

    Slaves are in plain continuous inquiry scan with uniformly random
    phases over the *whole* sequence (a random mix of the two trains, as
    §5 assumes).
    """
    kernel = Kernel()
    rng = RandomStream(seed, "section5", str(replication))
    window_ticks = ticks_from_seconds(config.inquiry_window_seconds)
    start_train = Train.A if rng.random() < 0.5 else Train.B
    schedule = periodic_inquiry(
        window_ticks=window_ticks,
        period_ticks=window_ticks,
        strategy=TrainStrategy.ALTERNATE,
        start_train=start_train,
        count=1,
    )
    master = InquiryProcedure(kernel, schedule, name="master")
    devices = make_devices(config.slave_count, rng.child("devices"))
    scan = ScanConfig.continuous(
        phase_mode=PhaseMode.SEQUENCE, response_mode=ResponseMode.CONTINUOUS
    )
    for index, device in enumerate(devices):
        InquiryScanner(
            kernel=kernel,
            address=device.address,
            schedule=schedule,
            channel=master.channel,
            rng=rng.child("slave", str(index)),
            config=scan,
            clock=device.clock,
            base_phase=device.base_phase,
            horizon_tick=window_ticks,
            name=device.name,
        ).start()
    kernel.run_until(window_ticks)
    return {"found": master.discovered_count, "count": config.slave_count}


def run_discovery_window(
    config: Section5Config, replication: int
) -> tuple[int, int]:
    """One window with the exact seed the runner would derive for it.

    Returns (discovered, total).
    """
    digest = config_digest(EXPERIMENT, config)
    payload = window_payload(
        config, replication, trial_seed(EXPERIMENT, digest, replication)
    )
    return payload["found"], payload["count"]


def run_section5(
    config: Optional[Section5Config] = None,
    runner: Optional[ExperimentRunner] = None,
) -> Section5Result:
    """Measure all three §5 quantities."""
    config = config if config is not None else Section5Config()
    runner = runner if runner is not None else ExperimentRunner()
    payloads = runner.map_trials(
        EXPERIMENT, config, window_payload, config.replications
    )
    discovered = sum(payload["found"] for payload in payloads)
    total = sum(payload["count"] for payload in payloads)
    crossing = crossing_time_seconds(
        config.coverage_diameter_m, config.mean_walking_speed_mps
    )
    load = tracking_load_fraction(config.inquiry_window_seconds, crossing)
    return Section5Result(
        config=config,
        discovered=discovered,
        total_slaves=total,
        crossing_seconds=crossing,
        tracking_load=load,
    )
