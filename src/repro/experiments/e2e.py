"""Experiment `bips-e2e`: the full system under walking users.

The paper describes BIPS's intended behaviour (§2) but publishes no
end-to-end measurements; this harness supplies them for the
reproduction: deploy the academic-department floor plan, run every
workstation on the §5 schedule, walk N users through random routes, and
measure what a user of the service experiences:

* tracking accuracy — fraction of time the central database's room
  matches ground truth;
* detection latency — room entry → database update (bounded by the
  15.4 s operational cycle plus LAN latency);
* detection rate — fraction of room changes ever noticed;
* LAN load — presence deltas per workstation per cycle (the paper's
  motivation for delta reporting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Optional

from repro.analysis.tables import render_table
from repro.building.layouts import academic_department
from repro.core.config import BIPSConfig
from repro.core.simulation import BIPSSimulation, TrackingReport
from repro.faults import FaultPlan, profile_named
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.flight import FlightRecorder
    from repro.obs.profiling import Profiler
    from repro.obs.tracing import SpanTracer


@dataclass(frozen=True)
class E2EConfig:
    """Parameters of the end-to-end run."""

    user_count: int = 8
    hops_per_user: int = 6
    duration_seconds: float = 600.0
    seed: int = 20031004
    miss_threshold: int = 2
    lan_loss_probability: float = 0.0
    #: Fault profile name (``repro.faults.PROFILES``): LAN faults,
    #: workstation crashes, and server brownouts for this run.
    faults: str = "none"
    fault_seed: int = 0
    #: Soft-state refresh period forwarded to the workstations; chaos
    #: runs enable it so lost deltas (and post-crash staleness) heal.
    refresh_interval_cycles: int = 0
    #: Staleness horizon forwarded to the server (0 = no marking).
    staleness_horizon_seconds: float = 0.0

    #: Kept out of the digest at their defaults so pre-fault configs
    #: keep their historical trial seeds (see ``runner.seeding``).
    DIGEST_OMIT_IF_DEFAULT: ClassVar[tuple[str, ...]] = (
        "faults",
        "fault_seed",
        "refresh_interval_cycles",
        "staleness_horizon_seconds",
    )
    #: Fault fields never shift the *seeding* digest: a fault plan
    #: draws only from its own seed, so a chaos run degrades the very
    #: same trials the clean run computes (see ``runner.seeding``).
    SEED_DIGEST_OMIT: ClassVar[tuple[str, ...]] = ("faults", "fault_seed")

    def __post_init__(self) -> None:
        if self.user_count <= 0:
            raise ValueError(f"user count must be positive: {self.user_count}")
        if self.duration_seconds <= 0:
            raise ValueError(f"duration must be positive: {self.duration_seconds}")
        profile_named(self.faults)  # unknown profile names fail fast

    def fault_plan(self) -> Optional[FaultPlan]:
        """The bound fault plan, or None for the ``none`` profile."""
        plan = FaultPlan.named(self.faults, self.fault_seed)
        return None if plan.is_noop else plan


@dataclass
class E2EResult:
    """What the run produced."""

    config: E2EConfig
    report: TrackingReport
    presence_updates: int
    lan_messages: int
    lan_dropped: int
    queries_ok: int
    queries_total: int

    @property
    def updates_per_user_minute(self) -> float:
        """Presence deltas per user per simulated minute."""
        minutes = self.config.duration_seconds / 60.0
        return self.presence_updates / (self.config.user_count * minutes)

    def render(self) -> str:
        """Summary table + per-user report."""
        latency = self.report.mean_detection_latency_seconds
        table = render_table(
            ["metric", "value"],
            [
                ["users walking", self.config.user_count],
                ["simulated time", f"{self.config.duration_seconds:.0f}s"],
                ["mean tracking accuracy", f"{self.report.mean_accuracy * 100:.1f}%"],
                [
                    "mean detection latency",
                    f"{latency:.1f}s" if latency is not None else "n/a",
                ],
                ["presence updates on LAN", self.presence_updates],
                ["updates per user-minute", f"{self.updates_per_user_minute:.2f}"],
                ["LAN messages (total/dropped)", f"{self.lan_messages}/{self.lan_dropped}"],
                ["location queries answered", f"{self.queries_ok}/{self.queries_total}"],
            ],
            title="End-to-end BIPS run (academic department, §5 schedule)",
        )
        return table + "\n\n" + self.report.describe()


def run_e2e(
    config: Optional[E2EConfig] = None,
    metrics: Optional[MetricsRegistry] = None,
    spans: Optional["SpanTracer"] = None,
    profiler: Optional["Profiler"] = None,
    flight: Optional["FlightRecorder"] = None,
) -> E2EResult:
    """Build, populate, and run the full system.

    With a :class:`MetricsRegistry`, the whole pipeline (kernel, radio,
    LAN, server) exports into it and end-of-run gauges are folded in
    before returning.  ``spans``/``profiler``/``flight`` thread the
    observability instruments through the simulation (``bips trace``).
    """
    config = config if config is not None else E2EConfig()
    sim = BIPSSimulation(
        plan=academic_department(),
        config=BIPSConfig(
            seed=config.seed,
            miss_threshold=config.miss_threshold,
            lan_loss_probability=config.lan_loss_probability,
            refresh_interval_cycles=config.refresh_interval_cycles,
            staleness_horizon_seconds=config.staleness_horizon_seconds,
        ),
        metrics=metrics,
        faults=config.fault_plan(),
        spans=spans,
        profiler=profiler,
        flight=flight,
    )
    rooms = sim.plan.room_ids()
    room_rng = sim.rng.child("e2e-start-rooms")
    usernames = []
    for index in range(config.user_count):
        userid = f"u-{index:03d}"
        username = f"User{index:03d}"
        usernames.append(username)
        sim.add_user(userid, username)
        sim.login(userid)
        start_room = room_rng.choice(rooms)
        # Stagger walk starts through the first minute.
        sim.walk(
            userid,
            start_room=start_room,
            hops=config.hops_per_user,
            start_at_seconds=room_rng.uniform(0.0, 60.0),
        )
    sim.run(until_seconds=config.duration_seconds)

    # Everybody asks the server where everybody else is, exercising the
    # query path after the system has been tracking for a while.
    queries_ok = 0
    queries_total = 0
    for index in range(config.user_count):
        userid = f"u-{index:03d}"
        target = usernames[(index + 1) % len(usernames)]
        queries_total += 1
        room = sim.server.locate(userid, target)
        if room is not None:
            queries_ok += 1

    if metrics is not None:
        sim._finalize_metrics()
    return E2EResult(
        config=config,
        report=sim.tracking_report(),
        presence_updates=sim.server.presence_updates_received,
        lan_messages=sim.lan.stats.sent,
        lan_dropped=sim.lan.stats.dropped,
        queries_ok=queries_ok,
        queries_total=queries_total,
    )
