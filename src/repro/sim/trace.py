"""Event tracing for simulations.

Tracing is optional and off by default (:class:`NullTracer`).  When
enabled, components record ``(tick, category, message)`` tuples that can
be dumped for debugging or asserted on in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional

from .clock import seconds_from_ticks


@dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    tick: int
    category: str
    message: str

    @property
    def seconds(self) -> float:
        """Event time in seconds."""
        return seconds_from_ticks(self.tick)

    def format(self) -> str:
        """Human-readable single-line rendering."""
        return f"[{self.seconds:12.6f}s] {self.category:<12} {self.message}"


class Tracer:
    """Records simulation events in memory, optionally filtered."""

    def __init__(
        self,
        categories: Optional[Iterable[str]] = None,
        sink: Optional[Callable[[TraceRecord], None]] = None,
        max_records: int = 1_000_000,
    ) -> None:
        self.records: list[TraceRecord] = []
        self._categories = set(categories) if categories is not None else None
        self._sink = sink
        self._max_records = max_records
        self.dropped = 0

    @property
    def enabled(self) -> bool:
        """Whether this tracer records anything at all."""
        return True

    def record(self, tick: int, category: str, message: str) -> None:
        """Record one event if its category passes the filter."""
        if self._categories is not None and category not in self._categories:
            return
        rec = TraceRecord(tick, category, message)
        if len(self.records) >= self._max_records:
            self.dropped += 1
        else:
            self.records.append(rec)
        if self._sink is not None:
            self._sink(rec)

    def by_category(self, category: str) -> Iterator[TraceRecord]:
        """Iterate records of one category."""
        return (rec for rec in self.records if rec.category == category)

    def between(self, start_tick: int, end_tick: int) -> Iterator[TraceRecord]:
        """Iterate records with ``start_tick <= tick < end_tick``."""
        return (rec for rec in self.records if start_tick <= rec.tick < end_tick)

    def dump(self) -> str:
        """All records as one formatted string."""
        return "\n".join(rec.format() for rec in self.records)

    def clear(self) -> None:
        """Discard all recorded events."""
        self.records.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.records)


class NullTracer(Tracer):
    """A tracer that drops everything; the default, to keep hot paths cheap."""

    def __init__(self) -> None:
        super().__init__(max_records=0)

    @property
    def enabled(self) -> bool:
        return False

    def record(self, tick: int, category: str, message: str) -> None:
        return None
