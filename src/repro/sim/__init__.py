"""Discrete-event simulation kernel used by every substrate.

Public surface:

* :class:`Kernel` — the event loop (integer-tick simulated time)
* :class:`Process` / :class:`Signal` — generator-based actors
* :class:`RandomStream` — named, seed-derived random streams
* :class:`Tracer` — optional event tracing
* tick/second conversion helpers (one tick = 312.5 µs)
"""

from .clock import (
    TICK_MICROSECONDS,
    TICK_SECONDS,
    TICKS_PER_SECOND,
    TICKS_PER_SLOT,
    SimClock,
    milliseconds_from_ticks,
    seconds_from_ticks,
    slots_from_ticks,
    ticks_from_milliseconds,
    ticks_from_seconds,
    ticks_from_slots,
)
from .errors import (
    CancelledError,
    DeadlockError,
    ProcessError,
    SchedulingError,
    SimulationError,
)
from .kernel import METRICS_FLUSH_INTERVAL, SCHEDULER_ENV_VAR, SCHEDULERS, EventHandle, Kernel
from .process import Process, Signal
from .rng import RandomStream, derive_seed
from .trace import NullTracer, TraceRecord, Tracer

__all__ = [
    "TICK_MICROSECONDS",
    "TICK_SECONDS",
    "TICKS_PER_SECOND",
    "TICKS_PER_SLOT",
    "SimClock",
    "milliseconds_from_ticks",
    "seconds_from_ticks",
    "slots_from_ticks",
    "ticks_from_milliseconds",
    "ticks_from_seconds",
    "ticks_from_slots",
    "CancelledError",
    "DeadlockError",
    "ProcessError",
    "SchedulingError",
    "SimulationError",
    "EventHandle",
    "Kernel",
    "METRICS_FLUSH_INTERVAL",
    "SCHEDULER_ENV_VAR",
    "SCHEDULERS",
    "Process",
    "Signal",
    "RandomStream",
    "derive_seed",
    "NullTracer",
    "TraceRecord",
    "Tracer",
]
