"""Seeded, named random-number streams.

Reproducibility discipline: every stochastic component draws from its own
named stream, derived deterministically from a single experiment seed.
Adding a new random component therefore never perturbs the draws seen by
existing components, and any run can be replayed exactly from its seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(root_seed: int, *names: str) -> int:
    """Derive a child seed from ``root_seed`` and a path of names.

    The derivation hashes the root seed together with the name path, so
    streams are independent and stable across runs and platforms.

    >>> derive_seed(42, "slave", "3") != derive_seed(42, "slave", "4")
    True
    >>> derive_seed(42, "slave", "3") == derive_seed(42, "slave", "3")
    True
    """
    digest = hashlib.sha256()
    digest.update(str(root_seed).encode("ascii"))
    for name in names:
        digest.update(b"/")
        digest.update(name.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class RandomStream:
    """A named pseudo-random stream with convenience draws.

    Wraps :class:`random.Random` so the rest of the code never touches the
    global random state.
    """

    def __init__(self, root_seed: int, *names: str) -> None:
        self.name = "/".join(names) if names else "<root>"
        self.seed = derive_seed(root_seed, *names)
        self._rng = random.Random(self.seed)

    def child(self, *names: str) -> "RandomStream":
        """Create an independent sub-stream under this stream's name."""
        stream = RandomStream.__new__(RandomStream)
        stream.name = f"{self.name}/{'/'.join(names)}"
        stream.seed = derive_seed(self.seed, *names)
        stream._rng = random.Random(stream.seed)
        return stream

    # -- draws -----------------------------------------------------------

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high]``."""
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._rng.randint(low, high)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._rng.random()

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly pick one element of ``items``."""
        return self._rng.choice(items)

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        """Sample ``k`` distinct elements of ``items``."""
        return self._rng.sample(items, k)

    def shuffle(self, items: list[T]) -> None:
        """Shuffle ``items`` in place."""
        self._rng.shuffle(items)

    def expovariate(self, rate: float) -> float:
        """Exponential variate with the given rate (1/mean)."""
        return self._rng.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal variate."""
        return self._rng.gauss(mu, sigma)

    def triangular(self, low: float, high: float, mode: float) -> float:
        """Triangular variate."""
        return self._rng.triangular(low, high, mode)

    def backoff_slots(self, max_slots: int = 1023) -> int:
        """Draw a Bluetooth inquiry-response backoff: uniform 0..max slots."""
        return self._rng.randint(0, max_slots)

    def permutation(self, n: int) -> list[int]:
        """A uniformly random permutation of ``range(n)``."""
        values = list(range(n))
        self._rng.shuffle(values)
        return values

    def iter_uniform(self, low: float, high: float) -> Iterator[float]:
        """Endless iterator of uniform draws (useful for workloads)."""
        while True:
            yield self._rng.uniform(low, high)

    def __repr__(self) -> str:
        return f"RandomStream(name={self.name!r}, seed={self.seed})"
