"""The discrete-event simulation kernel.

A minimal but complete event-queue kernel: callbacks are scheduled at
integer tick times, fire in (time, insertion-order) order, and may
schedule further callbacks.  Generator-based processes are layered on
top in :mod:`repro.sim.process`.

Fast-path design (see docs/performance.md):

* Queue entries are plain ``(time, seq, payload)`` tuples so ordering
  is resolved by C-level tuple comparison — ``seq`` is unique, so the
  payload is never compared.  The payload is the bare callback on the
  fast path; an :class:`EventHandle` is allocated only when the caller
  needs cancellation (``schedule_at``/``schedule``) or a traced label.
* Cancellation is a tombstone: the entry stays queued and is skipped
  when it surfaces.  A live ``pending`` counter keeps
  :attr:`Kernel.pending_events` O(1), and the queue is compacted when
  tombstones outnumber live entries.
* Metrics are batched: ``sim.events_fired`` / ``sim.queue_depth`` are
  flushed every :data:`METRICS_FLUSH_INTERVAL` events and at every
  ``run_until``/``step`` boundary, so the per-event cost is two branch
  checks instead of two instrument updates.
* ``run_until`` peeks at the queue head and never pops an event beyond
  the target tick, so crossing a boundary does not pay a pop + re-push.

Two schedulers share this machinery and produce byte-identical event
order (asserted by ``tests/sim/test_scheduler_equivalence.py``):

* ``"heap"`` (default) — a binary heap of entry tuples;
* ``"calendar"`` — a calendar queue with one bucket per tick, which
  exploits the fact that Bluetooth traffic is slot-aligned (625 µs
  slots = 2 ticks): most events land on a small set of recurring
  ticks, so ordering within a bucket is free (appends happen in
  ``seq`` order) and the heap only orders *distinct* ticks.

The default can be overridden per process with the
``BIPS_SIM_SCHEDULER`` environment variable, which worker processes
inherit — results are identical either way, so the switch is purely a
performance knob.
"""

from __future__ import annotations

import heapq
import logging
import os
from typing import TYPE_CHECKING, Any, Callable, Optional, Union

from .clock import SimClock, seconds_from_ticks
from .errors import DeadlockError, SchedulingError
from .hotpath import hot_path
from .trace import NullTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a layering cycle
    from repro.obs.metrics import Counter, Gauge, MetricsRegistry
    from repro.obs.profiling import Profiler
    from repro.obs.tracing import SpanTracer

logger = logging.getLogger(__name__)

Callback = Callable[[], Any]

#: Environment variable that selects the default scheduler; worker
#: processes inherit it, so a parallel run can be flipped wholesale.
SCHEDULER_ENV_VAR = "BIPS_SIM_SCHEDULER"

#: The recognised scheduler implementations.
SCHEDULERS = ("heap", "calendar")

#: Events between metric flushes; also flushed at run/step boundaries.
METRICS_FLUSH_INTERVAL = 4096

_FLUSH_MASK = METRICS_FLUSH_INTERVAL - 1

#: Tombstone count below which compaction is never attempted.
_COMPACT_MIN_TOMBSTONES = 64


class EventHandle:
    """A cancellable handle to a scheduled event.

    Cancellation is lazy: the queue entry stays put but is skipped when
    it reaches the front, which keeps cancellation O(1).  The owning
    kernel keeps exact live/tombstone counters, so cancellation also
    notifies it.
    """

    __slots__ = ("time", "seq", "callback", "label", "cancelled", "_kernel")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callback,
        label: str,
        kernel: Optional["Kernel"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback: Optional[Callback] = callback
        self.label = label
        self.cancelled = False
        self._kernel = kernel

    def cancel(self) -> None:
        """Cancel the event; a cancelled event never fires."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.callback is None:
            return  # already fired; nothing queued to tombstone
        self.callback = None  # drop references promptly
        if self._kernel is not None:
            self._kernel._note_cancelled()

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not cancelled or fired."""
        return not self.cancelled and self.callback is not None

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time}, label={self.label!r}, {state})"


#: A queue entry.  The payload is the bare callback on the fast path
#: and an :class:`EventHandle` for cancellable/labelled events; ``seq``
#: is unique so tuple comparison never reaches the payload.
Entry = tuple[int, int, Union[Callback, EventHandle]]


class Kernel:
    """Discrete-event simulator core.

    Typical use::

        kernel = Kernel()
        kernel.schedule(100, machine.on_timer)
        kernel.run_until(1000)

    Pass a :class:`~repro.obs.metrics.MetricsRegistry` to export kernel
    health (events processed, queue depth) alongside the rest of the
    pipeline's telemetry; ``scheduler`` picks the event-queue
    implementation (see module docstring) without changing any result.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional["MetricsRegistry"] = None,
        scheduler: Optional[str] = None,
        spans: Optional["SpanTracer"] = None,
        profiler: Optional["Profiler"] = None,
    ) -> None:
        if scheduler is None:
            scheduler = os.environ.get(SCHEDULER_ENV_VAR, "heap")
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; expected one of {SCHEDULERS}"
            )
        self.scheduler = scheduler
        self.clock = SimClock()
        self.tracer: Tracer = tracer if tracer is not None else NullTracer()
        # Span tracing rides the labelled-event path: attaching a
        # SpanTracer turns label retention on even without a legacy
        # tracer, so every labelled event can become a kernel span.
        self._spans = spans
        self._profiler = profiler
        self._trace_enabled = self.tracer.enabled or spans is not None
        self._seq = 0
        self._events_fired = 0
        self._pending = 0
        self._tombstones = 0
        self._running = False
        # Heap scheduler state: one heap of entry tuples.
        self._heap: list[Entry] = []
        # Calendar scheduler state: a bucket of entries per distinct
        # tick, plus a heap ordering the distinct ticks.  The bucket
        # being drained is held aside with a resume position so that
        # step()/run_until() interleave correctly.
        self._use_calendar = scheduler == "calendar"
        self._buckets: dict[int, list[Entry]] = {}
        self._bucket_ticks: list[int] = []
        self._active_bucket: Optional[list[Entry]] = None
        self._active_pos = 0
        self._m_events: Optional["Counter"] = (
            metrics.counter("sim.events_fired") if metrics else None
        )
        self._m_queue: Optional["Gauge"] = (
            metrics.gauge("sim.queue_depth") if metrics else None
        )
        self._m_reported = 0

    # -- scheduling ------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulated time in ticks."""
        return self.clock.now

    @property
    def now_seconds(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now_seconds

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far.

        Exact at ``run_until``/``step`` boundaries and at every metrics
        flush; inside a running batch it may lag by up to the batch
        remainder (the hot loop keeps its counter in a local).
        """
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the queue.

        Maintained as a live counter: O(1), exact across arbitrary
        schedule/cancel/fire churn whenever the kernel is between
        ``run_until``/``step`` calls.  Inside a running drain batch the
        count lags the in-flight batch (same cadence as the batched
        metrics) — cancellations are always reflected immediately.
        """
        return self._pending

    def _push(self, entry: Entry) -> None:
        if self._use_calendar:
            tick = entry[0]
            bucket = self._buckets.get(tick)
            if bucket is None:
                self._buckets[tick] = [entry]
                heapq.heappush(self._bucket_ticks, tick)
            else:
                bucket.append(entry)
        else:
            heapq.heappush(self._heap, entry)

    def post_at(self, tick: int, callback: Callback, label: str = "") -> None:
        """Schedule ``callback`` at absolute time ``tick``, fire-and-forget.

        The fast path: no :class:`EventHandle` is allocated unless the
        event is labelled *and* tracing is on, so use this for hot
        events that are never cancelled.  Semantics are otherwise
        identical to :meth:`schedule_at`.
        """
        if tick < self.clock._now:
            raise SchedulingError(
                f"cannot schedule {label or callback!r} at tick {tick}; "
                f"now is {self.clock._now}"
            )
        seq = self._seq
        payload: Union[Callback, EventHandle] = (
            EventHandle(tick, seq, callback, label, self)
            if label and self._trace_enabled
            else callback
        )
        if self._use_calendar:
            bucket = self._buckets.get(tick)
            if bucket is None:
                self._buckets[tick] = [(tick, seq, payload)]
                heapq.heappush(self._bucket_ticks, tick)
            else:
                bucket.append((tick, seq, payload))
        else:
            heapq.heappush(self._heap, (tick, seq, payload))
        self._seq = seq + 1
        self._pending += 1

    def post(self, delay: int, callback: Callback, label: str = "") -> None:
        """Schedule ``callback`` ``delay`` ticks from now, fire-and-forget.

        Body duplicates :meth:`post_at` minus the past-tick guard
        (``delay >= 0`` implies it): this is the hottest scheduling
        call, worth one call frame per event.
        """
        if delay < 0:
            raise SchedulingError(f"negative delay {delay} for {label or callback!r}")
        tick = self.clock._now + delay
        seq = self._seq
        payload: Union[Callback, EventHandle] = (
            EventHandle(tick, seq, callback, label, self)
            if label and self._trace_enabled
            else callback
        )
        if self._use_calendar:
            bucket = self._buckets.get(tick)
            if bucket is None:
                self._buckets[tick] = [(tick, seq, payload)]
                heapq.heappush(self._bucket_ticks, tick)
            else:
                bucket.append((tick, seq, payload))
        else:
            heapq.heappush(self._heap, (tick, seq, payload))
        self._seq = seq + 1
        self._pending += 1

    def schedule_at(self, tick: int, callback: Callback, label: str = "") -> EventHandle:
        """Schedule ``callback`` to fire at absolute time ``tick``.

        Scheduling at the current tick is allowed (fires after the events
        already queued for that tick); scheduling in the past is an error.
        Returns a cancellable :class:`EventHandle`; prefer
        :meth:`post_at` for events that never need one.
        """
        if tick < self.clock.now:
            raise SchedulingError(
                f"cannot schedule {label or callback!r} at tick {tick}; "
                f"now is {self.clock.now}"
            )
        handle = EventHandle(tick, self._seq, callback, label, self)
        self._push((tick, self._seq, handle))
        self._seq += 1
        self._pending += 1
        return handle

    def schedule(self, delay: int, callback: Callback, label: str = "") -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` ticks from now."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay} for {label or callback!r}")
        return self.schedule_at(self.clock.now + delay, callback, label)

    # -- tombstones ------------------------------------------------------

    def _note_cancelled(self) -> None:
        """Bookkeeping for a just-cancelled, still-queued event."""
        self._pending -= 1
        self._tombstones += 1
        # Compact when tombstones outnumber live entries, i.e. exceed
        # half the queue; the floor keeps small queues compaction-free.
        if (
            self._tombstones >= _COMPACT_MIN_TOMBSTONES
            and self._tombstones > self._pending
        ):
            self._compact()

    @staticmethod
    def _entry_live(entry: Entry) -> bool:
        payload = entry[2]
        if isinstance(payload, EventHandle):
            return payload.callback is not None
        return True

    def _compact(self) -> None:
        """Drop tombstoned entries from the queue in place.

        In-place mutation matters: the hot loops hold local aliases of
        the underlying containers.
        """
        if self._use_calendar:
            # The active bucket is being iterated by position; filtering
            # it would desynchronise the cursor, and its tombstones are
            # about to be skipped anyway.
            active = self._active_bucket
            for tick in sorted(self._buckets):
                bucket = self._buckets[tick]
                if bucket is not active:
                    bucket[:] = [e for e in bucket if self._entry_live(e)]
            dead_in_active = (
                sum(1 for e in active[self._active_pos:] if not self._entry_live(e))
                if active is not None
                else 0
            )
            self._tombstones = dead_in_active
        else:
            self._heap[:] = [e for e in self._heap if self._entry_live(e)]
            heapq.heapify(self._heap)
            self._tombstones = 0

    # -- metrics ---------------------------------------------------------

    def _flush_metrics(self) -> None:
        """Bring the kernel instruments up to date (batched hot path)."""
        if self._m_events is None:
            return
        delta = self._events_fired - self._m_reported
        if delta:
            self._m_events.inc(delta)
            self._m_reported = self._events_fired
        if self._m_queue is not None:
            self._m_queue.set(self._pending)

    def flush_metrics(self) -> None:
        """Publish everything the kernel has accounted to the registry.

        ``sim.events_fired`` / ``sim.queue_depth`` are flushed
        automatically every :data:`METRICS_FLUSH_INTERVAL` events and at
        every ``run_until``/``step``/``run_to_completion`` boundary, so
        registry reads at those points are already exact — this call
        adds nothing there.  It exists for reads from *inside* a
        callback: under ``step()`` or ``run_to_completion()`` (which
        account per event) it makes the registry exact mid-run; under a
        ``run_until`` drain the hot loop accumulates in a loop-local
        batch by design, so even a flushed read may lag by up to
        :data:`METRICS_FLUSH_INTERVAL` - 1 events until the boundary.
        """
        self._flush_metrics()

    # -- execution -------------------------------------------------------

    def _fire_entry(self, entry: Entry) -> None:
        """Fire one live entry (slow path shared by step())."""
        time = entry[0]
        payload = entry[2]
        if isinstance(payload, EventHandle):
            callback = payload.callback
            payload.callback = None
            label = payload.label
        else:
            callback = payload
            label = ""
        self.clock.advance_to(time)
        self._pending -= 1
        self._events_fired += 1
        assert callback is not None  # tombstones are filtered by callers
        if label and self._trace_enabled:
            self.tracer.record(time, "event", label)
            spans = self._spans
            if spans is not None:
                span = spans.begin(label, "kernel", time)
                prev = spans.push(span)
                try:
                    callback()
                finally:
                    spans.pop(prev)
                    spans.end(span, time)
                return
        callback()

    def _pop_next_live(self) -> Optional[Entry]:
        """Pop the next live entry, discarding tombstones."""
        if not self._use_calendar:
            heap = self._heap
            while heap:
                entry = heapq.heappop(heap)
                if self._entry_live(entry):
                    return entry
                self._tombstones -= 1
            return None
        while True:
            bucket = self._active_bucket
            if bucket is None:
                if not self._bucket_ticks:
                    return None
                tick = heapq.heappop(self._bucket_ticks)
                bucket = self._buckets.pop(tick)
                self._active_bucket = bucket
                self._active_pos = 0
            while self._active_pos < len(bucket):
                entry = bucket[self._active_pos]
                self._active_pos += 1
                if self._entry_live(entry):
                    return entry
                self._tombstones -= 1
            self._active_bucket = None

    def step(self) -> bool:
        """Fire the single next event.  Returns False if none remain."""
        entry = self._pop_next_live()
        if entry is None:
            self._flush_metrics()
            return False
        self._fire_entry(entry)
        self._flush_metrics()
        return True

    def run_until(self, tick: int, require_events: bool = False) -> None:
        """Run events until simulated time reaches ``tick``.

        Events scheduled exactly at ``tick`` fire; the clock finishes at
        ``tick`` even if the queue drains earlier (unless
        ``require_events`` demands live events the whole way, in which
        case draining early raises :class:`DeadlockError`).
        """
        if tick < self.clock.now:
            raise SchedulingError(
                f"run_until target {tick} is before now {self.clock.now}"
            )
        self._running = True
        profiler = self._profiler
        token = profiler.begin() if profiler is not None else 0.0
        try:
            if self._spans is not None:
                # Traced runs take a separate drain so the untraced hot
                # loops stay byte-identical (and overhead-free).
                self._drain_spans(tick)
            elif self._use_calendar:
                self._drain_calendar(tick)
            else:
                self._drain_heap(tick)
        finally:
            self._running = False
            self._flush_metrics()
            if profiler is not None:
                profiler.stop("sim.kernel", token)
        if require_events and self._pending == 0 and self.clock.now < tick:
            raise DeadlockError(
                f"event heap drained at {self.clock.now} before reaching {tick}"
            )
        self.clock.advance_to(tick)
        self._flush_metrics()

    @hot_path
    def _drain_heap(self, until: int) -> None:
        """Fire all events with ``time <= until`` from the binary heap.

        The hot loop: local aliases, tuple peeks, and batched counters.
        The head is *peeked* first, so an event beyond ``until`` is
        never popped and re-pushed.
        """
        heap = self._heap
        clock = self.clock
        pop = heapq.heappop
        handle_cls = EventHandle
        trace_on = self._trace_enabled
        tracer = self.tracer
        flush_mask = _FLUSH_MASK
        fired = 0
        try:
            while heap:
                entry = heap[0]
                time = entry[0]
                if time > until:
                    break
                pop(heap)
                payload = entry[2]
                if payload.__class__ is handle_cls:
                    callback = payload.callback
                    if callback is None:  # tombstone
                        self._tombstones -= 1
                        continue
                    payload.callback = None
                    clock._now = time
                    if trace_on and payload.label:
                        tracer.record(time, "event", payload.label)
                else:
                    callback = payload
                    clock._now = time
                fired += 1
                if not fired & flush_mask:
                    self._events_fired += METRICS_FLUSH_INTERVAL
                    self._pending -= METRICS_FLUSH_INTERVAL
                    self._flush_metrics()
                callback()
        finally:
            remainder = fired & flush_mask
            self._events_fired += remainder
            self._pending -= remainder

    @hot_path
    def _drain_calendar(self, until: int) -> None:
        """Fire all events with ``time <= until`` from the calendar queue.

        Mirrors :meth:`_drain_heap`; the bucket cursor is persisted per
        event so an exception (or an interleaved ``step()``) never
        re-fires or skips entries.
        """
        buckets = self._buckets
        ticks = self._bucket_ticks
        clock = self.clock
        pop = heapq.heappop
        handle_cls = EventHandle
        trace_on = self._trace_enabled
        tracer = self.tracer
        flush_mask = _FLUSH_MASK
        fired = 0
        pos = self._active_pos
        try:
            while True:
                bucket = self._active_bucket
                if bucket is None:
                    if not ticks:
                        break
                    tick = ticks[0]
                    if tick > until:
                        break
                    pop(ticks)
                    bucket = buckets.pop(tick)
                    self._active_bucket = bucket
                    pos = 0
                    clock._now = tick
                else:
                    pos = self._active_pos
                # A bucket never grows while draining: same-tick events
                # scheduled by a firing callback land in a *fresh* dict
                # bucket (this one was popped), picked up next iteration
                # in seq order.
                size = len(bucket)
                while pos < size:
                    entry = bucket[pos]
                    pos += 1
                    payload = entry[2]
                    if payload.__class__ is handle_cls:
                        callback = payload.callback
                        if callback is None:  # tombstone
                            self._tombstones -= 1
                            continue
                        payload.callback = None
                        if trace_on and payload.label:
                            tracer.record(entry[0], "event", payload.label)
                    else:
                        callback = payload
                    fired += 1
                    if not fired & flush_mask:
                        self._events_fired += METRICS_FLUSH_INTERVAL
                        self._pending -= METRICS_FLUSH_INTERVAL
                        self._active_pos = pos
                        self._flush_metrics()
                    callback()
                self._active_bucket = None
                self._active_pos = 0
                pos = 0
        finally:
            # Persist the cursor so an exception mid-bucket resumes
            # after the event that raised, never re-firing it.
            if self._active_bucket is not None:
                self._active_pos = pos
            remainder = fired & flush_mask
            self._events_fired += remainder
            self._pending -= remainder

    def _next_live_entry(self, until: int) -> Optional[Entry]:
        """Pop the next live entry with ``time <= until`` (peek first).

        Shared by both schedulers on the traced path, so heap and
        calendar runs fire — and therefore span — the exact same
        sequence.  Like the hot loops, the head is peeked before
        popping: an entry beyond ``until`` is never disturbed.
        """
        if not self._use_calendar:
            heap = self._heap
            while heap:
                if heap[0][0] > until:
                    return None
                entry = heapq.heappop(heap)
                if self._entry_live(entry):
                    return entry
                self._tombstones -= 1
            return None
        while True:
            bucket = self._active_bucket
            if bucket is None:
                ticks = self._bucket_ticks
                if not ticks or ticks[0] > until:
                    return None
                tick = heapq.heappop(ticks)
                bucket = self._buckets.pop(tick)
                self._active_bucket = bucket
                self._active_pos = 0
            while self._active_pos < len(bucket):
                entry = bucket[self._active_pos]
                self._active_pos += 1
                if self._entry_live(entry):
                    return entry
                self._tombstones -= 1
            self._active_bucket = None

    def _drain_spans(self, until: int) -> None:
        """Fire all events with ``time <= until``, wrapping each labelled
        event in a kernel span.

        The traced sibling of :meth:`_drain_heap` /
        :meth:`_drain_calendar`: same batched-metrics cadence, same
        finally-block remainder flush, but every labelled event becomes
        an ambient ``kernel``-category span for the duration of its
        callback, so spans opened inside the callback (bluetooth, LAN,
        core) parent to the dispatch that caused them.
        """
        spans = self._spans
        assert spans is not None
        clock = self.clock
        handle_cls = EventHandle
        legacy_on = self.tracer.enabled
        tracer = self.tracer
        flush_mask = _FLUSH_MASK
        fired = 0
        try:
            while True:
                entry = self._next_live_entry(until)
                if entry is None:
                    break
                time = entry[0]
                payload = entry[2]
                if payload.__class__ is handle_cls:
                    callback = payload.callback
                    payload.callback = None
                    label = payload.label
                else:
                    callback = payload
                    label = ""
                clock._now = time
                fired += 1
                if not fired & flush_mask:
                    self._events_fired += METRICS_FLUSH_INTERVAL
                    self._pending -= METRICS_FLUSH_INTERVAL
                    self._flush_metrics()
                assert callback is not None  # _next_live_entry skips tombstones
                if label:
                    if legacy_on:
                        tracer.record(time, "event", label)
                    span = spans.begin(label, "kernel", time)
                    prev = spans.push(span)
                    try:
                        callback()
                    finally:
                        spans.pop(prev)
                        spans.end(span, time)
                else:
                    callback()
        finally:
            remainder = fired & flush_mask
            self._events_fired += remainder
            self._pending -= remainder

    def run_until_seconds(self, seconds: float, require_events: bool = False) -> None:
        """Run events until simulated time reaches ``seconds``."""
        from .clock import ticks_from_seconds

        self.run_until(ticks_from_seconds(seconds), require_events=require_events)

    def run_to_completion(self, max_events: int = 10_000_000) -> None:
        """Run until the event queue is empty.

        Args:
            max_events: safety valve against runaway self-rescheduling
                loops; exceeding it raises :class:`DeadlockError`.
        """
        fired = 0
        while True:
            entry = self._pop_next_live()
            if entry is None:
                break
            self._fire_entry(entry)
            fired += 1
            if fired > max_events:
                self._flush_metrics()
                logger.error(
                    "runaway event loop: %d events without draining (t=%d)",
                    fired,
                    self.clock.now,
                )
                raise DeadlockError(
                    f"run_to_completion exceeded {max_events} events at "
                    f"t={self.clock.now} ({seconds_from_ticks(self.clock.now):.3f}s)"
                )
        self._flush_metrics()

    def __repr__(self) -> str:
        return (
            f"Kernel(now={self.clock.now}, pending={self.pending_events}, "
            f"fired={self._events_fired}, scheduler={self.scheduler!r})"
        )
