"""The discrete-event simulation kernel.

A minimal but complete event-heap kernel: callbacks are scheduled at
integer tick times, fire in (time, insertion-order) order, and may
schedule further callbacks.  Generator-based processes are layered on
top in :mod:`repro.sim.process`.
"""

from __future__ import annotations

import heapq
import logging
from typing import TYPE_CHECKING, Any, Callable, Optional

from .clock import SimClock, seconds_from_ticks
from .errors import DeadlockError, SchedulingError
from .trace import NullTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a layering cycle
    from repro.obs.metrics import MetricsRegistry

logger = logging.getLogger(__name__)

Callback = Callable[[], Any]


class EventHandle:
    """A cancellable handle to a scheduled event.

    Cancellation is lazy: the heap entry stays put but is skipped when it
    reaches the front, which keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "callback", "label", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callback, label: str) -> None:
        self.time = time
        self.seq = seq
        self.callback: Optional[Callback] = callback
        self.label = label
        self.cancelled = False

    def cancel(self) -> None:
        """Cancel the event; a cancelled event never fires."""
        self.cancelled = True
        self.callback = None  # drop references promptly

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not cancelled or fired."""
        return not self.cancelled and self.callback is not None

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time}, label={self.label!r}, {state})"


class Kernel:
    """Discrete-event simulator core.

    Typical use::

        kernel = Kernel()
        kernel.schedule(100, machine.on_timer)
        kernel.run_until(1000)

    Pass a :class:`~repro.obs.metrics.MetricsRegistry` to export kernel
    health (events processed, queue depth) alongside the rest of the
    pipeline's telemetry.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.clock = SimClock()
        self.tracer: Tracer = tracer if tracer is not None else NullTracer()
        self._heap: list[EventHandle] = []
        self._seq = 0
        self._events_fired = 0
        self._running = False
        self._m_events = metrics.counter("sim.events_fired") if metrics else None
        self._m_queue = metrics.gauge("sim.queue_depth") if metrics else None

    # -- scheduling ------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulated time in ticks."""
        return self.clock.now

    @property
    def now_seconds(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now_seconds

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the heap."""
        return sum(1 for handle in self._heap if handle.pending)

    def schedule_at(self, tick: int, callback: Callback, label: str = "") -> EventHandle:
        """Schedule ``callback`` to fire at absolute time ``tick``.

        Scheduling at the current tick is allowed (fires after the events
        already queued for that tick); scheduling in the past is an error.
        """
        if tick < self.clock.now:
            raise SchedulingError(
                f"cannot schedule {label or callback!r} at tick {tick}; "
                f"now is {self.clock.now}"
            )
        handle = EventHandle(tick, self._seq, callback, label)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def schedule(self, delay: int, callback: Callback, label: str = "") -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` ticks from now."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay} for {label or callback!r}")
        return self.schedule_at(self.clock.now + delay, callback, label)

    # -- execution -------------------------------------------------------

    def _pop_next(self) -> Optional[EventHandle]:
        """Pop the next live event, discarding cancelled entries."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.pending:
                return handle
        return None

    def _fire(self, handle: EventHandle) -> None:
        self.clock.advance_to(handle.time)
        callback = handle.callback
        handle.callback = None
        self._events_fired += 1
        if self._m_events is not None:
            self._m_events.inc()
        if self._m_queue is not None:
            self._m_queue.set(len(self._heap))
        if handle.label:
            self.tracer.record(handle.time, "event", handle.label)
        assert callback is not None  # guarded by _pop_next
        callback()

    def step(self) -> bool:
        """Fire the single next event.  Returns False if none remain."""
        handle = self._pop_next()
        if handle is None:
            return False
        self._fire(handle)
        return True

    def run_until(self, tick: int, require_events: bool = False) -> None:
        """Run events until simulated time reaches ``tick``.

        Events scheduled exactly at ``tick`` fire; the clock finishes at
        ``tick`` even if the heap drains earlier (unless
        ``require_events`` demands live events the whole way, in which
        case draining early raises :class:`DeadlockError`).
        """
        if tick < self.clock.now:
            raise SchedulingError(
                f"run_until target {tick} is before now {self.clock.now}"
            )
        self._running = True
        try:
            while True:
                handle = self._pop_next()
                if handle is None:
                    if require_events and self.clock.now < tick:
                        raise DeadlockError(
                            f"event heap drained at {self.clock.now} before "
                            f"reaching {tick}"
                        )
                    break
                if handle.time > tick:
                    # Not due yet: put it back and stop.
                    heapq.heappush(self._heap, handle)
                    break
                self._fire(handle)
        finally:
            self._running = False
        self.clock.advance_to(tick)

    def run_until_seconds(self, seconds: float, require_events: bool = False) -> None:
        """Run events until simulated time reaches ``seconds``."""
        from .clock import ticks_from_seconds

        self.run_until(ticks_from_seconds(seconds), require_events=require_events)

    def run_to_completion(self, max_events: int = 10_000_000) -> None:
        """Run until the event heap is empty.

        Args:
            max_events: safety valve against runaway self-rescheduling
                loops; exceeding it raises :class:`DeadlockError`.
        """
        fired = 0
        while self.step():
            fired += 1
            if fired > max_events:
                logger.error(
                    "runaway event loop: %d events without draining (t=%d)",
                    fired,
                    self.clock.now,
                )
                raise DeadlockError(
                    f"run_to_completion exceeded {max_events} events at "
                    f"t={self.clock.now} ({seconds_from_ticks(self.clock.now):.3f}s)"
                )

    def __repr__(self) -> str:
        return (
            f"Kernel(now={self.clock.now}, pending={self.pending_events}, "
            f"fired={self._events_fired})"
        )
