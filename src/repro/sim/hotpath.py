"""The ``@hot_path`` marker for allocation-audited functions.

Profiling (docs/performance.md) showed a handful of per-event functions
dominate wall time: the kernel drains, the inquiry hop schedule, radio
coverage queries, and LAN delivery.  Decorating one with
:func:`hot_path` declares "allocation here is a measured cost": the
deep linter's PERF001 rule then audits the function *and everything it
transitively calls* for avoidable per-call allocation (comprehensions,
f-strings, closures, ``**kwargs`` expansion).

The decorator itself is a pure identity function — it returns the
function object unchanged, adds no wrapper frame, and therefore costs
exactly zero at call time (``bips bench`` guards this).  The marker is
consumed statically: the linter reads the decoration from the AST and
never imports this module.
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable[..., object])

#: Dotted names of every function marked ``@hot_path``, in decoration
#: order.  Populated at import time only (append-only, deterministic),
#: so tooling that *does* run the code can enumerate the audited set.
HOT_PATH_REGISTRY: list[str] = []  # lint: disable=RUN001 -- import-time append-only marker registry, never mutated per-run


def hot_path(func: F) -> F:
    """Mark ``func`` for the PERF001 hot-path allocation audit.

    Identity decorator: no wrapper, no runtime overhead.
    """
    HOT_PATH_REGISTRY.append(f"{func.__module__}.{func.__qualname__}")
    return func
