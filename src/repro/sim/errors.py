"""Exception hierarchy for the simulation kernel.

Every error raised by :mod:`repro.sim` derives from :class:`SimulationError`
so callers can catch kernel problems without masking unrelated bugs.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulation-kernel errors."""


class SchedulingError(SimulationError):
    """An event was scheduled at an invalid time (e.g. in the past)."""


class CancelledError(SimulationError):
    """Raised inside a process when one of its pending waits is cancelled."""


class DeadlockError(SimulationError):
    """``run_until`` was asked to reach a time but the event heap drained.

    This is only an error when the caller explicitly demands progress via
    ``require_events=True``; normally an empty heap simply fast-forwards
    the clock.
    """


class ProcessError(SimulationError):
    """A simulation process raised; wraps the original exception."""

    def __init__(self, process_name: str, original: BaseException) -> None:
        super().__init__(f"process {process_name!r} failed: {original!r}")
        self.process_name = process_name
        self.original = original
