"""Generator-based simulation processes.

A process is a Python generator that yields *wait requests* to the
kernel: an integer tick delay, or a :class:`Signal` to block on.  This
gives sequential-looking code for inherently stateful protocol actors
(the BIPS workstation duty cycle, mobile-user walks, ...) without
callback spaghetti.

Example::

    def duty_cycle(kernel):
        while True:
            start_inquiry()
            yield ticks_from_seconds(3.84)
            stop_inquiry()
            yield ticks_from_seconds(11.56)

    Process(kernel, duty_cycle(kernel), name="master-0")
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Union

from .errors import CancelledError, ProcessError, SchedulingError
from .kernel import EventHandle, Kernel


class Signal:
    """A broadcast condition processes can wait on.

    ``fire(value)`` resumes every currently waiting process with
    ``value`` as the result of its ``yield``.  Signals are reusable:
    waiters that arrive after a fire block until the next fire.
    """

    def __init__(self, kernel: Kernel, name: str = "") -> None:
        self._kernel = kernel
        self.name = name
        self._waiters: list["Process"] = []
        self.fire_count = 0
        self._fire_label = f"signal:{name}"

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        self.fire_count += 1
        for process in waiters:
            # Resume via the kernel so wakeups are ordered events, not
            # re-entrant calls from whoever fired the signal.
            self._kernel.schedule(
                0, lambda p=process, v=value: p._resume(v), label=self._fire_label
            )
        return len(waiters)

    def _add_waiter(self, process: "Process") -> None:
        self._waiters.append(process)

    def _remove_waiter(self, process: "Process") -> None:
        if process in self._waiters:
            self._waiters.remove(process)

    @property
    def waiter_count(self) -> int:
        """Number of processes currently blocked on this signal."""
        return len(self._waiters)

    def __repr__(self) -> str:
        return f"Signal(name={self.name!r}, waiters={len(self._waiters)})"


WaitRequest = Union[int, Signal]
ProcessBody = Generator[WaitRequest, Any, Any]


class Process:
    """Drives a generator as a simulation process.

    The generator may yield:

    * ``int`` — sleep that many ticks;
    * :class:`Signal` — block until the signal fires; the fired value
      becomes the result of the yield.

    The process starts immediately (its first segment runs as a
    zero-delay event) and runs until the generator returns, raises, or
    :meth:`cancel` is called.
    """

    def __init__(self, kernel: Kernel, body: ProcessBody, name: str = "process") -> None:
        self._kernel = kernel
        self._body = body
        self.name = name
        self.finished = False
        self.failed: Optional[BaseException] = None
        self.result: Any = None
        self._cancelled = False
        self._pending_event: Optional[EventHandle] = None
        self._waiting_signal: Optional[Signal] = None
        self._wake_label = f"wake:{name}"
        self._pending_event = kernel.schedule(
            0, lambda: self._resume(None), label=f"start:{name}"
        )

    # -- lifecycle -------------------------------------------------------

    @property
    def alive(self) -> bool:
        """True while the process can still make progress."""
        return not self.finished and not self._cancelled

    def cancel(self) -> None:
        """Stop the process.

        If the generator is mid-wait it is closed (its ``finally``
        blocks run); further resumptions are ignored.
        """
        if self.finished or self._cancelled:
            return
        self._cancelled = True
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        if self._waiting_signal is not None:
            self._waiting_signal._remove_waiter(self)
            self._waiting_signal = None
        self._body.close()
        self.finished = True
        self.failed = CancelledError(f"process {self.name!r} cancelled")

    def _resume(self, value: Any) -> None:
        if self.finished or self._cancelled:
            return
        self._pending_event = None
        self._waiting_signal = None
        try:
            request = self._body.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            return
        except Exception as exc:  # noqa: BLE001 - wrapped and re-raised
            self.finished = True
            self.failed = exc
            raise ProcessError(self.name, exc) from exc
        self._handle_request(request)

    def _handle_request(self, request: WaitRequest) -> None:
        if isinstance(request, bool):
            # bool is an int subclass; yielding one is always a bug.
            raise SchedulingError(
                f"process {self.name!r} yielded a bool; yield ticks or a Signal"
            )
        if isinstance(request, int):
            if request < 0:
                raise SchedulingError(
                    f"process {self.name!r} yielded negative delay {request}"
                )
            self._pending_event = self._kernel.schedule(
                request, lambda: self._resume(None), label=self._wake_label
            )
        elif isinstance(request, Signal):
            self._waiting_signal = request
            request._add_waiter(self)
        else:
            raise SchedulingError(
                f"process {self.name!r} yielded {request!r}; "
                "yield an int tick delay or a Signal"
            )

    def __repr__(self) -> str:
        if self.finished:
            state = "failed" if self.failed else "finished"
        else:
            state = "running"
        return f"Process(name={self.name!r}, {state})"
