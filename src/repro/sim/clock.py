"""Simulated-time arithmetic.

All simulated time in this project is an integer number of *ticks*, where
one tick is a Bluetooth half-slot: 312.5 microseconds.  Using integers
keeps event ordering exact (no floating-point drift over millions of
slots) and makes slot/train arithmetic trivial.

The helpers here convert between ticks and human units.  They are the
single authority for the conversion factor; nothing else in the code
base hard-codes 312.5 µs.
"""

from __future__ import annotations

#: Number of ticks per simulated second.  One tick is 312.5 µs, the
#: period of the Bluetooth native clock (CLKN runs at 3.2 kHz).
TICKS_PER_SECOND = 3200

#: Duration of one tick in seconds.
TICK_SECONDS = 1.0 / TICKS_PER_SECOND

#: Duration of one tick in microseconds (312.5 µs).
TICK_MICROSECONDS = 312.5

#: Ticks per Bluetooth slot (625 µs).
TICKS_PER_SLOT = 2


def ticks_from_seconds(seconds: float) -> int:
    """Convert ``seconds`` to ticks, rounding to the nearest tick.

    >>> ticks_from_seconds(1.28)
    4096
    >>> ticks_from_seconds(0.01125)  # 11.25 ms scan window
    36
    """
    return round(seconds * TICKS_PER_SECOND)


def seconds_from_ticks(ticks: int) -> float:
    """Convert ``ticks`` to seconds.

    >>> seconds_from_ticks(4096)
    1.28
    """
    return ticks / TICKS_PER_SECOND


def ticks_from_milliseconds(milliseconds: float) -> int:
    """Convert ``milliseconds`` to ticks, rounding to the nearest tick."""
    return round(milliseconds * TICKS_PER_SECOND / 1000.0)


def milliseconds_from_ticks(ticks: int) -> float:
    """Convert ``ticks`` to milliseconds."""
    return ticks * 1000.0 / TICKS_PER_SECOND


def ticks_from_slots(slots: int) -> int:
    """Convert Bluetooth slots (625 µs each) to ticks."""
    return slots * TICKS_PER_SLOT


def slots_from_ticks(ticks: int) -> int:
    """Convert ticks to whole Bluetooth slots (truncating)."""
    return ticks // TICKS_PER_SLOT


class SimClock:
    """A monotonically advancing simulated clock measured in ticks.

    The kernel owns one instance and advances it as events fire; other
    components hold a reference and read :attr:`now`.
    """

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start before tick 0, got {start}")
        self._now = start

    @property
    def now(self) -> int:
        """Current simulated time in ticks."""
        return self._now

    @property
    def now_seconds(self) -> float:
        """Current simulated time in seconds."""
        return seconds_from_ticks(self._now)

    def advance_to(self, tick: int) -> None:
        """Move the clock forward to ``tick``.

        Raises:
            ValueError: if ``tick`` is in the past; simulated time never
                moves backwards.
        """
        if tick < self._now:
            raise ValueError(
                f"cannot move clock backwards: now={self._now}, target={tick}"
            )
        self._now = tick

    def __repr__(self) -> str:
        return f"SimClock(now={self._now} ticks = {self.now_seconds:.6f}s)"
