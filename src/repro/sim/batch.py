"""Struct-of-arrays state store for the batched simulation engine.

The object engine keeps one Python object per simulated device and one
kernel event per device transition.  At campus scale (10^5-10^6
devices) the per-event constant — attribute chases, enum dispatch, an
:class:`~repro.sim.kernel.EventHandle` per transition — dominates the
run.  The batched engine replaces both:

* :class:`BatchStore` holds device state as parallel signed 64-bit
  columns (``array('q')``), so one device is a row index and a state
  read is a C-level array load.  NumPy is deliberately not required:
  the container image is stdlib-only, and ``array`` columns expose the
  same buffer protocol (:meth:`BatchStore.view`) for a future NumPy or
  kernel-offload backend without changing any caller.
* A due-tick index groups rows by the tick at which they next act, so
  one kernel event advances every row due at that tick
  (:meth:`BatchStore.advance`) instead of N per-device callbacks.

Engine selection mirrors the calendar-scheduler pattern
(``BIPS_SIM_SCHEDULER``): experiments read the ``BIPS_SIM_ENGINE``
environment variable, which ``--jobs`` worker processes inherit, so a
parallel run can be flipped wholesale.  The batched engine is a pure
performance substitution — byte-identical experiment payloads and
domain metrics are asserted by ``tests/sim/test_engine_equivalence.py``
(see docs/performance.md for the equivalence contract).
"""

from __future__ import annotations

import os
from array import array
from typing import Optional, Sequence

from .hotpath import hot_path

#: Environment variable that selects the default engine; worker
#: processes inherit it, so a parallel run can be flipped wholesale.
ENGINE_ENV_VAR = "BIPS_SIM_ENGINE"

#: The recognised engine implementations.
ENGINES = ("object", "batched")

#: Shared empty result for ticks with no due rows (no allocation).
_NO_ROWS: tuple[int, ...] = ()


def resolve_engine(engine: Optional[str] = None) -> str:
    """Resolve an explicit engine choice or the environment default.

    ``None`` falls back to ``BIPS_SIM_ENGINE`` (default ``"object"``);
    unknown names fail fast so a typo cannot silently run the wrong
    engine.
    """
    if engine is None:
        engine = os.environ.get(ENGINE_ENV_VAR, "object")
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    return engine


class BatchStore:
    """Parallel integer columns plus a due-tick index.

    Columns are signed 64-bit (``array('q')``): wide enough for ticks,
    28-bit Bluetooth clocks, and counters, with ``-1`` available as a
    "not yet" sentinel.  Rows are append-only — a simulated device never
    leaves the store; lifecycle is a state column, which keeps row
    indices stable for the owner's parallel Python-object lists (RNG
    streams, addresses, names).

    The due-tick index is the batched counterpart of per-device pending
    events: :meth:`push_due` files a row under the tick at which it next
    acts, and :meth:`advance` claims every row due at a tick in FIFO
    order — which equals the object engine's event-sequence order,
    because rows are pushed at the same causal points at which the
    object engine would have scheduled per-device events.
    """

    __slots__ = ("_names", "_columns", "size", "_due")

    def __init__(self, *names: str) -> None:
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names: {names}")
        if not names:
            raise ValueError("a BatchStore needs at least one column")
        self._names = names
        self._columns: dict[str, array[int]] = {name: array("q") for name in names}
        self.size = 0
        self._due: dict[int, list[int]] = {}

    # -- columns ---------------------------------------------------------

    @property
    def column_names(self) -> tuple[str, ...]:
        """The column names, in declaration order."""
        return self._names

    def column(self, name: str) -> "array[int]":
        """The named column (the live array, not a copy)."""
        return self._columns[name]

    def view(self, name: str) -> memoryview:
        """A read-only buffer view of a column (NumPy/kernel interop)."""
        return memoryview(self._columns[name]).toreadonly()

    def add_row(self, **values: int) -> int:
        """Append a row; unnamed columns default to 0.  Returns its index."""
        for name in values:
            if name not in self._columns:
                raise KeyError(f"unknown column {name!r}; have {self._names}")
        row = self.size
        for name in self._names:
            self._columns[name].append(values.get(name, 0))
        self.size = row + 1
        return row

    def row(self, index: int) -> dict[str, int]:
        """One row as a dict (tests and debugging; not a hot path)."""
        if not 0 <= index < self.size:
            raise IndexError(f"row {index} out of range (size {self.size})")
        return {name: self._columns[name][index] for name in self._names}

    # -- due-tick index --------------------------------------------------

    def push_due(self, tick: int, row: int) -> bool:
        """File ``row`` as due at ``tick``.

        Returns True when ``tick`` had no bucket yet — the caller owns
        scheduling exactly one kernel event per bucket.
        """
        bucket = self._due.get(tick)
        if bucket is None:
            self._due[tick] = [row]
            return True
        bucket.append(row)
        return False

    def due_count(self, tick: int) -> int:
        """Number of rows currently filed under ``tick``."""
        bucket = self._due.get(tick)
        return 0 if bucket is None else len(bucket)

    @property
    def pending_ticks(self) -> int:
        """Number of distinct ticks with at least one due row."""
        return len(self._due)

    @hot_path
    def advance(self, tick: int) -> Sequence[int]:
        """Claim every row due at ``tick``, in arrival (FIFO) order.

        The bucket is removed from the index: rows filed for the same
        tick *during* processing open a fresh bucket (and hence a fresh
        kernel event), which reproduces the object engine's same-tick
        continuation semantics exactly.
        """
        bucket = self._due.pop(tick, None)
        if bucket is None:
            return _NO_ROWS
        return bucket
