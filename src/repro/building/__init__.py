"""Buildings: geometry, floor plans, and canonical layouts.

The paper's location granule is the room (§2); this package models the
rooms-and-passages graph that the mobility, planning, and serving
layers all share.
"""

from repro.building.floorplan import FloorPlan, FloorPlanError, Passage, Room
from repro.building.geometry import Point, Rect
from repro.building.layouts import (
    academic_department,
    linear_wing,
    multi_floor_department,
    two_room_testbed,
)
from repro.building.render import render_occupancy

__all__ = [
    "FloorPlan",
    "FloorPlanError",
    "Passage",
    "Point",
    "Rect",
    "Room",
    "academic_department",
    "linear_wing",
    "multi_floor_department",
    "render_occupancy",
    "two_room_testbed",
]
