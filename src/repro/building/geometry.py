"""Planar geometry for floor plans.

BIPS localises at room granularity (§2), so the geometry layer stays
deliberately small: points, axis-aligned rectangles, and the distance
queries the coverage planner needs (how far is the farthest corner of a
room from its workstation?).  Everything is in metres.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.rng import RandomStream


@dataclass(frozen=True)
class Point:
    """A position on a floor, in metres."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``, in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle: a room footprint.

    ``Rect(0, 0, 13, 13)`` is a 13 m x 13 m room with its south-west
    corner at the origin.
    """

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max <= self.x_min or self.y_max <= self.y_min:
            raise ValueError(
                f"degenerate rectangle: "
                f"[{self.x_min}, {self.x_max}] x [{self.y_min}, {self.y_max}]"
            )

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def diagonal(self) -> float:
        """Corner-to-corner distance — the worst case a radio must span."""
        return math.hypot(self.width, self.height)

    @property
    def center(self) -> Point:
        return Point((self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0)

    def corners(self) -> tuple[Point, Point, Point, Point]:
        """The four corners, counter-clockwise from the south-west."""
        return (
            Point(self.x_min, self.y_min),
            Point(self.x_max, self.y_min),
            Point(self.x_max, self.y_max),
            Point(self.x_min, self.y_max),
        )

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside or on the boundary."""
        return (
            self.x_min <= point.x <= self.x_max
            and self.y_min <= point.y <= self.y_max
        )

    def clamp(self, point: Point) -> Point:
        """The nearest point inside the rectangle."""
        return Point(
            min(max(point.x, self.x_min), self.x_max),
            min(max(point.y, self.y_min), self.y_max),
        )

    def random_point(self, rng: "RandomStream") -> Point:
        """A uniformly random interior point (for waypoint mobility)."""
        return Point(
            rng.uniform(self.x_min, self.x_max),
            rng.uniform(self.y_min, self.y_max),
        )
