"""Canonical floor plans used by experiments, examples, and tests.

The paper deployed BIPS in a university department (§2); the layouts
here mirror that setting at several scales:

* :func:`academic_department` — a 12-room floor resembling the paper's
  deployment: labs, offices, a library, a seminar room, and two
  corridors.  The west corridor is deliberately longer than one piconet
  can cover, so the deployment planner has something real to warn
  about.
* :func:`linear_wing` — ``n`` identical 10 m rooms on a chain, the
  controlled topology used by scaling sweeps.
* :func:`two_room_testbed` — the smallest interesting building: two
  adjacent rooms, for protocol-level tests.
* :func:`multi_floor_department` — the department replicated per floor,
  with stairwells joining the west corridors.
"""

from __future__ import annotations

from repro.building.floorplan import FloorPlan, Passage, Room
from repro.building.geometry import Point, Rect


def academic_department() -> FloorPlan:
    """The paper-style department: 12 rooms around two corridors.

    Every room is coverable by a single 10 m-radius piconet except the
    west corridor (24 m x 3 m), whose far corners are ~12.1 m from a
    centred station — the planner flags it.
    """
    rooms = [
        Room("lab-1", Rect(0, 0, 8, 6), label="Laboratory 1"),
        Room("lab-2", Rect(9, 0, 17, 6), label="Laboratory 2"),
        Room("library", Rect(18, 0, 26, 7), label="Library"),
        Room("seminar", Rect(27, 0, 36, 7), label="Seminar Room"),
        Room("lounge", Rect(37, 0, 42, 6), label="Lounge"),
        Room("corridor-w", Rect(0, 7, 24, 10), label="West Corridor"),
        Room("corridor-e", Rect(24, 7, 42, 10), label="East Corridor"),
        Room("office-1", Rect(0, 11, 5, 16), label="Office 1"),
        Room("office-2", Rect(6, 11, 11, 16), label="Office 2"),
        Room("office-3", Rect(25, 11, 30, 16), label="Office 3"),
        Room("office-4", Rect(31, 11, 36, 16), label="Office 4"),
        Room("kitchen", Rect(37, 11, 42, 16), label="Kitchen"),
    ]
    passages = [
        Passage("lab-1", "corridor-w", 5.0),
        Passage("lab-2", "corridor-w", 5.5),
        Passage("library", "corridor-w", 7.0),
        Passage("office-1", "corridor-w", 4.0),
        Passage("office-2", "corridor-w", 4.5),
        Passage("corridor-w", "corridor-e", 9.0),
        Passage("office-3", "corridor-e", 4.0),
        Passage("office-4", "corridor-e", 4.5),
        Passage("seminar", "corridor-e", 6.0),
        Passage("lounge", "corridor-e", 6.5),
        Passage("kitchen", "corridor-e", 5.0),
    ]
    return FloorPlan.from_rooms(rooms, passages)


def linear_wing(rooms: int) -> FloorPlan:
    """``rooms`` identical 10 m x 10 m rooms on a chain.

    Adjacent rooms are 10.0 m apart door-to-door, so shortest-path
    distances are exact multiples of 10 — handy for asserting on
    navigation answers.
    """
    if rooms < 1:
        raise ValueError(f"a wing needs at least one room: {rooms}")
    room_list = [
        Room(
            f"wing-{index}",
            Rect(11.0 * index, 0, 11.0 * index + 10.0, 10.0),
            label=f"Wing Room {index}",
        )
        for index in range(rooms)
    ]
    passages = [
        Passage(f"wing-{index}", f"wing-{index + 1}", 10.0)
        for index in range(rooms - 1)
    ]
    return FloorPlan.from_rooms(room_list, passages)


def two_room_testbed() -> FloorPlan:
    """Two adjacent rooms: the minimal tracking scenario."""
    rooms = [
        Room("room-a", Rect(0, 0, 8, 8), label="Room A"),
        Room("room-b", Rect(9, 0, 17, 8), label="Room B"),
    ]
    return FloorPlan.from_rooms(rooms, [Passage("room-a", "room-b", 5.0)])


def multi_floor_department(floors: int) -> FloorPlan:
    """The academic department stacked ``floors`` high.

    Room ids gain an ``f{i}/`` prefix; stairwells join consecutive west
    corridors (``f0/corridor-w`` <-> ``f1/corridor-w`` and so on), so
    cross-floor navigation always climbs through the corridors.
    """
    if floors < 1:
        raise ValueError(f"a building needs at least one floor: {floors}")
    template = academic_department()
    rooms: list[Room] = []
    passages: list[Passage] = []
    for floor in range(floors):
        prefix = f"f{floor}/"
        for room in template.rooms.values():
            rooms.append(
                Room(
                    prefix + room.room_id,
                    room.footprint,
                    workstation_position=room.workstation_position,
                    label=f"F{floor} {room.label}",
                )
            )
        for passage in template.passages:
            passages.append(
                Passage(
                    prefix + passage.room_a,
                    prefix + passage.room_b,
                    passage.distance_m,
                )
            )
    for floor in range(floors - 1):
        passages.append(
            Passage(f"f{floor}/corridor-w", f"f{floor + 1}/corridor-w", 6.0)
        )
    return FloorPlan.from_rooms(rooms, passages)
