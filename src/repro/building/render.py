"""ASCII rendering of a floor plan with per-room annotations.

Purely presentational: scale the plan's bounding box onto a character
grid and draw each room as a box containing its id and whatever count
the caller supplies (occupancy, signal quality, ...).  Used by the
operator-facing examples; nothing in the runtime depends on it.
"""

from __future__ import annotations

from typing import Callable

from repro.building.floorplan import FloorPlan

_CHARS_PER_METRE_X = 1.6
_ROWS_PER_METRE_Y = 0.45
_MIN_BOX_WIDTH = 6
_MIN_BOX_HEIGHT = 3


def render_occupancy(plan: FloorPlan, count_of: Callable[[str], int]) -> str:
    """Draw ``plan`` to scale, labelling each room ``id:count``.

    ``count_of`` maps a room id to the number shown inside its box.
    """
    box = plan.bounding_box
    width = max(20, int(box.width * _CHARS_PER_METRE_X) + 2)
    height = max(6, int(box.height * _ROWS_PER_METRE_Y) + 2)
    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return int((x - box.x_min) / box.width * (width - 1))

    def to_row(y: float) -> int:
        # Screen rows grow downwards; plan y grows upwards.
        return int((box.y_max - y) / box.height * (height - 1))

    for room_id in plan.room_ids():
        footprint = plan.rooms[room_id].footprint
        col_a, col_b = to_col(footprint.x_min), to_col(footprint.x_max)
        row_a, row_b = to_row(footprint.y_max), to_row(footprint.y_min)
        col_b = min(width - 1, max(col_b, col_a + _MIN_BOX_WIDTH - 1))
        row_b = min(height - 1, max(row_b, row_a + _MIN_BOX_HEIGHT - 1))
        for col in range(col_a, col_b + 1):
            grid[row_a][col] = "-"
            grid[row_b][col] = "-"
        for row in range(row_a, row_b + 1):
            grid[row][col_a] = "|"
            grid[row][col_b] = "|"
        for row, col in ((row_a, col_a), (row_a, col_b), (row_b, col_a), (row_b, col_b)):
            grid[row][col] = "+"
        text = f"{room_id}:{count_of(room_id)}"
        inner_width = col_b - col_a - 1
        if inner_width > 0:
            text = text[:inner_width]
            row = (row_a + row_b) // 2
            start = col_a + 1 + max(0, (inner_width - len(text)) // 2)
            for offset, char in enumerate(text):
                grid[row][start + offset] = char

    return "\n".join("".join(row).rstrip() for row in grid)
