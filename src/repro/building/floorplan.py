"""Floor plans: rooms joined by passages.

The paper's deployment unit is "one workstation per room" (§2), so a
building is modelled as a graph whose nodes are rooms (with a geometric
footprint for the coverage planner) and whose edges are passages with a
walking distance (for the mobility model and the path-query service).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

from repro.building.geometry import Point, Rect


class FloorPlanError(ValueError):
    """A floor plan is structurally invalid."""


@dataclass(frozen=True)
class Room:
    """One room: the BIPS location granule.

    ``workstation_position`` is where the piconet master sits; by
    default the room centre (the planner's recommended placement).
    """

    room_id: str
    footprint: Rect
    workstation_position: Optional[Point] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.room_id:
            raise FloorPlanError("room_id must be non-empty")
        if self.label is None:
            object.__setattr__(self, "label", self.room_id)

    @property
    def station_point(self) -> Point:
        """Where the workstation's radio actually is."""
        if self.workstation_position is not None:
            return self.workstation_position
        return self.footprint.center


@dataclass(frozen=True)
class Passage:
    """A walkable connection between two rooms.

    ``distance_m`` is the door-to-door walking distance, which need not
    match the geometric gap (corridors bend).
    """

    room_a: str
    room_b: str
    distance_m: float

    def __post_init__(self) -> None:
        if self.room_a == self.room_b:
            raise FloorPlanError(f"passage connects {self.room_a!r} to itself")
        if self.distance_m <= 0:
            raise FloorPlanError(
                f"passage {self.room_a!r}<->{self.room_b!r} has non-positive "
                f"distance {self.distance_m!r}"
            )

    def other(self, room_id: str) -> str:
        """The far end of the passage, seen from ``room_id``."""
        if room_id == self.room_a:
            return self.room_b
        if room_id == self.room_b:
            return self.room_a
        raise KeyError(f"{room_id!r} is not an endpoint of this passage")

    def joins(self, a: str, b: str) -> bool:
        return {self.room_a, self.room_b} == {a, b}


PassageSpec = Union[Passage, tuple]


@dataclass
class FloorPlan:
    """Rooms plus passages; the substrate every other layer builds on."""

    rooms: dict[str, Room] = field(default_factory=dict)
    passages: list[Passage] = field(default_factory=list)

    @classmethod
    def from_rooms(
        cls,
        rooms: Sequence[Room],
        passages: Iterable[PassageSpec] = (),
    ) -> "FloorPlan":
        """Build a plan from a room list and passage specs.

        Passages may be :class:`Passage` instances or
        ``(room_a, room_b, distance_m)`` tuples.
        """
        room_map: dict[str, Room] = {}
        for room in rooms:
            if room.room_id in room_map:
                raise FloorPlanError(f"duplicate room id {room.room_id!r}")
            room_map[room.room_id] = room
        passage_list = [
            spec if isinstance(spec, Passage) else Passage(*spec) for spec in passages
        ]
        plan = cls(rooms=room_map, passages=passage_list)
        plan.validate()
        return plan

    def room_ids(self) -> list[str]:
        """Room ids in insertion (deployment) order."""
        return list(self.rooms)

    def room(self, room_id: str) -> Room:
        """The room called ``room_id`` (KeyError if unknown)."""
        return self.rooms[room_id]

    def neighbors(self, room_id: str) -> list[tuple[str, Passage]]:
        """``(neighbor_room_id, passage)`` pairs for ``room_id``."""
        if room_id not in self.rooms:
            raise KeyError(f"unknown room {room_id!r}")
        result: list[tuple[str, Passage]] = []
        for passage in self.passages:
            if room_id in (passage.room_a, passage.room_b):
                result.append((passage.other(room_id), passage))
        return result

    def passage_between(self, a: str, b: str) -> Optional[Passage]:
        """The passage joining ``a`` and ``b``, or None if not adjacent."""
        for passage in self.passages:
            if passage.joins(a, b):
                return passage
        return None

    def validate(self) -> None:
        """Raise :class:`FloorPlanError` if the plan is malformed.

        Checks: at least one room, passages reference known rooms, no
        duplicate passages, and the room graph is connected (a
        disconnected wing could never answer path queries).
        """
        if not self.rooms:
            raise FloorPlanError("floor plan has no rooms")
        seen_pairs: set[frozenset[str]] = set()
        for passage in self.passages:
            for endpoint in (passage.room_a, passage.room_b):
                if endpoint not in self.rooms:
                    raise FloorPlanError(
                        f"passage references unknown room {endpoint!r}"
                    )
            pair = frozenset((passage.room_a, passage.room_b))
            if pair in seen_pairs:
                raise FloorPlanError(
                    f"duplicate passage {passage.room_a!r}<->{passage.room_b!r}"
                )
            seen_pairs.add(pair)
        self._check_connected()

    def _check_connected(self) -> None:
        ids = self.room_ids()
        reached = {ids[0]}
        frontier = [ids[0]]
        while frontier:
            current = frontier.pop()
            for neighbor, _ in self.neighbors(current):
                if neighbor not in reached:
                    reached.add(neighbor)
                    frontier.append(neighbor)
        missing = [room_id for room_id in ids if room_id not in reached]
        if missing:
            raise FloorPlanError(f"floor plan is disconnected: unreachable {missing}")

    @property
    def bounding_box(self) -> Rect:
        """The smallest rectangle containing every footprint."""
        if not self.rooms:
            raise FloorPlanError("floor plan has no rooms")
        footprints = [room.footprint for room in self.rooms.values()]
        return Rect(
            min(f.x_min for f in footprints),
            min(f.y_min for f in footprints),
            max(f.x_max for f in footprints),
            max(f.y_max for f in footprints),
        )
