"""The central location database.

"Once a handheld device has been enrolled, its position is communicated
to the central server machine where the position is stored in a
database for successive lookups" (§2).  The granule is the room; each
device has a current room (or none) plus a bounded movement history so
the spatio-temporal queries of the paper — and post-hoc accuracy
analysis — can be answered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bluetooth.address import BDAddr


@dataclass(frozen=True)
class LocationRecord:
    """Where a device is (or was): room + the update interval.

    ``last_confirmed_tick`` is the most recent tick at which *any*
    workstation confirmed this attribution — refreshed by same-room
    presences that change nothing else.  It is what staleness marking
    keys on: a record whose confirmation is old may describe a device
    whose workstation crashed, so queries degrade gracefully instead of
    asserting certainty (see ``docs/fault-injection.md``).
    """

    device: BDAddr
    room_id: Optional[str]
    since_tick: int
    last_confirmed_tick: int = -1

    def __post_init__(self) -> None:
        if self.last_confirmed_tick < 0:
            object.__setattr__(self, "last_confirmed_tick", self.since_tick)

    @property
    def known(self) -> bool:
        """Whether the device's position is currently known."""
        return self.room_id is not None


@dataclass(frozen=True)
class LocationEvent:
    """One database transition, kept in per-device history."""

    tick: int
    room_id: Optional[str]  # None = became unknown (absence)
    source_workstation: str


class LocationDatabase:
    """Current positions and movement history of all tracked devices."""

    def __init__(
        self,
        history_limit: int = 1000,
        staleness_horizon_ticks: Optional[int] = None,
    ) -> None:
        if history_limit <= 0:
            raise ValueError(f"history_limit must be positive: {history_limit}")
        if staleness_horizon_ticks is not None and staleness_horizon_ticks <= 0:
            raise ValueError(
                f"staleness horizon must be positive: {staleness_horizon_ticks}"
            )
        self._current: dict[BDAddr, LocationRecord] = {}
        self._history: dict[BDAddr, list[LocationEvent]] = {}
        self._history_limit = history_limit
        self.staleness_horizon_ticks = staleness_horizon_ticks
        # An absence that arrives while its device is attributed to a
        # *different* room cannot be applied, but it must not be
        # forgotten either: a delayed presence for that room carrying an
        # older tick would otherwise resurrect a user who already left.
        # Keyed by (device, room); cleared by any newer presence there.
        self._absence_horizon: dict[tuple[BDAddr, str], int] = {}
        self.updates_applied = 0
        self.stale_absences_ignored = 0
        self.stale_presences_ignored = 0
        self.presences_reconfirmed = 0
        self.absence_tombstones = 0
        self.presences_superseded = 0

    # -- updates ---------------------------------------------------------------

    def apply_presence(
        self, device: BDAddr, room_id: str, tick: int, workstation_id: str
    ) -> bool:
        """A workstation saw ``device`` in ``room_id``.

        Returns True if the database changed.  A presence for the room
        the device is already in refreshes nothing, and a presence
        carrying a tick *older* than the current record is a delayed
        LAN delivery — applying it would overwrite fresher state with
        stale state (workstations only report deltas, but deliveries
        can race and reorder over the LAN).
        """
        horizon = self._absence_horizon.get((device, room_id))
        if horizon is not None:
            if tick <= horizon:
                # A departure from this room with a tick at least this
                # fresh was already reported: the presence is the late
                # half of a reordered pair and must not resurrect.
                self.presences_superseded += 1
                return False
            del self._absence_horizon[(device, room_id)]
        record = self._current.get(device)
        if record is not None and tick < record.last_confirmed_tick:
            # Older than the newest confirmation of the current state:
            # a delayed LAN delivery.  Comparing against the *confirmed*
            # tick (not just since_tick) also rejects a cross-room claim
            # that predates a refresh — we have fresher evidence the
            # device was still where we think it is.
            self.stale_presences_ignored += 1
            return False
        if record is not None and record.room_id == room_id:
            # Same room, fresher tick: the attribution is unchanged but
            # its *confirmation* is renewed, which is exactly what the
            # periodic refresh traffic exists to do.
            if tick > record.last_confirmed_tick:
                self._current[device] = LocationRecord(
                    device=device,
                    room_id=room_id,
                    since_tick=record.since_tick,
                    last_confirmed_tick=tick,
                )
                self.presences_reconfirmed += 1
            return False
        self._current[device] = LocationRecord(device=device, room_id=room_id, since_tick=tick)
        self._append_history(device, LocationEvent(tick, room_id, workstation_id))
        self.updates_applied += 1
        return True

    def apply_absence(
        self, device: BDAddr, room_id: str, tick: int, workstation_id: str
    ) -> bool:
        """A workstation reports ``device`` left ``room_id``.

        Only clears the position if the device is still attributed to
        that room *and* the absence is not older than the attribution —
        an absence that raced with a presence from the device's *new*
        room (or was delayed past a fresher update for the same room)
        must not erase the fresher information.
        """
        record = self._current.get(device)
        if record is None:
            # Absence for a device we never saw: the matching presence
            # is late (or lost).  Record a *tombstone* — an unknown
            # position stamped with the absence tick — so the delayed
            # presence cannot arrive afterwards and resurrect a user who
            # already left.  The caller still sees no position change.
            self._current[device] = LocationRecord(
                device=device, room_id=None, since_tick=tick
            )
            self._append_history(device, LocationEvent(tick, None, workstation_id))
            self.absence_tombstones += 1
            return False
        if record.room_id != room_id or tick < record.last_confirmed_tick:
            if record.room_id != room_id:
                # Cannot apply (the device is attributed elsewhere), but
                # remember the departure so the matching presence, if it
                # arrives late, cannot re-attribute the room.
                key = (device, room_id)
                if tick > self._absence_horizon.get(key, -1):
                    self._absence_horizon[key] = tick
            self.stale_absences_ignored += 1
            return False
        self._current[device] = LocationRecord(device=device, room_id=None, since_tick=tick)
        self._append_history(device, LocationEvent(tick, None, workstation_id))
        self.updates_applied += 1
        return True

    def _append_history(self, device: BDAddr, event: LocationEvent) -> None:
        """Insert keeping history tick-ordered.

        ``room_at`` replays "last event at or before tick", which is
        only meaningful over a sorted history; an out-of-order LAN
        delivery that survives the staleness guards (e.g. a presence
        for a device the database has not seen yet) must still land in
        tick position, not at the tail.
        """
        history = self._history.setdefault(device, [])
        position = len(history)
        while position > 0 and history[position - 1].tick > event.tick:
            position -= 1
        history.insert(position, event)
        if len(history) > self._history_limit:
            del history[: len(history) - self._history_limit]

    def forget_device(self, device: BDAddr) -> None:
        """Drop all state for a device (user logged out)."""
        self._current.pop(device, None)
        self._history.pop(device, None)
        for key in [k for k in sorted(self._absence_horizon) if k[0] == device]:
            del self._absence_horizon[key]

    # -- queries ---------------------------------------------------------------

    def current_room(self, device: BDAddr) -> Optional[str]:
        """Room the device is in, or None if unknown/never seen."""
        record = self._current.get(device)
        return record.room_id if record is not None else None

    def record_of(self, device: BDAddr) -> Optional[LocationRecord]:
        """Full current record (None if never seen)."""
        return self._current.get(device)

    def history_of(self, device: BDAddr) -> list[LocationEvent]:
        """Movement history, oldest first."""
        return list(self._history.get(device, ()))

    def occupants_of(self, room_id: str) -> list[BDAddr]:
        """Devices currently attributed to ``room_id``."""
        return [
            record.device
            for record in self._current.values()
            if record.room_id == room_id
        ]

    def room_at(self, device: BDAddr, tick: int) -> Optional[str]:
        """Where the database believed the device was at ``tick``.

        Replays history: the room of the last event at or before
        ``tick``.  This is the temporal half of the paper's
        spatio-temporal query and what the accuracy analysis samples.
        """
        history = self._history.get(device)
        if not history:
            return None
        room: Optional[str] = None
        for event in history:
            if event.tick > tick:
                break
            room = event.room_id
        return room

    # -- staleness ---------------------------------------------------------------

    def last_confirmed(self, device: BDAddr) -> Optional[int]:
        """Tick of the most recent confirmation for ``device`` (None if unseen)."""
        record = self._current.get(device)
        return record.last_confirmed_tick if record is not None else None

    def is_stale(self, device: BDAddr, now: int) -> bool:
        """Whether the device's attribution has outlived the horizon.

        Only a *known* position can be stale: "we have not heard about
        this device for a while" degrades a claimed room, not an already
        unknown one.  Without a configured horizon nothing is stale.
        """
        if self.staleness_horizon_ticks is None:
            return False
        record = self._current.get(device)
        if record is None or not record.known:
            return False
        return now - record.last_confirmed_tick > self.staleness_horizon_ticks

    def stale_devices(self, now: int) -> list[BDAddr]:
        """Devices whose known position is stale at ``now``."""
        return [
            record.device
            for record in self._current.values()
            if self.is_stale(record.device, now)
        ]

    @property
    def tracked_count(self) -> int:
        """Devices with any state in the database."""
        return len(self._current)

    @property
    def known_count(self) -> int:
        """Devices whose room is currently known."""
        return sum(1 for record in self._current.values() if record.known)
