"""The central location database.

"Once a handheld device has been enrolled, its position is communicated
to the central server machine where the position is stored in a
database for successive lookups" (§2).  The granule is the room; each
device has a current room (or none) plus a bounded movement history so
the spatio-temporal queries of the paper — and post-hoc accuracy
analysis — can be answered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bluetooth.address import BDAddr


@dataclass(frozen=True)
class LocationRecord:
    """Where a device is (or was): room + the update interval."""

    device: BDAddr
    room_id: Optional[str]
    since_tick: int

    @property
    def known(self) -> bool:
        """Whether the device's position is currently known."""
        return self.room_id is not None


@dataclass(frozen=True)
class LocationEvent:
    """One database transition, kept in per-device history."""

    tick: int
    room_id: Optional[str]  # None = became unknown (absence)
    source_workstation: str


class LocationDatabase:
    """Current positions and movement history of all tracked devices."""

    def __init__(self, history_limit: int = 1000) -> None:
        if history_limit <= 0:
            raise ValueError(f"history_limit must be positive: {history_limit}")
        self._current: dict[BDAddr, LocationRecord] = {}
        self._history: dict[BDAddr, list[LocationEvent]] = {}
        self._history_limit = history_limit
        self.updates_applied = 0
        self.stale_absences_ignored = 0
        self.stale_presences_ignored = 0

    # -- updates ---------------------------------------------------------------

    def apply_presence(
        self, device: BDAddr, room_id: str, tick: int, workstation_id: str
    ) -> bool:
        """A workstation saw ``device`` in ``room_id``.

        Returns True if the database changed.  A presence for the room
        the device is already in refreshes nothing, and a presence
        carrying a tick *older* than the current record is a delayed
        LAN delivery — applying it would overwrite fresher state with
        stale state (workstations only report deltas, but deliveries
        can race and reorder over the LAN).
        """
        record = self._current.get(device)
        if record is not None and tick < record.since_tick:
            self.stale_presences_ignored += 1
            return False
        if record is not None and record.room_id == room_id:
            return False
        self._current[device] = LocationRecord(device=device, room_id=room_id, since_tick=tick)
        self._append_history(device, LocationEvent(tick, room_id, workstation_id))
        self.updates_applied += 1
        return True

    def apply_absence(
        self, device: BDAddr, room_id: str, tick: int, workstation_id: str
    ) -> bool:
        """A workstation reports ``device`` left ``room_id``.

        Only clears the position if the device is still attributed to
        that room *and* the absence is not older than the attribution —
        an absence that raced with a presence from the device's *new*
        room (or was delayed past a fresher update for the same room)
        must not erase the fresher information.
        """
        record = self._current.get(device)
        if record is None or record.room_id != room_id or tick < record.since_tick:
            self.stale_absences_ignored += 1
            return False
        self._current[device] = LocationRecord(device=device, room_id=None, since_tick=tick)
        self._append_history(device, LocationEvent(tick, None, workstation_id))
        self.updates_applied += 1
        return True

    def _append_history(self, device: BDAddr, event: LocationEvent) -> None:
        """Insert keeping history tick-ordered.

        ``room_at`` replays "last event at or before tick", which is
        only meaningful over a sorted history; an out-of-order LAN
        delivery that survives the staleness guards (e.g. a presence
        for a device the database has not seen yet) must still land in
        tick position, not at the tail.
        """
        history = self._history.setdefault(device, [])
        position = len(history)
        while position > 0 and history[position - 1].tick > event.tick:
            position -= 1
        history.insert(position, event)
        if len(history) > self._history_limit:
            del history[: len(history) - self._history_limit]

    def forget_device(self, device: BDAddr) -> None:
        """Drop all state for a device (user logged out)."""
        self._current.pop(device, None)
        self._history.pop(device, None)

    # -- queries ---------------------------------------------------------------

    def current_room(self, device: BDAddr) -> Optional[str]:
        """Room the device is in, or None if unknown/never seen."""
        record = self._current.get(device)
        return record.room_id if record is not None else None

    def record_of(self, device: BDAddr) -> Optional[LocationRecord]:
        """Full current record (None if never seen)."""
        return self._current.get(device)

    def history_of(self, device: BDAddr) -> list[LocationEvent]:
        """Movement history, oldest first."""
        return list(self._history.get(device, ()))

    def occupants_of(self, room_id: str) -> list[BDAddr]:
        """Devices currently attributed to ``room_id``."""
        return [
            record.device
            for record in self._current.values()
            if record.room_id == room_id
        ]

    def room_at(self, device: BDAddr, tick: int) -> Optional[str]:
        """Where the database believed the device was at ``tick``.

        Replays history: the room of the last event at or before
        ``tick``.  This is the temporal half of the paper's
        spatio-temporal query and what the accuracy analysis samples.
        """
        history = self._history.get(device)
        if not history:
            return None
        room: Optional[str] = None
        for event in history:
            if event.tick > tick:
                break
            room = event.room_id
        return room

    @property
    def tracked_count(self) -> int:
        """Devices with any state in the database."""
        return len(self._current)

    @property
    def known_count(self) -> int:
        """Devices whose room is currently known."""
        return sum(1 for record in self._current.values() if record.known)
