"""The BIPS query engine.

Implements the paper's query semantics (§2): before answering, verify
that the target user is logged in and that the querier has the right to
ask; then resolve username → userid → BD_ADDR → current piconet, and
for navigation queries, look up the precomputed shortest path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .errors import BIPSError
from .location_db import LocationDatabase
from .pathfinding import AllPairsPaths, PathResult
from .registry import UserRegistry


@dataclass
class QueryStats:
    """Counters over the lifetime of the engine."""

    location_queries: int = 0
    location_denied: int = 0
    location_unknown: int = 0
    location_stale: int = 0
    path_queries: int = 0
    path_denied: int = 0
    by_error: dict[str, int] = field(default_factory=dict)

    def note_error(self, error: BIPSError) -> None:
        """Record a denial/failure by exception type."""
        name = type(error).__name__
        self.by_error[name] = self.by_error.get(name, 0) + 1


class QueryEngine:
    """Answers "where is user X?" and "how do I reach user X?"."""

    def __init__(
        self,
        registry: UserRegistry,
        location_db: LocationDatabase,
        paths: AllPairsPaths,
    ) -> None:
        self.registry = registry
        self.location_db = location_db
        self.paths = paths
        self.stats = QueryStats()

    def locate(self, querier_userid: str, target_username: str) -> Optional[str]:
        """The paper's spatio-temporal query: the target's current piconet.

        Returns the room id, or None when the target is logged in but
        currently untracked (e.g. walking a corridor between piconets).

        Raises:
            NotLoggedInError: querier or target has no live session.
            AccessDeniedError: the target's access rights exclude the querier.
            UnknownUserError: no such target username.
        """
        self.stats.location_queries += 1
        try:
            return self._locate(querier_userid, target_username)
        except BIPSError as error:
            self.stats.location_denied += 1
            self.stats.note_error(error)
            raise

    def _locate(self, querier_userid: str, target_username: str) -> Optional[str]:
        target = self.registry.check_query_allowed(querier_userid, target_username)
        device = self.registry.device_of(target.userid)
        room = self.location_db.current_room(device)
        if room is None:
            self.stats.location_unknown += 1
        return room

    def locate_full(
        self, querier_userid: str, target_username: str, now: int
    ) -> tuple[Optional[str], bool]:
        """:meth:`locate` plus a staleness verdict at tick ``now``.

        The second element is True when the answer comes from an
        attribution the database has not had confirmed within its
        staleness horizon — e.g. the covering workstation crashed.  The
        answer is still the best available, it just stops pretending to
        be fresh (graceful degradation, ``docs/fault-injection.md``).
        """
        self.stats.location_queries += 1
        try:
            target = self.registry.check_query_allowed(querier_userid, target_username)
        except BIPSError as error:
            self.stats.location_denied += 1
            self.stats.note_error(error)
            raise
        device = self.registry.device_of(target.userid)
        room = self.location_db.current_room(device)
        if room is None:
            self.stats.location_unknown += 1
        stale = self.location_db.is_stale(device, now)
        if stale:
            self.stats.location_stale += 1
        return room, stale

    def locate_at(
        self, querier_userid: str, target_username: str, tick: int
    ) -> Optional[str]:
        """The temporal half of §2's spatio-temporal query.

        Where was the target at simulated time ``tick``, according to
        the database history?  Subject to the same access-rights checks
        as :meth:`locate`; None when the position was unknown then.
        """
        self.stats.location_queries += 1
        try:
            target = self.registry.check_query_allowed(querier_userid, target_username)
        except BIPSError as error:
            self.stats.location_denied += 1
            self.stats.note_error(error)
            raise
        device = self.registry.device_of(target.userid)
        room = self.location_db.room_at(device, tick)
        if room is None:
            self.stats.location_unknown += 1
        return room

    def navigate(self, querier_userid: str, target_username: str) -> Optional[PathResult]:
        """Shortest path from the querier's room to the target's room.

        Returns None when either endpoint is currently untracked.

        Raises the same errors as :meth:`locate`, plus
        :class:`NotLoggedInError` if the querier has no bound device.
        """
        self.stats.path_queries += 1
        try:
            target_room = self._locate(querier_userid, target_username)
            querier_device = self.registry.device_of(querier_userid)
        except BIPSError as error:
            self.stats.path_denied += 1
            self.stats.note_error(error)
            raise
        querier_room = self.location_db.current_room(querier_device)
        if target_room is None or querier_room is None:
            return None
        return self.paths.path(querier_room, target_room)
