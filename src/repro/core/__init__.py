"""The BIPS core: the paper's primary contribution.

* :class:`UserRegistry` — off-line registration, login/logout,
  access rights (§2)
* :class:`LocationDatabase` — room-granule positions + history (§2)
* :class:`PresenceTracker` / :class:`Workstation` — per-room masters
  turning inquiry sightings into presence deltas (§2, §5)
* :class:`MasterSchedulingPolicy` — the §5 duty cycle (3.84 s / 15.4 s)
* :class:`Graph` / :class:`AllPairsPaths` — Dijkstra and the off-line
  all-pairs precomputation (§2)
* :class:`QueryEngine` / :class:`BIPSServer` — the central server
* :class:`BIPSSimulation` — the end-to-end facade
"""

from .config import BIPSConfig
from .errors import (
    AccessDeniedError,
    AuthenticationError,
    BIPSError,
    NotLoggedInError,
    RegistrationError,
    UnknownRoomError,
    UnknownUserError,
)
from .location_db import LocationDatabase, LocationEvent, LocationRecord
from .pathfinding import AllPairsPaths, Graph, PathResult
from .planner import DeploymentPlan, RoomAssessment, plan_deployment
from .query import QueryEngine, QueryStats
from .registry import Session, UserRecord, UserRegistry, VisibilityPolicy
from .reports import OccupancyReport, RoomOccupancy, VisitStats
from .scheduler import MasterSchedulingPolicy
from .server import BIPSServer
from .simulation import (
    BIPSSimulation,
    TrackedUser,
    TrackingReport,
    UserTrackingReport,
)
from .tracker import CycleDeltas, PresenceTracker
from .workstation import Workstation

__all__ = [
    "BIPSConfig",
    "AccessDeniedError",
    "AuthenticationError",
    "BIPSError",
    "NotLoggedInError",
    "RegistrationError",
    "UnknownRoomError",
    "UnknownUserError",
    "LocationDatabase",
    "LocationEvent",
    "LocationRecord",
    "AllPairsPaths",
    "Graph",
    "PathResult",
    "QueryEngine",
    "QueryStats",
    "DeploymentPlan",
    "RoomAssessment",
    "plan_deployment",
    "Session",
    "UserRecord",
    "UserRegistry",
    "VisibilityPolicy",
    "OccupancyReport",
    "RoomOccupancy",
    "VisitStats",
    "MasterSchedulingPolicy",
    "BIPSServer",
    "BIPSSimulation",
    "TrackedUser",
    "TrackingReport",
    "UserTrackingReport",
    "CycleDeltas",
    "PresenceTracker",
    "Workstation",
]
