"""Shortest paths over the workstation graph.

BIPS "defines a weighted undirected connected graph that reflects the
topology of workstations inside the building ... and implements the
Dijkstra algorithm" (§2).  Because the wired topology is static, BIPS
precomputes all shortest paths off-line so that answering a navigation
query is a table lookup — both behaviours are reproduced here.

Dijkstra is implemented from first principles (binary-heap variant);
the tests cross-check it against networkx.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.building.floorplan import FloorPlan

from .errors import UnknownRoomError


@dataclass(frozen=True)
class PathResult:
    """A shortest path: the room sequence and its total length."""

    rooms: tuple[str, ...]
    total_distance_m: float

    @property
    def hop_count(self) -> int:
        """Number of passages traversed."""
        return max(0, len(self.rooms) - 1)

    def describe(self) -> str:
        """Human-readable rendering, e.g. for the handheld display."""
        route = " -> ".join(self.rooms)
        return f"{route}  ({self.total_distance_m:.1f} m, {self.hop_count} hops)"


class Graph:
    """A weighted undirected graph with string-named nodes."""

    def __init__(self) -> None:
        self._adjacency: dict[str, dict[str, float]] = {}

    @classmethod
    def from_floorplan(cls, plan: FloorPlan) -> "Graph":
        """The BIPS workstation graph of a floor plan."""
        graph = cls()
        for room_id in plan.room_ids():
            graph.add_node(room_id)
        for passage in plan.passages:
            graph.add_edge(passage.room_a, passage.room_b, passage.distance_m)
        return graph

    def add_node(self, node: str) -> None:
        """Add a node; idempotent."""
        self._adjacency.setdefault(node, {})

    def add_edge(self, a: str, b: str, weight: float) -> None:
        """Add an undirected edge; both endpoints must exist."""
        if weight <= 0:
            raise ValueError(f"edge weight must be positive: {weight}")
        if a not in self._adjacency or b not in self._adjacency:
            raise UnknownRoomError(f"edge references unknown node: {a!r}-{b!r}")
        if a == b:
            raise ValueError(f"self-loop on {a!r}")
        self._adjacency[a][b] = weight
        self._adjacency[b][a] = weight

    @property
    def nodes(self) -> list[str]:
        """All node names."""
        return list(self._adjacency)

    def neighbors(self, node: str) -> Mapping[str, float]:
        """Adjacent nodes and edge weights."""
        if node not in self._adjacency:
            raise UnknownRoomError(f"unknown node {node!r}")
        return self._adjacency[node]

    def __contains__(self, node: str) -> bool:
        return node in self._adjacency

    # -- Dijkstra ------------------------------------------------------------

    def dijkstra(self, source: str) -> tuple[dict[str, float], dict[str, Optional[str]]]:
        """Single-source shortest paths.

        Returns ``(distance, predecessor)`` maps covering every node
        reachable from ``source``.
        """
        if source not in self._adjacency:
            raise UnknownRoomError(f"unknown source {source!r}")
        distance: dict[str, float] = {source: 0.0}
        predecessor: dict[str, Optional[str]] = {source: None}
        settled: set[str] = set()
        frontier: list[tuple[float, str]] = [(0.0, source)]
        while frontier:
            dist, node = heapq.heappop(frontier)
            if node in settled:
                continue
            settled.add(node)
            for neighbor, weight in self._adjacency[node].items():
                candidate = dist + weight
                if candidate < distance.get(neighbor, float("inf")):
                    distance[neighbor] = candidate
                    predecessor[neighbor] = node
                    heapq.heappush(frontier, (candidate, neighbor))
        return distance, predecessor

    def shortest_path(self, source: str, target: str) -> Optional[PathResult]:
        """The shortest path between two nodes, or None if disconnected."""
        if target not in self._adjacency:
            raise UnknownRoomError(f"unknown target {target!r}")
        distance, predecessor = self.dijkstra(source)
        if target not in distance:
            return None
        rooms: list[str] = []
        cursor: Optional[str] = target
        while cursor is not None:
            rooms.append(cursor)
            cursor = predecessor[cursor]
        rooms.reverse()
        return PathResult(rooms=tuple(rooms), total_distance_m=distance[target])


class AllPairsPaths:
    """Precomputed shortest paths between every room pair.

    "The static nature of BIPS wired network allows us to compute
    off-line all the shortest paths ... Hence the computation of the
    shortest path has no impact on BIPS online activities" (§2).
    Lookup is O(path length); no search happens at query time.
    """

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self._distance: dict[str, dict[str, float]] = {}
        self._predecessor: dict[str, dict[str, Optional[str]]] = {}
        for node in graph.nodes:
            distance, predecessor = graph.dijkstra(node)
            self._distance[node] = distance
            self._predecessor[node] = predecessor

    @classmethod
    def from_floorplan(cls, plan: FloorPlan) -> "AllPairsPaths":
        """Convenience constructor from a floor plan."""
        return cls(Graph.from_floorplan(plan))

    def distance(self, source: str, target: str) -> Optional[float]:
        """Shortest distance, or None if unreachable."""
        if source not in self._distance:
            raise UnknownRoomError(f"unknown source {source!r}")
        return self._distance[source].get(target)

    def path(self, source: str, target: str) -> Optional[PathResult]:
        """Shortest path by table lookup, or None if unreachable."""
        if source not in self._distance:
            raise UnknownRoomError(f"unknown source {source!r}")
        if target not in self._graph:
            raise UnknownRoomError(f"unknown target {target!r}")
        if target not in self._distance[source]:
            return None
        rooms: list[str] = []
        cursor: Optional[str] = target
        predecessor = self._predecessor[source]
        while cursor is not None:
            rooms.append(cursor)
            cursor = predecessor[cursor]
        rooms.reverse()
        return PathResult(
            rooms=tuple(rooms), total_distance_m=self._distance[source][target]
        )

    def eccentricity(self, node: str) -> float:
        """Greatest shortest-path distance from ``node``.

        A node that cannot reach every other node has infinite
        eccentricity (``math.inf``) — unreachable rooms are a real
        deployment condition (a wing whose workstation graph was wired
        without a connecting passage), not a missing dictionary key.
        """
        distances = self._distance.get(node)
        if distances is None:
            raise UnknownRoomError(f"unknown node {node!r}")
        if len(distances) < len(self._graph.nodes):
            return math.inf
        return max(distances.values())

    def diameter(self) -> float:
        """Longest shortest path in the building graph.

        ``math.inf`` for a disconnected graph.  Raises
        :class:`ValueError` on a graph with no nodes — there is no
        meaningful number to return, and letting ``max()`` raise its
        bare "empty sequence" error hid what was actually wrong.
        """
        nodes = self._graph.nodes
        if not nodes:
            raise ValueError("diameter is undefined for an empty graph")
        return max(self.eccentricity(node) for node in nodes)


def validate_against_reference(
    graph: Graph, pairs: Sequence[tuple[str, str]]
) -> list[tuple[str, str, float, float]]:
    """Cross-check our Dijkstra against networkx on specific pairs.

    Returns the mismatching pairs as
    ``(source, target, ours, reference)``; an empty list means
    agreement.  Used by the test suite, kept here so downstream users
    can audit a deployment's topology too.
    """
    import networkx as nx

    reference = nx.Graph()
    for node in graph.nodes:
        reference.add_node(node)
        for neighbor, weight in graph.neighbors(node).items():
            reference.add_edge(node, neighbor, weight=weight)
    mismatches = []
    for source, target in pairs:
        ours = graph.shortest_path(source, target)
        try:
            ref_distance = nx.shortest_path_length(
                reference, source, target, weight="weight"
            )
        except nx.NetworkXNoPath:
            ref_distance = None
        ours_distance = ours.total_distance_m if ours is not None else None
        if ours_distance is None and ref_distance is None:
            continue
        if (
            ours_distance is None
            or ref_distance is None
            or abs(ours_distance - ref_distance) > 1e-9
        ):
            mismatches.append((source, target, ours_distance, ref_distance))
    return mismatches
