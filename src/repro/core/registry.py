"""User registration, authentication, and access rights.

The paper (§2): "An off-line procedure has been implemented for
registering new BIPS users.  The procedure associates the name of a
user with a user identifier (userid).  In this phase, a password and a
set of access rights are defined for enforcing security and privacy
issues."  Login then creates the one-to-one userid ↔ BD_ADDR binding
that tracking and queries operate on.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.bluetooth.address import BDAddr

from .errors import (
    AccessDeniedError,
    AuthenticationError,
    NotLoggedInError,
    RegistrationError,
    UnknownUserError,
)


class VisibilityPolicy(enum.Enum):
    """Who may locate this user.

    * ``EVERYONE`` — any logged-in BIPS user.
    * ``LISTED`` — only userids in the user's allow list.
    * ``NOBODY`` — location queries always denied (tracking still runs,
      e.g. for the user's own navigation).
    """

    EVERYONE = "everyone"
    LISTED = "listed"
    NOBODY = "nobody"


def _hash_password(password: str, salt: str) -> str:
    """Salted SHA-256; enough for a simulation, shaped like the real thing."""
    return hashlib.sha256(f"{salt}:{password}".encode("utf-8")).hexdigest()


@dataclass
class UserRecord:
    """One registered user."""

    userid: str
    username: str
    password_hash: str
    salt: str
    policy: VisibilityPolicy = VisibilityPolicy.EVERYONE
    allowed_queriers: set[str] = field(default_factory=set)

    def may_be_located_by(self, querier_userid: str) -> bool:
        """Access-rights check for a location/path query."""
        if querier_userid == self.userid:
            return True
        if self.policy is VisibilityPolicy.EVERYONE:
            return True
        if self.policy is VisibilityPolicy.NOBODY:
            return False
        return querier_userid in self.allowed_queriers


@dataclass(frozen=True)
class Session:
    """A live login: the userid ↔ BD_ADDR binding."""

    userid: str
    device: BDAddr
    login_tick: int


class UserRegistry:
    """Registration (off-line) and login/logout (on-line) for BIPS users."""

    def __init__(self) -> None:
        self._users: dict[str, UserRecord] = {}
        self._by_username: dict[str, str] = {}
        self._sessions: dict[str, Session] = {}
        self._device_to_userid: dict[BDAddr, str] = {}

    # -- off-line registration ------------------------------------------------

    def register(
        self,
        userid: str,
        username: str,
        password: str,
        policy: VisibilityPolicy = VisibilityPolicy.EVERYONE,
        allowed_queriers: Optional[set[str]] = None,
    ) -> UserRecord:
        """Register a new user; userids and usernames must be unique."""
        if not userid or not username:
            raise RegistrationError("userid and username must be non-empty")
        if userid in self._users:
            raise RegistrationError(f"duplicate userid {userid!r}")
        if username in self._by_username:
            raise RegistrationError(f"duplicate username {username!r}")
        salt = hashlib.sha256(userid.encode("utf-8")).hexdigest()[:16]
        record = UserRecord(
            userid=userid,
            username=username,
            password_hash=_hash_password(password, salt),
            salt=salt,
            policy=policy,
            allowed_queriers=set(allowed_queriers or ()),
        )
        self._users[userid] = record
        self._by_username[username] = userid
        return record

    def user(self, userid: str) -> UserRecord:
        """Look up by userid."""
        record = self._users.get(userid)
        if record is None:
            raise UnknownUserError(f"unknown userid {userid!r}")
        return record

    def user_by_name(self, username: str) -> UserRecord:
        """Look up by display name (the form queries use)."""
        userid = self._by_username.get(username)
        if userid is None:
            raise UnknownUserError(f"unknown username {username!r}")
        return self._users[userid]

    @property
    def registered_count(self) -> int:
        """Number of registered users."""
        return len(self._users)

    # -- login / logout ---------------------------------------------------------

    def login(self, userid: str, password: str, device: BDAddr, tick: int) -> Session:
        """Authenticate and bind ``device`` to ``userid``.

        A device already bound to another user must log that user out
        first; re-login of the same user moves the binding to the new
        device (they switched handhelds).
        """
        record = self._users.get(userid)
        if record is None:
            raise AuthenticationError(f"unknown userid {userid!r}")
        if _hash_password(password, record.salt) != record.password_hash:
            raise AuthenticationError(f"wrong password for {userid!r}")
        bound = self._device_to_userid.get(device)
        if bound is not None and bound != userid:
            raise AuthenticationError(
                f"device {device} is already bound to userid {bound!r}"
            )
        existing = self._sessions.get(userid)
        if existing is not None:
            self._device_to_userid.pop(existing.device, None)
        session = Session(userid=userid, device=device, login_tick=tick)
        self._sessions[userid] = session
        self._device_to_userid[device] = userid
        return session

    def logout(self, userid: str) -> None:
        """End the user's session; idempotent for unknown sessions."""
        session = self._sessions.pop(userid, None)
        if session is not None:
            self._device_to_userid.pop(session.device, None)

    def is_logged_in(self, userid: str) -> bool:
        """Whether the user has a live session."""
        return userid in self._sessions

    def session_of(self, userid: str) -> Session:
        """The live session; raises if not logged in."""
        session = self._sessions.get(userid)
        if session is None:
            raise NotLoggedInError(f"user {userid!r} is not logged in")
        return session

    def device_of(self, userid: str) -> BDAddr:
        """BD_ADDR bound to a logged-in user."""
        return self.session_of(userid).device

    def userid_of_device(self, device: BDAddr) -> Optional[str]:
        """Reverse lookup: who is carrying ``device`` (None if nobody)."""
        return self._device_to_userid.get(device)

    @property
    def active_sessions(self) -> int:
        """Number of logged-in users."""
        return len(self._sessions)

    # -- access control ---------------------------------------------------------

    def check_query_allowed(self, querier_userid: str, target_username: str) -> UserRecord:
        """Enforce §2's pre-query checks.

        Verifies the querier is logged in, the target exists and is
        logged in, and the target's access rights admit the querier.
        Returns the target's record on success.
        """
        if querier_userid not in self._sessions:
            raise NotLoggedInError(f"querier {querier_userid!r} is not logged in")
        target = self.user_by_name(target_username)
        if target.userid not in self._sessions:
            raise NotLoggedInError(f"target user {target_username!r} is not logged in")
        if not target.may_be_located_by(querier_userid):
            raise AccessDeniedError(
                f"user {querier_userid!r} may not locate {target_username!r}"
            )
        return target
