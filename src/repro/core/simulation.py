"""The end-to-end BIPS simulation facade.

Wires every substrate together — floor plan, workstations on the §5
duty cycle, the LAN, the central server, walking users with scanning
handhelds — and reports tracking quality against ground truth.

Typical use::

    sim = BIPSSimulation(plan=academic_department())
    alice = sim.add_user("u-alice", "Alice")
    sim.login("u-alice")
    sim.walk("u-alice", start_room="lab-1", hops=5)
    sim.run(until_seconds=600)
    print(sim.server.locate("u-alice", "Alice"))
    print(sim.tracking_report().describe())
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional, Sequence

from repro.building.floorplan import FloorPlan
from repro.building.layouts import academic_department
from repro.bluetooth.address import BDAddr
from repro.bluetooth.btclock import CLKN_WRAP, BluetoothClock
from repro.bluetooth.constants import NUM_INQUIRY_FREQUENCIES
from repro.bluetooth.device import BluetoothDevice
from repro.bluetooth.scan import InquiryScanner
from repro.bluetooth.swarm import InquiryScanSwarm, SwarmSlave
from repro.lan.messages import LocationQuery, LoginRequest, PathQuery
from repro.lan.transport import LANTransport
from repro.mobility.walker import BuildingWalker, WalkTimeline
from repro.obs.events import EventBus, ServerBrownout, WorkstationFailed
from repro.obs.metrics import MetricsRegistry
from repro.radio.interference import SharedBand
from repro.sim.batch import resolve_engine
from repro.sim.clock import seconds_from_ticks, ticks_from_seconds
from repro.sim.kernel import Kernel
from repro.sim.rng import RandomStream

from .config import BIPSConfig
from .registry import VisibilityPolicy
from .server import BIPSServer
from .workstation import Workstation, WorkstationSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan
    from repro.obs.flight import FlightRecorder
    from repro.obs.profiling import Profiler
    from repro.obs.tracing import SpanTracer

logger = logging.getLogger(__name__)

#: Detection latency is bounded by the operational cycle (~15.4 s) plus
#: the miss-threshold hysteresis; buckets cover a few cycles.
_DETECTION_LATENCY_BUCKETS = (1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 30.0, 45.0, 60.0, 120.0)

#: Vendor block for workstation radios (distinct from handhelds).
_WORKSTATION_ADDR_BASE = 0x000B_0000_0000
#: Vendor block for user handhelds.
_HANDHELD_ADDR_BASE = 0x000A_0000_0000


@dataclass
class TrackedUser:
    """A simulated user: identity, device, movement, and LAN inbox."""

    userid: str
    username: str
    device: BluetoothDevice
    password: str
    timeline: Optional[WalkTimeline] = None
    inbox: list[Any] = field(default_factory=list)
    scanners: list["InquiryScanner | SwarmSlave"] = field(default_factory=list)

    @property
    def endpoint(self) -> str:
        """This user's LAN endpoint name."""
        return f"user:{self.userid}"


@dataclass(frozen=True)
class UserTrackingReport:
    """Tracking quality for one user over the run."""

    userid: str
    accuracy: float  # fraction of time the DB room matched ground truth
    transitions: int
    detected_transitions: int
    mean_detection_latency_seconds: Optional[float]
    detection_latencies_seconds: tuple[float, ...] = ()

    @property
    def detection_rate(self) -> float:
        """Fraction of room changes the system noticed."""
        if self.transitions == 0:
            return 1.0
        return self.detected_transitions / self.transitions


@dataclass(frozen=True)
class TrackingReport:
    """Aggregate tracking quality over all walking users."""

    users: tuple[UserTrackingReport, ...]
    horizon_seconds: float

    @property
    def mean_accuracy(self) -> float:
        """Mean per-user accuracy."""
        if not self.users:
            return 1.0
        return sum(user.accuracy for user in self.users) / len(self.users)

    @property
    def mean_detection_latency_seconds(self) -> Optional[float]:
        """Mean detection latency over users that had any detections."""
        values = [
            user.mean_detection_latency_seconds
            for user in self.users
            if user.mean_detection_latency_seconds is not None
        ]
        if not values:
            return None
        return sum(values) / len(values)

    @property
    def all_detection_latencies_seconds(self) -> list[float]:
        """Every detection latency across all users (for distributions)."""
        values: list[float] = []
        for user in self.users:
            values.extend(user.detection_latencies_seconds)
        return values

    def latency_percentile(self, q: float) -> Optional[float]:
        """The q-th percentile detection latency, None without samples."""
        from repro.analysis.stats import percentile

        values = self.all_detection_latencies_seconds
        if not values:
            return None
        return percentile(values, q)

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"tracking report over {self.horizon_seconds:.0f}s "
            f"({len(self.users)} walking users)"
        ]
        for user in self.users:
            latency = (
                f"{user.mean_detection_latency_seconds:.1f}s"
                if user.mean_detection_latency_seconds is not None
                else "n/a"
            )
            lines.append(
                f"  {user.userid}: accuracy={user.accuracy * 100:.1f}% "
                f"transitions={user.detected_transitions}/{user.transitions} "
                f"mean detection latency={latency}"
            )
        lines.append(f"  mean accuracy: {self.mean_accuracy * 100:.1f}%")
        return "\n".join(lines)


class BIPSSimulation:
    """A complete BIPS deployment in one object."""

    def __init__(
        self,
        plan: Optional[FloorPlan] = None,
        config: Optional[BIPSConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[EventBus] = None,
        faults: Optional["FaultPlan"] = None,
        spans: Optional["SpanTracer"] = None,
        profiler: Optional["Profiler"] = None,
        flight: Optional["FlightRecorder"] = None,
        engine: Optional[str] = None,
    ) -> None:
        self.plan = plan if plan is not None else academic_department()
        self.plan.validate()
        self.config = config if config is not None else BIPSConfig()
        # Engine choice is an execution knob, not part of the config:
        # it never reaches the config digest, so cache keys and trial
        # seeds are identical on either engine (like BIPS_SIM_SCHEDULER).
        self.engine = resolve_engine(engine)
        # One registry and one event bus span the whole pipeline; callers
        # may supply their own (e.g. to aggregate several simulations).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events if events is not None else EventBus()
        self.spans = spans
        self.profiler = profiler
        self.flight = flight
        if flight is not None:
            # Every fault-window event dumps the ring automatically.
            flight.arm(self.events, WorkstationFailed, ServerBrownout)
        self.kernel = Kernel(metrics=self.metrics, spans=spans, profiler=profiler)
        self.rng = RandomStream(self.config.seed, "bips")
        # Fault plans draw from their own seed-derived streams, so a
        # chaos run perturbs delivery, never the simulation's draws.
        self.faults = faults if faults is not None and not faults.is_noop else None
        self._faults_scheduled = False
        lan_rng = self.rng.child("lan")
        self.lan = LANTransport(
            self.kernel,
            latency=self.config.lan_latency,
            loss_probability=self.config.lan_loss_probability,
            rng=lan_rng,
            metrics=self.metrics,
            fault_injector=(
                self.faults.lan_injector(self.metrics)
                if self.faults is not None
                else None
            ),
            spans=spans,
        )
        staleness_ticks = (
            ticks_from_seconds(self.config.staleness_horizon_seconds)
            if self.config.staleness_horizon_seconds > 0
            else None
        )
        self.server = BIPSServer(
            self.kernel,
            self.lan,
            self.plan,
            staleness_horizon_ticks=staleness_ticks,
            metrics=self.metrics,
            events=self.events,
            spans=spans,
        )
        self._retry_policy = self.config.retry_policy
        if self._retry_policy is None and self.faults is not None:
            self._retry_policy = self.faults.profile.retry_policy
        self.workstations: dict[str, Workstation] = {}
        self._devices_by_address: dict[BDAddr, BluetoothDevice] = {}
        self._build_workstations()
        self._users: dict[str, TrackedUser] = {}
        self._walker = BuildingWalker(
            self.plan,
            self.rng.child("walker"),
            speed_model=self.config.speed_model,
            dwell_low_seconds=self.config.dwell_low_seconds,
            dwell_high_seconds=self.config.dwell_high_seconds,
        )
        self._next_query_id = 1
        self._horizon_tick = 0
        self._tracking_latencies_observed = False
        # Batched engine: one swarm per room's piconet, created lazily.
        self._swarms: dict[str, InquiryScanSwarm] = {}

    def _build_workstations(self) -> None:
        room_ids = self.plan.room_ids()
        cycle = self.config.policy.operational_cycle_ticks
        ws_rng = self.rng.child("workstations")
        self.band: Optional[SharedBand] = (
            SharedBand(self.rng.child("band")) if self.config.model_interference else None
        )
        schedules = {}
        for index, room_id in enumerate(room_ids):
            offset = (index * cycle) // len(room_ids) if self.config.stagger_workstations else 0
            device = BluetoothDevice(
                address=BDAddr(_WORKSTATION_ADDR_BASE + index),
                clock=BluetoothClock(offset=ws_rng.randint(0, CLKN_WRAP - 1)),
                name=f"ws-{room_id}",
            )
            reachable = None
            if self.band is not None:
                # Register first with an activity predicate bound to the
                # schedule the workstation is about to build; the
                # schedule is deterministic in (policy, offset), so
                # build it here for the predicate.
                schedule = self.config.policy.build_schedule(start_tick=offset)
                schedules[room_id] = schedule
                self.band.register(room_id, schedule.is_listening)
                reachable = self.band.survival_predicate(room_id)
            self.workstations[room_id] = Workstation(
                kernel=self.kernel,
                workstation_id=f"ws:{room_id}",
                room_id=room_id,
                device=device,
                policy=self.config.policy,
                lan=self.lan,
                schedule_offset_ticks=offset,
                miss_threshold=self.config.miss_threshold,
                refresh_interval_cycles=self.config.refresh_interval_cycles,
                device_directory=(
                    self._devices_by_address.get if self.config.enroll_users else None
                ),
                reachable=reachable,
                push_payload_bytes=self.config.push_navigation_bytes,
                retry_policy=self._retry_policy,
                metrics=self.metrics,
                events=self.events,
                spans=self.spans,
            )
        if self.band is not None:
            # Adjacent rooms' piconets are within interference range.
            for passage in self.plan.passages:
                self.band.connect(passage.room_a, passage.room_b)

    # -- users ---------------------------------------------------------------

    def add_user(
        self,
        userid: str,
        username: str,
        password: str = "secret",
        policy: VisibilityPolicy = VisibilityPolicy.EVERYONE,
        allowed_queriers: Optional[set[str]] = None,
    ) -> TrackedUser:
        """Register a user (the off-line procedure) and give them a device."""
        if userid in self._users:
            raise ValueError(f"user {userid!r} already exists in the simulation")
        self.server.registry.register(
            userid, username, password, policy=policy, allowed_queriers=allowed_queriers
        )
        device_rng = self.rng.child("device", userid)
        device = BluetoothDevice(
            address=BDAddr(_HANDHELD_ADDR_BASE + len(self._users)),
            clock=BluetoothClock(offset=device_rng.randint(0, CLKN_WRAP - 1)),
            base_phase=device_rng.randint(0, NUM_INQUIRY_FREQUENCIES - 1),
            name=username,
        )
        user = TrackedUser(userid=userid, username=username, device=device, password=password)
        self._users[userid] = user
        self._devices_by_address[device.address] = device
        self.lan.register(user.endpoint, lambda _source, message: user.inbox.append(message))
        return user

    def user(self, userid: str) -> TrackedUser:
        """Look up a simulated user."""
        return self._users[userid]

    def login(self, userid: str) -> None:
        """Bind the user's device (direct server call, §2's login)."""
        user = self._users[userid]
        self.server.registry.login(
            userid, user.password, user.device.address, self.kernel.now
        )

    def login_via_lan(self, userid: str) -> None:
        """Log in through the LAN protocol (the handheld's real path).

        The :class:`~repro.lan.messages.LoginResponse` lands in the
        user's inbox after the round trip; run the simulation forward to
        see it.
        """
        user = self._users[userid]
        self.lan.send(
            user.endpoint,
            self.server.endpoint,
            LoginRequest(
                sent_tick=self.kernel.now,
                userid=userid,
                password=user.password,
                device=user.device.address,
            ),
        )

    def logout(self, userid: str) -> None:
        """End the user's session and stop tracking their device."""
        self.server.logout_user(userid)

    # -- movement ----------------------------------------------------------------

    def walk(
        self, userid: str, start_room: str, hops: int, start_at_seconds: float = 0.0
    ) -> WalkTimeline:
        """Send the user on a random walk; returns the ground truth."""
        user = self._users[userid]
        timeline = self._walker.random_timeline(
            start_room, hops, start_tick=ticks_from_seconds(start_at_seconds)
        )
        self._attach_timeline(user, timeline)
        return timeline

    def follow_route(
        self, userid: str, route: Sequence[str], start_at_seconds: float = 0.0
    ) -> WalkTimeline:
        """Send the user along an explicit room route."""
        user = self._users[userid]
        timeline = self._walker.timeline(
            route, start_tick=ticks_from_seconds(start_at_seconds)
        )
        self._attach_timeline(user, timeline)
        return timeline

    def _swarm_for(self, room_id: str) -> InquiryScanSwarm:
        """The room piconet's swarm (batched engine), created lazily."""
        swarm = self._swarms.get(room_id)
        if swarm is None:
            workstation = self.workstations[room_id]
            swarm = InquiryScanSwarm(
                self.kernel,
                workstation.schedule,
                workstation.channel,
                config=self.config.handheld_scan_config(),
                metrics=self.metrics,
                name=room_id,
            )
            self._swarms[room_id] = swarm
        return swarm

    def _make_scanner(
        self,
        room_id: str,
        device: BluetoothDevice,
        rng: RandomStream,
        scan_config,
        horizon_tick: int,
        name: str,
    ) -> "InquiryScanner | SwarmSlave":
        """One scanning presence in a room's piconet, on either engine.

        Both branches take the same RNG stream and defaults, so a run
        replays byte-identically whichever engine builds it.
        """
        if self.engine == "batched":
            return self._swarm_for(room_id).add_slave(
                address=device.address,
                rng=rng,
                clock=device.clock,
                base_phase=device.base_phase,
                horizon_tick=horizon_tick,
                name=name,
            )
        workstation = self.workstations[room_id]
        return InquiryScanner(
            kernel=self.kernel,
            address=device.address,
            schedule=workstation.schedule,
            channel=workstation.channel,
            rng=rng,
            config=scan_config,
            clock=device.clock,
            base_phase=device.base_phase,
            horizon_tick=horizon_tick,
            name=name,
            metrics=self.metrics,
        )

    def _attach_timeline(self, user: TrackedUser, timeline: WalkTimeline) -> None:
        if user.timeline is not None:
            raise ValueError(f"user {user.userid!r} already has a walk attached")
        user.timeline = timeline
        scan_config = self.config.handheld_scan_config()
        for visit_index, visit in enumerate(timeline.visits):
            scanner = self._make_scanner(
                visit.room_id,
                user.device,
                rng=self.rng.child("scan", user.userid, str(visit_index)),
                scan_config=scan_config,
                horizon_tick=visit.leave_tick if visit.leave_tick is not None else (1 << 62),
                name=f"{user.userid}@{visit.room_id}",
            )
            user.scanners.append(scanner)
            self.kernel.schedule_at(
                max(visit.enter_tick, self.kernel.now),
                lambda s=scanner: s.start(),
                label=f"enter:{user.userid}",
            )
            if visit.leave_tick is not None:
                self.kernel.schedule_at(
                    visit.leave_tick,
                    lambda s=scanner: s.stop(),
                    label=f"leave:{user.userid}",
                )
            self._maybe_attach_overlap(user, visit, visit_index, scan_config)

    def _maybe_attach_overlap(self, user, visit, visit_index, scan_config) -> None:
        """Coverage spill: the device also answers a neighbouring piconet
        for a fraction of this visit (see BIPSConfig.coverage_overlap_fraction)."""
        fraction = self.config.coverage_overlap_fraction
        if fraction <= 0.0:
            return
        neighbors = [room for room, _ in self.plan.neighbors(visit.room_id)]
        if not neighbors:
            return
        if visit.leave_tick is None:
            # Open-ended final visits have no known dwell to scale by.
            return
        overlap_rng = self.rng.child("overlap", user.userid, str(visit_index))
        duration = max(0, visit.leave_tick - visit.enter_tick)
        spill_ticks = int(duration * fraction)
        if spill_ticks <= 0:
            return
        neighbor_room = overlap_rng.choice(neighbors)
        start = visit.enter_tick + overlap_rng.randint(0, max(0, duration - spill_ticks))
        scanner = self._make_scanner(
            neighbor_room,
            user.device,
            rng=overlap_rng.child("scan"),
            scan_config=scan_config,
            horizon_tick=start + spill_ticks,
            name=f"{user.userid}~{neighbor_room}",
        )
        user.scanners.append(scanner)
        self.kernel.schedule_at(
            max(start, self.kernel.now),
            lambda s=scanner: s.start(),
            label=f"spill:{user.userid}",
        )
        self.kernel.schedule_at(
            max(start + spill_ticks, self.kernel.now),
            lambda s=scanner: s.stop(),
            label=f"spill-end:{user.userid}",
        )

    # -- queries over the LAN ---------------------------------------------------

    def query_location_via_lan(self, querier_userid: str, target_username: str) -> int:
        """Send a LocationQuery from the querier's endpoint; returns its id.

        The response lands in the querier's :attr:`TrackedUser.inbox`
        after the LAN round trip (run the simulation forward to see it).
        """
        user = self._users[querier_userid]
        query_id = self._next_query_id
        self._next_query_id += 1
        self.lan.send(
            user.endpoint,
            self.server.endpoint,
            LocationQuery(
                sent_tick=self.kernel.now,
                querier_userid=querier_userid,
                target_username=target_username,
                query_id=query_id,
            ),
        )
        return query_id

    def query_path_via_lan(self, querier_userid: str, target_username: str) -> int:
        """Send a PathQuery from the querier's endpoint; returns its id."""
        user = self._users[querier_userid]
        query_id = self._next_query_id
        self._next_query_id += 1
        self.lan.send(
            user.endpoint,
            self.server.endpoint,
            PathQuery(
                sent_tick=self.kernel.now,
                querier_userid=querier_userid,
                target_username=target_username,
                query_id=query_id,
            ),
        )
        return query_id

    # -- failure injection ---------------------------------------------------------

    def fail_workstation(self, room_id: str, at_seconds: Optional[float] = None) -> None:
        """Crash the workstation of ``room_id`` (now, or at a future time)."""
        workstation = self.workstations[room_id]
        logger.info("injecting failure into workstation %s", room_id)
        if at_seconds is None:
            workstation.set_failed(True)
            return
        self.kernel.schedule_at(
            max(self.kernel.now, ticks_from_seconds(at_seconds)),
            lambda: workstation.set_failed(True),
            label=f"fail:{room_id}",
        )

    def recover_workstation(self, room_id: str, at_seconds: Optional[float] = None) -> None:
        """Bring a crashed workstation back (now, or at a future time)."""
        workstation = self.workstations[room_id]
        if at_seconds is None:
            workstation.set_failed(False)
            return
        self.kernel.schedule_at(
            max(self.kernel.now, ticks_from_seconds(at_seconds)),
            lambda: workstation.set_failed(False),
            label=f"recover:{room_id}",
        )

    # -- execution ---------------------------------------------------------------

    def run(self, until_seconds: float) -> None:
        """Advance the simulation to ``until_seconds`` of simulated time."""
        horizon = ticks_from_seconds(until_seconds)
        logger.debug(
            "running %d workstations to t=%.1fs", len(self.workstations), until_seconds
        )
        for workstation in self.workstations.values():
            workstation.start(horizon)
        self._schedule_faults(horizon)
        self._horizon_tick = max(self._horizon_tick, horizon)
        self.kernel.run_until(horizon)

    def _schedule_faults(self, horizon_tick: int) -> None:
        """Expand the fault plan into scheduled crash/brownout events.

        Runs once, against the first ``run`` horizon: fault windows are
        part of the experiment's design, not of how many times the
        caller steps the clock.
        """
        if self.faults is None or self._faults_scheduled:
            return
        self._faults_scheduled = True
        self.metrics.gauge("faults.active").set(1)
        for room_id in sorted(self.workstations):
            for start, end in self.faults.crash_windows(room_id, horizon_tick):
                self.fail_workstation(room_id, at_seconds=seconds_from_ticks(start))
                self.recover_workstation(room_id, at_seconds=seconds_from_ticks(end))
        for start, end in self.faults.brownout_windows(horizon_tick):
            self.kernel.schedule_at(
                max(self.kernel.now, start),
                lambda: self.server.set_brownout(True),
                label="fault:brownout",
            )
            self.kernel.schedule_at(
                max(self.kernel.now, end),
                lambda: self.server.set_brownout(False),
                label="fault:brownout-end",
            )

    def system_snapshot(self) -> list["WorkstationSnapshot"]:
        """Per-workstation operational telemetry (admin-console view)."""
        return [ws.snapshot() for ws in self.workstations.values()]

    # -- metrics -----------------------------------------------------------------

    def _finalize_metrics(self) -> None:
        """Fold end-of-run state into the registry.

        Gauges are recomputed from current state on every call; the
        detection-latency histogram (derived from the whole-run tracking
        report) is filled once, so repeated reporting cannot
        double-count observations.
        """
        for room_id, workstation in self.workstations.items():
            self.metrics.gauge("core.piconet_occupancy", room=room_id).set(
                workstation.present_count
            )
        self.metrics.gauge("db.known_devices").set(self.server.location_db.known_count)
        self.metrics.gauge("db.tracked_devices").set(
            self.server.location_db.tracked_count
        )
        self.metrics.gauge("db.stale_devices").set(
            len(self.server.location_db.stale_devices(self.kernel.now))
        )
        self.metrics.gauge("db.presences_superseded").set(
            self.server.location_db.presences_superseded
        )
        simulated = self.kernel.now_seconds
        self.metrics.gauge("sim.simulated_seconds").set(simulated)
        # "Ticks per second" without a wall clock: event throughput per
        # simulated second, the deterministic proxy future perf PRs diff.
        self.metrics.gauge("sim.events_per_simulated_second").set(
            self.kernel.events_fired / simulated if simulated > 0 else 0.0
        )
        if not self._tracking_latencies_observed:
            self._tracking_latencies_observed = True
            histogram = self.metrics.histogram(
                "core.detection_latency_seconds", buckets=_DETECTION_LATENCY_BUCKETS
            )
            for latency in self.tracking_report().all_detection_latencies_seconds:
                histogram.observe(latency)

    def metrics_report(self) -> str:
        """The whole pipeline's telemetry as a text scoreboard."""
        self._finalize_metrics()
        return self.metrics.render_scoreboard(title="BIPS pipeline metrics")

    def metrics_snapshot(self) -> list[dict]:
        """The registry snapshot with end-of-run gauges folded in."""
        self._finalize_metrics()
        return self.metrics.snapshot()

    def write_metrics(self, path: str) -> int:
        """Export all metrics as JSONL; returns the record count."""
        self._finalize_metrics()
        return self.metrics.write_jsonl(path)

    # -- evaluation -----------------------------------------------------------------

    def tracking_report(self) -> TrackingReport:
        """Compare the location database against ground truth."""
        reports = []
        for user in self._users.values():
            if user.timeline is None:
                continue
            reports.append(self._report_for(user))
        return TrackingReport(
            users=tuple(reports),
            horizon_seconds=seconds_from_ticks(self._horizon_tick),
        )

    def _report_for(self, user: TrackedUser) -> UserTrackingReport:
        assert user.timeline is not None
        horizon = self._horizon_tick
        truth = _timeline_segments(user.timeline, horizon)
        events = self.server.location_db.history_of(user.device.address)
        db_segments = _db_segments(events, horizon)
        matched = _overlap_ticks(truth, db_segments)
        walk_start = truth[0][0] if truth else 0
        walk_span = max(1, horizon - walk_start)
        accuracy = matched / walk_span

        latencies = []
        transitions = 0
        detected = 0
        for visit in user.timeline.visits:
            enter = visit.enter_tick
            leave = visit.leave_tick if visit.leave_tick is not None else horizon
            if enter >= horizon:
                continue
            transitions += 1
            first_seen = None
            for event in events:
                if event.room_id == visit.room_id and enter <= event.tick:
                    first_seen = event.tick
                    break
            if first_seen is not None and first_seen < leave:
                detected += 1
                latencies.append(seconds_from_ticks(first_seen - enter))
        mean_latency = sum(latencies) / len(latencies) if latencies else None
        return UserTrackingReport(
            userid=user.userid,
            accuracy=accuracy,
            transitions=transitions,
            detected_transitions=detected,
            mean_detection_latency_seconds=mean_latency,
            detection_latencies_seconds=tuple(latencies),
        )


def _timeline_segments(timeline: WalkTimeline, horizon: int) -> list[tuple[int, int, str]]:
    """Ground truth as ``(start, end, room)`` segments clipped to horizon."""
    segments = []
    for visit in timeline.visits:
        start = visit.enter_tick
        end = visit.leave_tick if visit.leave_tick is not None else horizon
        start, end = min(start, horizon), min(end, horizon)
        if start < end:
            segments.append((start, end, visit.room_id))
    return segments


def _db_segments(events, horizon: int) -> list[tuple[int, int, str]]:
    """Location-database belief as ``(start, end, room)`` segments."""
    segments = []
    for index, event in enumerate(events):
        if event.room_id is None:
            continue
        start = event.tick
        end = events[index + 1].tick if index + 1 < len(events) else horizon
        start, end = min(start, horizon), min(end, horizon)
        if start < end:
            segments.append((start, end, event.room_id))
    return segments


def _overlap_ticks(
    truth: list[tuple[int, int, str]], belief: list[tuple[int, int, str]]
) -> int:
    """Total ticks where the belief room equals the truth room."""
    total = 0
    for t_start, t_end, t_room in truth:
        for b_start, b_end, b_room in belief:
            if b_room != t_room:
                continue
            lo = max(t_start, b_start)
            hi = min(t_end, b_end)
            if lo < hi:
                total += hi - lo
    return total
