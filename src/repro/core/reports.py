"""Operational analytics over the location database.

What a facilities operator or the BIPS administrator reads off the
central server: live occupancy, per-room visit statistics, and the
room-to-room movement matrix.  Everything is computed from the
database's own state and history — no access to simulation ground
truth — so these reports describe what the *deployed* system would
actually show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bluetooth.address import BDAddr
from repro.building.floorplan import FloorPlan
from repro.sim.clock import seconds_from_ticks

from .location_db import LocationDatabase
from .registry import UserRegistry


@dataclass(frozen=True)
class RoomOccupancy:
    """Live occupancy of one room."""

    room_id: str
    devices: tuple[BDAddr, ...]
    usernames: tuple[str, ...]

    @property
    def count(self) -> int:
        """Number of devices currently attributed to the room."""
        return len(self.devices)


@dataclass(frozen=True)
class VisitStats:
    """Aggregate visit statistics for one room (from DB history)."""

    room_id: str
    visits: int
    total_dwell_seconds: float

    @property
    def mean_dwell_seconds(self) -> Optional[float]:
        """Mean completed-visit dwell, None if no visits completed."""
        if self.visits == 0:
            return None
        return self.total_dwell_seconds / self.visits


class OccupancyReport:
    """Analytics over a location database + registry + floor plan."""

    def __init__(
        self,
        location_db: LocationDatabase,
        registry: UserRegistry,
        plan: FloorPlan,
    ) -> None:
        self.location_db = location_db
        self.registry = registry
        self.plan = plan

    # -- live state ---------------------------------------------------------

    def occupancy(self) -> list[RoomOccupancy]:
        """Current occupancy of every room, in floor-plan order."""
        result = []
        for room_id in self.plan.room_ids():
            devices = tuple(
                sorted(self.location_db.occupants_of(room_id), key=lambda a: a.value)
            )
            usernames = tuple(
                self._username_of(device) for device in devices
            )
            result.append(
                RoomOccupancy(room_id=room_id, devices=devices, usernames=usernames)
            )
        return result

    def _username_of(self, device: BDAddr) -> str:
        userid = self.registry.userid_of_device(device)
        if userid is None:
            return str(device)
        try:
            return self.registry.user(userid).username
        except Exception:  # unknown id despite binding: show the id
            return userid

    def total_tracked(self) -> int:
        """Devices currently attributed to some room."""
        return sum(room.count for room in self.occupancy())

    # -- history-derived statistics ---------------------------------------------

    def visit_stats(self, devices: list[BDAddr]) -> dict[str, VisitStats]:
        """Per-room visit counts and dwell times from DB history.

        A "visit" is a maximal run of history in one room, closed by the
        next event (a move or an absence); the final open-ended stay is
        not counted (its dwell is unknown).
        """
        visits: dict[str, int] = {}
        dwell: dict[str, float] = {}
        for device in devices:
            history = self.location_db.history_of(device)
            for current, following in zip(history, history[1:]):
                if current.room_id is None:
                    continue
                visits[current.room_id] = visits.get(current.room_id, 0) + 1
                dwell[current.room_id] = dwell.get(current.room_id, 0.0) + (
                    seconds_from_ticks(following.tick - current.tick)
                )
        return {
            room_id: VisitStats(
                room_id=room_id,
                visits=visits.get(room_id, 0),
                total_dwell_seconds=dwell.get(room_id, 0.0),
            )
            for room_id in self.plan.room_ids()
        }

    def movement_matrix(self, devices: list[BDAddr]) -> dict[tuple[str, str], int]:
        """Counts of observed room→room moves (absences skipped).

        The matrix is what corridor-utilisation or space-planning
        studies read; only transitions the *database* observed count, so
        missed detections are invisible here (as they would be in a real
        deployment).
        """
        matrix: dict[tuple[str, str], int] = {}
        for device in devices:
            previous_room: Optional[str] = None
            for event in self.location_db.history_of(device):
                if event.room_id is None:
                    continue
                if previous_room is not None and previous_room != event.room_id:
                    key = (previous_room, event.room_id)
                    matrix[key] = matrix.get(key, 0) + 1
                previous_room = event.room_id
        return matrix

    def busiest_rooms(self, devices: list[BDAddr], top: int = 5) -> list[VisitStats]:
        """Rooms by completed-visit count, descending."""
        if top <= 0:
            raise ValueError(f"top must be positive: {top}")
        stats = sorted(
            self.visit_stats(devices).values(),
            key=lambda s: s.visits,
            reverse=True,
        )
        return stats[:top]
