"""The BIPS workstation: one room's piconet master.

"The main task of every BIPS workstation is discovering and enrolling
those mobile users who enter its coverage area.  Once a handheld device
has been enrolled, its position is communicated to the central server
machine" (§2).

The workstation runs the §5 duty cycle (inquiry window + serving
window), folds each window's sightings through the
:class:`~repro.core.tracker.PresenceTracker`, and ships only the deltas
over the LAN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.bluetooth.connection import DisconnectReason
from repro.bluetooth.device import BluetoothDevice
from repro.bluetooth.inquiry import InquiryProcedure
from repro.bluetooth.link import RoundRobinLinkScheduler
from repro.bluetooth.page import PageOutcome
from repro.bluetooth.paging import SlotLevelPager
from repro.bluetooth.piconet import Piconet, PiconetFullError
from repro.lan.messages import PresenceInvalidation, PresenceUpdate, WorkstationHello
from repro.lan.transport import LANTransport
from repro.obs.events import (
    DeltaPushed,
    InquiryStarted,
    WorkstationFailed,
    WorkstationRecovered,
)
from repro.sim.kernel import Kernel

from .scheduler import MasterSchedulingPolicy
from .tracker import PresenceTracker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.recovery import RetryPolicy
    from repro.obs.events import EventBus
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracing import SpanTracer

#: Resolves a discovered BD_ADDR to the device to page (None = cannot
#: page it; the workstation then tracks by inquiry alone).
DeviceDirectory = Callable[[object], Optional[BluetoothDevice]]


@dataclass(frozen=True)
class WorkstationSnapshot:
    """Point-in-time operational telemetry of one workstation."""

    workstation_id: str
    room_id: str
    failed: bool
    present_count: int
    piconet_active: int
    windows_evaluated: int
    updates_sent: int
    refreshes_sent: int
    invalidations_received: int
    enrolled: int
    responses_received: int
    collisions: int


class Workstation:
    """One fixed master covering one room."""

    def __init__(
        self,
        kernel: Kernel,
        workstation_id: str,
        room_id: str,
        device: BluetoothDevice,
        policy: MasterSchedulingPolicy,
        lan: LANTransport,
        server_endpoint: str = "server",
        schedule_offset_ticks: int = 0,
        miss_threshold: int = 2,
        refresh_interval_cycles: int = 0,
        device_directory: Optional[DeviceDirectory] = None,
        reachable: Optional[Callable] = None,
        push_payload_bytes: int = 0,
        retry_policy: Optional["RetryPolicy"] = None,
        metrics: Optional["MetricsRegistry"] = None,
        events: Optional["EventBus"] = None,
        spans: Optional["SpanTracer"] = None,
    ) -> None:
        """Args beyond the obvious:

        refresh_interval_cycles: every N cycles, re-send a presence for
            each device the tracker believes present even though nothing
            changed.  Pure delta reporting (§2) is soft-state-free: one
            lost presence message strands a device until its next room
            change.  A low-rate refresh bounds that damage.  0 (the
            default, the paper's design) disables it.
        device_directory: enables §2 *enrolment*: newly present devices
            are paged (slot-level §3.2 rendezvous) during the serving
            window and joined to the piconet, up to the seven-slave
            AM_ADDR limit.  None (default) tracks by inquiry alone.
        push_payload_bytes: when positive (and enrolment is on), the
            workstation pushes an application message of this size to
            every connected slave each cycle over DM1 slots — the
            paper's "serving the slaves applications" (e.g. refreshed
            navigation paths for the handheld display).
        retry_policy: when set, every message to the server goes through
            :meth:`LANTransport.send_reliable` under this policy —
            bounded retransmission with exponential backoff — instead of
            the paper's fire-and-forget delta push.  None (the default)
            keeps the original semantics.
        """
        if push_payload_bytes < 0:
            raise ValueError(f"negative push payload: {push_payload_bytes}")
        if schedule_offset_ticks < 0:
            raise ValueError(f"negative schedule offset: {schedule_offset_ticks}")
        if refresh_interval_cycles < 0:
            raise ValueError(f"negative refresh interval: {refresh_interval_cycles}")
        self.kernel = kernel
        self.workstation_id = workstation_id
        self.room_id = room_id
        self.device = device
        self.policy = policy
        self.lan = lan
        self.server_endpoint = server_endpoint
        self.schedule = policy.build_schedule(start_tick=schedule_offset_ticks)
        self._metrics = metrics
        self._events = events
        self._spans = spans
        self.inquiry = InquiryProcedure(
            kernel,
            self.schedule,
            name=workstation_id,
            reachable=reachable,
            metrics=metrics,
            events=events,
            spans=spans,
        )
        self.tracker = PresenceTracker(miss_threshold=miss_threshold)
        self.refresh_interval_cycles = refresh_interval_cycles
        self.device_directory = device_directory
        self.pager = SlotLevelPager(kernel, name=workstation_id)
        self.piconet = Piconet(master=device.address)
        self.push_payload_bytes = push_payload_bytes
        self.link = RoundRobinLinkScheduler()
        self._last_window_end: Optional[int] = None
        self.updates_sent = 0
        self.refreshes_sent = 0
        self.windows_evaluated = 0
        self.invalidations_received = 0
        self.enrolled = 0
        self.enroll_failures = 0
        self.enroll_rejected_full = 0
        self.retry_policy = retry_policy
        self.failed = False
        self.reregistrations = 0
        self._started = False
        self._scheduled_until = 0
        self._paging: set = set()
        # The workstation itself receives nothing in the base protocol,
        # but registering makes it addressable for extensions
        # (invalidations, and acks for reliable delivery).
        lan.register(workstation_id, self._on_message)

    @property
    def channel(self):
        """The response channel handheld scanners attach to."""
        return self.inquiry.channel

    def start(self, horizon_tick: int) -> None:
        """Announce to the server and schedule per-window evaluations.

        May be called again later with a larger horizon to extend the
        evaluation schedule (the simulation facade does this when
        ``run`` is invoked repeatedly).
        """
        if not self._started:
            self._started = True
            self._push(
                WorkstationHello(
                    sent_tick=self.kernel.now,
                    workstation_id=self.workstation_id,
                    room_id=self.room_id,
                )
            )
        begin = max(self._scheduled_until, self.kernel.now)
        for window in self.schedule.windows.iter_windows(begin, horizon_tick):
            if window.end > horizon_tick or window.end <= self._scheduled_until:
                continue
            self.kernel.schedule_at(
                window.end,
                lambda w=window: self._evaluate_window(w.start, w.end),
                label=f"eval:{self.workstation_id}",
            )
        self._scheduled_until = max(self._scheduled_until, horizon_tick)

    def set_failed(self, failed: bool) -> None:
        """Inject (or clear) a workstation crash.

        While failed, the workstation evaluates nothing and sends
        nothing — its radio and its process are down; users in the room
        go untracked until recovery.  The crash also takes its LAN
        endpoint off the wire (messages to it drop silently) and aborts
        its un-acked reliable sends.  Recovery starts from a clean
        tracker (the crashed process lost its state), so everyone still
        present is re-reported on the first window after recovery.
        """
        if failed == self.failed:
            return
        self.failed = failed
        if failed:
            for connection in list(self.piconet.members):
                self.piconet.detach(
                    connection.slave, self.kernel.now, DisconnectReason.LOCAL_CLOSE
                )
            self.lan.unregister(self.workstation_id)
            self.lan.abort_pending(self.workstation_id)
        else:
            self._recover()
        if self._metrics is not None:
            self._metrics.counter(
                "core.workstation_failures" if failed else "core.workstation_recoveries"
            ).inc()
        if self._events is not None:
            event_type = WorkstationFailed if failed else WorkstationRecovered
            self._events.emit(
                event_type(
                    tick=self.kernel.now,
                    workstation_id=self.workstation_id,
                    room_id=self.room_id,
                )
            )

    def _recover(self) -> None:
        """Restart after a crash: re-register, re-announce, start clean.

        The restarted process re-registers its LAN endpoint, tells the
        server it is back (a fresh ``WorkstationHello``), and rebuilds
        tracking state from nothing — the first window after recovery
        re-reports everyone still in the room, which is what heals the
        database's stale attributions.
        """
        self.tracker = PresenceTracker(miss_threshold=self.tracker.miss_threshold)
        self.inquiry.reset()
        self.inquiry.last_seen.clear()
        self.lan.register(self.workstation_id, self._on_message)
        self.reregistrations += 1
        if self._metrics is not None:
            self._metrics.counter("core.workstation_reregistrations").inc()
        self._push(
            WorkstationHello(
                sent_tick=self.kernel.now,
                workstation_id=self.workstation_id,
                room_id=self.room_id,
            )
        )

    def _push(self, message: object) -> None:
        """The single chokepoint for workstation→server traffic.

        Routes through reliable delivery when a retry policy is
        configured; recovery-path code must use this (never
        ``lan.send`` directly) so restarts cannot silently regress to
        fire-and-forget — lint rule FLT001 enforces it.
        """
        if self.retry_policy is not None:
            self.lan.send_reliable(
                self.workstation_id, self.server_endpoint, message, self.retry_policy
            )
        else:
            self.lan.send(self.workstation_id, self.server_endpoint, message)

    def _evaluate_window(self, window_start: int, window_end: int) -> None:
        if self.failed:
            return
        seen = {
            address
            for address, tick in self.inquiry.last_seen.items()
            if tick >= window_start
        }
        deltas = self.tracker.observe_cycle(seen, tick=window_end)
        self.windows_evaluated += 1
        spans = self._spans
        if spans is None:
            self._finish_window(window_start, window_end, seen, deltas)
            return
        # The duty-cycle window is the trace root: everything the window
        # causes — delta sends, LAN transits, DB applies — nests under it.
        span = spans.begin(
            "bt.window",
            "bluetooth",
            window_start,
            parent=None,
            ws=self.workstation_id,
            room=self.room_id,
            presences=len(deltas.new_presences),
            absences=len(deltas.new_absences),
        )
        prev = spans.push(span)
        try:
            self._finish_window(window_start, window_end, seen, deltas)
        finally:
            spans.pop(prev)
            spans.end(span, window_end)

    def _finish_window(self, window_start: int, window_end: int, seen, deltas) -> None:
        """The window's consequences (split out so a span can wrap them)."""
        if self._metrics is not None:
            self._metrics.counter("core.inquiry_windows_evaluated").inc()
        if self._events is not None:
            self._events.emit(
                InquiryStarted(
                    tick=window_start,
                    workstation_id=self.workstation_id,
                    room_id=self.room_id,
                    window_index=self.windows_evaluated - 1,
                )
            )
            if deltas.new_presences or deltas.new_absences:
                self._events.emit(
                    DeltaPushed(
                        tick=window_end,
                        workstation_id=self.workstation_id,
                        room_id=self.room_id,
                        presences=len(deltas.new_presences),
                        absences=len(deltas.new_absences),
                    )
                )
        for address in deltas.new_presences:
            self._send_update(address, present=True)
            self._maybe_enroll(address)
        for address in deltas.new_absences:
            self._send_update(address, present=False)
            # Forget the device so a later return counts as a fresh
            # discovery (first response after re-entering the room).
            self.inquiry.forget(address)
            self.inquiry.last_seen.pop(address, None)
            self.piconet.detach(address, self.kernel.now, DisconnectReason.DEVICE_LEFT)
        # Serving phase: exchange data with every connected slave, which
        # keeps the links' supervision alive while the user is present.
        for connection in self.piconet.members:
            connection.exchange(self.kernel.now)
        if self._metrics is not None:
            self._metrics.gauge(
                "core.piconet_occupancy", room=self.room_id
            ).set(self.present_count)
        self._serve_previous_window(window_start)
        self._last_window_end = window_end
        if (
            self.refresh_interval_cycles
            and deltas.cycle_index % self.refresh_interval_cycles
            == self.refresh_interval_cycles - 1
        ):
            self._send_refresh(seen, deltas.new_presences)

    def _serve_previous_window(self, current_window_start: int) -> None:
        """Account the serving interval that just ended.

        The serving phase between the previous inquiry window's end and
        this window's start has elapsed; replay it through the DM1 link
        scheduler (pure slot arithmetic — nothing else used the radio).
        """
        if self._last_window_end is None:
            return
        serving_start = self._last_window_end
        serving_end = current_window_start
        if serving_end <= serving_start:
            return
        # Sync the polling wheel with current membership.
        member_ids = {str(conn.slave) for conn in self.piconet.members}
        for slave_id in self.link.slave_ids:
            if slave_id not in member_ids:
                self.link.detach(slave_id)
        for slave_id in member_ids:
            self.link.attach(slave_id)
        if self.push_payload_bytes:
            for slave_id in sorted(member_ids):
                self.link.enqueue(slave_id, self.push_payload_bytes, serving_start)
        self.link.serve_window(serving_start, serving_end)

    def _send_refresh(self, seen, already_sent) -> None:
        """Soft-state refresh: re-assert present devices.

        Only devices actually sighted in the window just evaluated are
        refreshed — re-asserting a device that has started missing
        windows could race a fresher attribution from the room it moved
        to and flap the database.
        """
        skip = set(already_sent)
        present = self.tracker.present_devices
        for address in sorted(seen & present, key=lambda a: a.value):
            if address in skip:
                continue
            self.refreshes_sent += 1
            self._send_update(address, present=True)

    def _maybe_enroll(self, address) -> None:
        """§2 enrolment: page the newly present device during serving."""
        if self.device_directory is None or address in self._paging:
            return
        if self.piconet.connection_of(address) is not None:
            return
        target = self.device_directory(address)
        if target is None:
            return
        if self.piconet.is_full:
            self.enroll_rejected_full += 1
            return
        self._paging.add(address)
        self.pager.page(target, lambda outcome: self._on_page_done(address, outcome))

    def _on_page_done(self, address, outcome) -> None:
        self._paging.discard(address)
        if self.failed:
            return
        if outcome.result.outcome is not PageOutcome.CONNECTED:
            self.enroll_failures += 1
            return
        if address not in self.tracker.present_devices or address in self.piconet:
            return  # departed (or raced) while we paged
        try:
            self.piconet.attach(address, self.kernel.now)
        except PiconetFullError:
            self.enroll_rejected_full += 1
            return
        self.enrolled += 1

    def _send_update(self, address, present: bool) -> None:
        self.updates_sent += 1
        if self._metrics is not None:
            self._metrics.counter(
                "core.presence_updates_sent",
                kind="presence" if present else "absence",
            ).inc()
        self._push(
            PresenceUpdate(
                sent_tick=self.kernel.now,
                workstation_id=self.workstation_id,
                device=address,
                present=present,
                room_id=self.room_id,
            )
        )

    def _on_message(self, source: str, message: object) -> None:
        if isinstance(message, PresenceInvalidation):
            self._handle_invalidation(message)

    def _handle_invalidation(self, message: PresenceInvalidation) -> None:
        """The server re-attributed a device we believed present.

        Drop it from the tracker (without emitting an absence delta —
        the database has already moved on) so that, should the device
        come back, the next sighting produces a fresh presence delta.
        """
        self.invalidations_received += 1
        self.tracker.force_absent(message.device)
        self.inquiry.forget(message.device)
        self.inquiry.last_seen.pop(message.device, None)
        self.piconet.detach(message.device, self.kernel.now, DisconnectReason.DEVICE_LEFT)

    @property
    def present_count(self) -> int:
        """Devices the tracker currently believes are in the room."""
        return len(self.tracker.present_devices)

    def snapshot(self) -> "WorkstationSnapshot":
        """The operational telemetry an admin console would poll."""
        return WorkstationSnapshot(
            workstation_id=self.workstation_id,
            room_id=self.room_id,
            failed=self.failed,
            present_count=self.present_count,
            piconet_active=self.piconet.active_count,
            windows_evaluated=self.windows_evaluated,
            updates_sent=self.updates_sent,
            refreshes_sent=self.refreshes_sent,
            invalidations_received=self.invalidations_received,
            enrolled=self.enrolled,
            responses_received=self.inquiry.responses_received,
            collisions=self.inquiry.channel.stats.collision_events,
        )

    def __repr__(self) -> str:
        return (
            f"Workstation(id={self.workstation_id!r}, room={self.room_id!r}, "
            f"present={self.present_count})"
        )
