"""Deployment planning: from a floor plan to a workstation rollout.

Before installing workstations, the BIPS operator needs to know: does
one piconet cover each room?  Which rooms will interfere?  What master
schedule fits the population's walking speed?  What tracking quality
should the deployment expect?  This module answers those questions from
the same models the simulator runs on, so the plan and the simulation
cannot drift apart.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.tables import render_table
from repro.building.floorplan import FloorPlan
from repro.mobility.speeds import PedestrianSpeedModel
from repro.radio.interference import InterferenceEstimate
from repro.radio.propagation import CoverageModel

from .pathfinding import AllPairsPaths
from .scheduler import MasterSchedulingPolicy


@dataclass(frozen=True)
class RoomAssessment:
    """Radio feasibility of one room."""

    room_id: str
    label: str
    diagonal_m: float
    covered: bool
    neighbor_count: int
    interference_loss: float

    @property
    def needs_attention(self) -> bool:
        """Whether the room should be flagged in the plan."""
        return not self.covered or self.interference_loss > 0.05


@dataclass
class DeploymentPlan:
    """The rollout report for one building."""

    policy: MasterSchedulingPolicy
    coverage: CoverageModel
    rooms: list[RoomAssessment] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    graph_diameter_m: float = 0.0

    @property
    def workstation_count(self) -> int:
        """One workstation per significant room (§2)."""
        return len(self.rooms)

    @property
    def all_rooms_covered(self) -> bool:
        """Whether a single piconet suffices everywhere."""
        return all(room.covered for room in self.rooms)

    @property
    def worst_case_walk_m(self) -> float:
        """Longest shortest path a navigation answer can produce."""
        return self.graph_diameter_m

    def room(self, room_id: str) -> RoomAssessment:
        """Find one room's assessment."""
        for assessment in self.rooms:
            if assessment.room_id == room_id:
                return assessment
        raise KeyError(f"no assessment for room {room_id!r}")

    def render(self) -> str:
        """The full plan as text."""
        rows = [
            [
                assessment.label,
                f"{assessment.diagonal_m:.1f}m",
                "ok" if assessment.covered else "TOO BIG",
                assessment.neighbor_count,
                f"{assessment.interference_loss * 100:.1f}%",
                "!" if assessment.needs_attention else "",
            ]
            for assessment in self.rooms
        ]
        table = render_table(
            ["room", "diagonal", "coverage", "neighbors", "est. interference", ""],
            rows,
            title=(
                f"Deployment plan: {self.workstation_count} workstations, "
                f"{self.policy.describe()}"
            ),
        )
        lines = [table]
        lines.append(
            f"longest navigation answer: {self.worst_case_walk_m:.0f} m "
            f"(~{self.worst_case_walk_m / 1.3:.0f} s walk)"
        )
        if self.warnings:
            lines.append("warnings:")
            lines.extend(f"  - {warning}" for warning in self.warnings)
        else:
            lines.append("no warnings.")
        return "\n".join(lines)


def plan_deployment(
    plan: FloorPlan,
    coverage: Optional[CoverageModel] = None,
    speed_model: Optional[PedestrianSpeedModel] = None,
    inquiry_window_seconds: float = 3.84,
) -> DeploymentPlan:
    """Assess a floor plan and derive the master schedule.

    Raises:
        FloorPlanError: if the plan is structurally invalid.
    """
    plan.validate()
    coverage = coverage if coverage is not None else CoverageModel()
    speed_model = speed_model if speed_model is not None else PedestrianSpeedModel()
    policy = MasterSchedulingPolicy.from_building_parameters(
        coverage_diameter_m=coverage.diameter_m,
        mean_walking_speed_mps=speed_model.mean_walking_speed_mps,
        inquiry_window_seconds=inquiry_window_seconds,
    )

    deployment = DeploymentPlan(policy=policy, coverage=coverage)
    for room_id in plan.room_ids():
        room = plan.rooms[room_id]
        diagonal = room.footprint.diagonal
        # The workstation sits at the station point; the farthest corner
        # must be inside the coverage disc.
        corners = [
            (room.footprint.x_min, room.footprint.y_min),
            (room.footprint.x_min, room.footprint.y_max),
            (room.footprint.x_max, room.footprint.y_min),
            (room.footprint.x_max, room.footprint.y_max),
        ]
        station = room.station_point
        reach = max(
            math.hypot(x - station.x, y - station.y) for x, y in corners
        )
        covered = coverage.in_range(reach)
        neighbors = len(plan.neighbors(room_id))
        loss = InterferenceEstimate(neighbors).packet_loss_probability
        deployment.rooms.append(
            RoomAssessment(
                room_id=room_id,
                label=room.label,
                diagonal_m=diagonal,
                covered=covered,
                neighbor_count=neighbors,
                interference_loss=loss,
            )
        )

    deployment.graph_diameter_m = AllPairsPaths.from_floorplan(plan).diameter()

    if not policy.covers_full_dwell():
        deployment.warnings.append(
            f"inquiry window {policy.inquiry_window_seconds:.2f}s is shorter than "
            "one 2.56s train dwell: different-train users will flap"
        )
    for assessment in deployment.rooms:
        if not assessment.covered:
            deployment.warnings.append(
                f"room {assessment.label!r} exceeds one piconet's coverage; "
                "add a second workstation or reposition the station point"
            )
        elif assessment.interference_loss > 0.05:
            deployment.warnings.append(
                f"room {assessment.label!r} has {assessment.neighbor_count} "
                "neighbouring piconets "
                f"(≈{assessment.interference_loss * 100:.0f}% response loss)"
            )
    crossing = policy.operational_cycle_seconds
    if crossing < policy.inquiry_window_seconds * 2:
        deployment.warnings.append(
            "the operational cycle leaves less serving time than inquiry time"
        )
    return deployment
