"""The master scheduling policy of §5.

The workstation radio splits its time between device discovery and
serving connected slaves.  The paper derives the split from two
quantities:

* the inquiry window needed to discover ≈95 % of up to 20 slaves:
  **3.84 s** (one full 2.56 s train dwell catches every same-train
  slave, plus 1.28 s on the other train catches ≈90 % of the rest);
* the mean time a walking user spends crossing a piconet:
  **20 m / 1.3 m/s ≈ 15.4 s**, which bounds the operational cycle if
  every crossing user is to meet at least one inquiry window.

The resulting tracking load is 3.84 / 15.4 ≈ **24 %** of the cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bluetooth.constants import TICKS_PER_TRAIN_DWELL
from repro.bluetooth.hopping import (
    InquiryTransmitSchedule,
    Train,
    TrainStrategy,
    periodic_inquiry,
)
from repro.mobility.residence import crossing_time_seconds
from repro.mobility.speeds import MEAN_WALKING_SPEED_MPS
from repro.sim.clock import ticks_from_seconds


@dataclass(frozen=True)
class MasterSchedulingPolicy:
    """How a BIPS workstation divides its operational cycle."""

    inquiry_window_seconds: float = 3.84
    operational_cycle_seconds: float = 15.4
    train_strategy: TrainStrategy = TrainStrategy.ALTERNATE
    start_train: Train = Train.A

    def __post_init__(self) -> None:
        if self.inquiry_window_seconds <= 0:
            raise ValueError(
                f"inquiry window must be positive: {self.inquiry_window_seconds}"
            )
        if self.inquiry_window_seconds > self.operational_cycle_seconds:
            raise ValueError(
                f"inquiry window {self.inquiry_window_seconds}s exceeds the "
                f"cycle {self.operational_cycle_seconds}s"
            )

    @classmethod
    def from_building_parameters(
        cls,
        coverage_diameter_m: float = 20.0,
        mean_walking_speed_mps: float = MEAN_WALKING_SPEED_MPS,
        inquiry_window_seconds: float = 3.84,
    ) -> "MasterSchedulingPolicy":
        """Derive the §5 policy from physical parameters.

        The operational cycle equals the mean piconet crossing time so
        that every passing user overlaps at least one inquiry window.
        """
        cycle = crossing_time_seconds(coverage_diameter_m, mean_walking_speed_mps)
        return cls(
            inquiry_window_seconds=inquiry_window_seconds,
            operational_cycle_seconds=cycle,
        )

    @property
    def serving_window_seconds(self) -> float:
        """Time per cycle left for serving slave applications."""
        return self.operational_cycle_seconds - self.inquiry_window_seconds

    @property
    def tracking_load(self) -> float:
        """Fraction of the cycle spent discovering (§5: ≈0.24)."""
        return self.inquiry_window_seconds / self.operational_cycle_seconds

    @property
    def inquiry_window_ticks(self) -> int:
        """Inquiry window in ticks."""
        return ticks_from_seconds(self.inquiry_window_seconds)

    @property
    def operational_cycle_ticks(self) -> int:
        """Operational cycle in ticks."""
        return ticks_from_seconds(self.operational_cycle_seconds)

    def covers_full_dwell(self) -> bool:
        """Whether the window spans at least one full train dwell.

        A window shorter than 2.56 s cannot even guarantee same-train
        discovery, which is why the paper anchors the policy at
        3.84 s = 1.5 dwells.
        """
        return self.inquiry_window_ticks >= TICKS_PER_TRAIN_DWELL

    def build_schedule(self, start_tick: int = 0) -> InquiryTransmitSchedule:
        """Materialise the periodic transmit schedule for one master.

        ``start_tick`` staggers neighbouring workstations so their
        presence reports do not all burst onto the LAN simultaneously.
        """
        return periodic_inquiry(
            window_ticks=self.inquiry_window_ticks,
            period_ticks=self.operational_cycle_ticks,
            start=start_tick,
            strategy=self.train_strategy,
            start_train=self.start_train,
        )

    def describe(self) -> str:
        """One-line summary matching the §5 wording."""
        return (
            f"inquiry {self.inquiry_window_seconds:.2f}s + serving "
            f"{self.serving_window_seconds:.2f}s per {self.operational_cycle_seconds:.1f}s "
            f"cycle ({self.tracking_load * 100:.1f}% tracking load)"
        )
