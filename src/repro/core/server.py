"""The BIPS central server.

One machine on the LAN holds the user registry, the location database,
and the precomputed shortest paths, and answers every message type of
the BIPS protocol (§2).  The server is a pure message-driven component:
workstations push presence deltas, user sessions send login/logout and
queries, and responses flow back to the sending endpoint.

A direct-call surface (:meth:`locate`, :meth:`navigate`) exposes the
same logic synchronously for tools and examples.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.building.floorplan import FloorPlan
from repro.lan.messages import (
    LocationQuery,
    LocationResponse,
    LoginRequest,
    LoginResponse,
    LogoutRequest,
    PathQuery,
    PathResponse,
    PresenceInvalidation,
    PresenceUpdate,
    WorkstationHello,
)
from repro.lan.transport import LANTransport, UnknownEndpointError
from repro.obs.events import EventBus, QueryServed, ServerBrownout, UserLoggedIn
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import SpanTracer
from repro.sim.kernel import Kernel

from .errors import BIPSError
from .location_db import LocationDatabase
from .pathfinding import AllPairsPaths, PathResult
from .query import QueryEngine
from .registry import UserRegistry


class BIPSServer:
    """The central server machine of the BIPS architecture."""

    def __init__(
        self,
        kernel: Kernel,
        lan: LANTransport,
        plan: FloorPlan,
        endpoint: str = "server",
        history_limit: int = 1000,
        staleness_horizon_ticks: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[EventBus] = None,
        spans: Optional[SpanTracer] = None,
    ) -> None:
        plan.validate()
        self.kernel = kernel
        self.lan = lan
        self.plan = plan
        self.endpoint = endpoint
        self.registry = UserRegistry()
        self.location_db = LocationDatabase(
            history_limit=history_limit,
            staleness_horizon_ticks=staleness_horizon_ticks,
        )
        # Off-line precomputation (§2): all shortest paths up front.
        self.paths = AllPairsPaths.from_floorplan(plan)
        self.queries = QueryEngine(self.registry, self.location_db, self.paths)
        self._workstation_rooms: dict[str, str] = {}
        self.presence_updates_received = 0
        self.unknown_workstation_updates = 0
        self.invalidations_sent = 0
        self.browned_out = False
        self.brownouts = 0
        self._metrics = metrics
        self._events = events
        self._spans = spans
        if metrics is not None:
            self._m_presence = metrics.counter("core.presence_updates_received")
            self._m_push_lag = metrics.histogram(
                "core.delta_push_lag_ticks", buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
            )
            self._m_known = metrics.gauge("db.known_devices")
            self._m_tracked = metrics.gauge("db.tracked_devices")
        lan.register(endpoint, self._on_message)

    # -- fault injection ---------------------------------------------------------

    def set_brownout(self, active: bool) -> None:
        """Inject (or clear) a central-server brownout.

        While browned out the server's LAN endpoint is off the wire:
        presence deltas and queries sent to it drop silently (reliable
        senders keep retrying with backoff and bridge short brownouts).
        The database itself survives — a brownout is the machine
        overloaded or rebooting, not losing its disk.
        """
        if active == self.browned_out:
            return
        self.browned_out = active
        if active:
            self.brownouts += 1
            if self._metrics is not None:
                self._metrics.counter("core.server_brownouts").inc()
            self.lan.unregister(self.endpoint)
        else:
            self.lan.register(self.endpoint, self._on_message)
        if self._events is not None:
            self._events.emit(ServerBrownout(tick=self.kernel.now, active=active))

    # -- message handling -------------------------------------------------------

    def _on_message(self, source: str, message: Any) -> None:
        if isinstance(message, PresenceUpdate):
            self._handle_presence(message)
        elif isinstance(message, WorkstationHello):
            self._workstation_rooms[message.workstation_id] = message.room_id
        elif isinstance(message, LoginRequest):
            self._handle_login(source, message)
        elif isinstance(message, LogoutRequest):
            self._handle_logout(message)
        elif isinstance(message, LocationQuery):
            self._handle_location_query(source, message)
        elif isinstance(message, PathQuery):
            self._handle_path_query(source, message)
        # Unknown message types are ignored (forward compatibility).

    def _handle_presence(self, message: PresenceUpdate) -> None:
        self.presence_updates_received += 1
        if self._metrics is not None:
            self._m_presence.inc()
            # Delta-push lag: workstation decision to database update.
            self._m_push_lag.observe(self.kernel.now - message.sent_tick)
        room = self._workstation_rooms.get(message.workstation_id)
        if room is None and message.room_id is not None:
            # The hello was lost; learn the mapping from the update.
            room = message.room_id
            self._workstation_rooms[message.workstation_id] = room
        if room is None:
            self.unknown_workstation_updates += 1
            return
        spans = self._spans
        if spans is None:
            self._apply_presence(message, room)
            return
        span = spans.begin(
            "core.db_apply",
            "core",
            self.kernel.now,
            device=str(message.device),
            room=room,
            present=message.present,
            lag_ticks=self.kernel.now - message.sent_tick,
        )
        prev = spans.push(span)
        try:
            self._apply_presence(message, room)
        finally:
            spans.pop(prev)
            spans.end(span, self.kernel.now)

    def _apply_presence(self, message: PresenceUpdate, room: str) -> None:
        """Apply one delta to the location DB (split out for the span)."""
        if message.present:
            previous = self.location_db.record_of(message.device)
            self.location_db.apply_presence(
                message.device, room, self.kernel.now, message.workstation_id
            )
            if (
                previous is not None
                and previous.room_id is not None
                and previous.room_id != room
            ):
                self._invalidate_previous_room(message.device, previous.room_id, room)
        else:
            self.location_db.apply_absence(
                message.device, room, self.kernel.now, message.workstation_id
            )
        if self._metrics is not None:
            self._m_known.set(self.location_db.known_count)
            self._m_tracked.set(self.location_db.tracked_count)

    def _invalidate_previous_room(self, device, previous_room: str, new_room: str) -> None:
        """Tell the previous room's workstation the device moved on."""
        workstation_id = next(
            (
                ws_id
                for ws_id, ws_room in self._workstation_rooms.items()
                if ws_room == previous_room
            ),
            None,
        )
        if workstation_id is None:
            return
        try:
            self.lan.send(
                self.endpoint,
                workstation_id,
                PresenceInvalidation(
                    sent_tick=self.kernel.now, device=device, new_room_id=new_room
                ),
            )
        except UnknownEndpointError:
            # The workstation is gone (crashed / never wired up); its
            # tracker state dies with it, so there is nothing to fix.
            return
        self.invalidations_sent += 1

    def _handle_login(self, source: str, message: LoginRequest) -> None:
        try:
            self.registry.login(
                message.userid, message.password, message.device, self.kernel.now
            )
        except BIPSError as error:
            response = LoginResponse(
                sent_tick=self.kernel.now,
                userid=message.userid,
                ok=False,
                reason=str(error),
            )
        else:
            response = LoginResponse(
                sent_tick=self.kernel.now, userid=message.userid, ok=True
            )
        if self._metrics is not None:
            self._metrics.counter(
                "core.logins", outcome="ok" if response.ok else "rejected"
            ).inc()
        if self._events is not None:
            self._events.emit(
                UserLoggedIn(tick=self.kernel.now, userid=message.userid, ok=response.ok)
            )
        self.lan.send(self.endpoint, source, response)

    def _handle_logout(self, message: LogoutRequest) -> None:
        self.logout_user(message.userid)

    def logout_user(self, userid: str) -> None:
        """End a session and purge the device's tracking state.

        The device's current workstation is invalidated so that, should
        the user log in again without leaving the room, the next
        inquiry window produces a fresh presence delta (otherwise the
        tracker's unchanged "present" state would never be re-reported
        and the re-logged-in user would stay position-unknown).
        """
        try:
            device = self.registry.device_of(userid)
        except BIPSError:
            device = None
        self.registry.logout(userid)
        if device is None:
            return
        last_room = self.location_db.current_room(device)
        self.location_db.forget_device(device)
        if last_room is not None:
            self._invalidate_previous_room(device, last_room, new_room="")

    def _handle_location_query(self, source: str, message: LocationQuery) -> None:
        try:
            room, stale = self.queries.locate_full(
                message.querier_userid, message.target_username, self.kernel.now
            )
        except BIPSError as error:
            response = LocationResponse(
                sent_tick=self.kernel.now,
                query_id=message.query_id,
                ok=False,
                reason=str(error),
            )
        else:
            response = LocationResponse(
                sent_tick=self.kernel.now,
                query_id=message.query_id,
                ok=True,
                room_id=room,
                stale=stale,
            )
            if stale and self._metrics is not None:
                self._metrics.counter("core.stale_answers").inc()
        self._note_query("location", message, response.ok)
        self.lan.send(self.endpoint, source, response)

    def _handle_path_query(self, source: str, message: PathQuery) -> None:
        try:
            path = self.queries.navigate(message.querier_userid, message.target_username)
        except BIPSError as error:
            response = PathResponse(
                sent_tick=self.kernel.now,
                query_id=message.query_id,
                ok=False,
                reason=str(error),
            )
        else:
            response = PathResponse(
                sent_tick=self.kernel.now,
                query_id=message.query_id,
                ok=path is not None,
                rooms=path.rooms if path is not None else (),
                total_distance_m=path.total_distance_m if path is not None else 0.0,
                reason="" if path is not None else "position currently unknown",
            )
        self._note_query("path", message, response.ok)
        self.lan.send(self.endpoint, source, response)

    def _note_query(self, kind: str, message, ok: bool) -> None:
        """Metrics/events for one served query.

        Query latency here is the server-side view: request send to
        answer computed (the response's own LAN hop is accounted by the
        transport's delivery histogram).
        """
        if self._metrics is not None:
            self._metrics.counter("core.queries_served", kind=kind).inc()
            if not ok:
                self._metrics.counter("core.queries_failed", kind=kind).inc()
            self._metrics.histogram(
                "core.query_latency_ticks", buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
            ).observe(self.kernel.now - message.sent_tick)
        if self._spans is not None:
            self._spans.instant(
                "core.query",
                "core",
                self.kernel.now,
                kind=kind,
                ok=ok,
                lag_ticks=self.kernel.now - message.sent_tick,
            )
        if self._events is not None:
            self._events.emit(
                QueryServed(
                    tick=self.kernel.now,
                    kind=kind,
                    querier=message.querier_userid,
                    target=message.target_username,
                    ok=ok,
                )
            )

    # -- direct-call surface ------------------------------------------------------

    def locate(self, querier_userid: str, target_username: str) -> Optional[str]:
        """Synchronous location query (same semantics as the LAN path)."""
        if self._metrics is not None:
            self._metrics.counter("core.queries_served", kind="location").inc()
        room = self.queries.locate(querier_userid, target_username)
        if self._spans is not None:
            # Direct calls have no transit, hence no lag.
            self._spans.instant(
                "core.query", "core", self.kernel.now,
                kind="location", ok=room is not None, lag_ticks=0,
            )
        return room

    def navigate(self, querier_userid: str, target_username: str) -> Optional[PathResult]:
        """Synchronous navigation query."""
        if self._metrics is not None:
            self._metrics.counter("core.queries_served", kind="path").inc()
        path = self.queries.navigate(querier_userid, target_username)
        if self._spans is not None:
            self._spans.instant(
                "core.query", "core", self.kernel.now,
                kind="path", ok=path is not None, lag_ticks=0,
            )
        return path

    def locate_at_seconds(
        self, querier_userid: str, target_username: str, at_seconds: float
    ) -> Optional[str]:
        """Historical location query: where was the target at ``at_seconds``?"""
        from repro.sim.clock import ticks_from_seconds

        return self.queries.locate_at(
            querier_userid, target_username, ticks_from_seconds(at_seconds)
        )

    def room_of_workstation(self, workstation_id: str) -> Optional[str]:
        """Which room a workstation registered for."""
        return self._workstation_rooms.get(workstation_id)

    @property
    def workstation_count(self) -> int:
        """Number of workstations that have said hello."""
        return len(self._workstation_rooms)
