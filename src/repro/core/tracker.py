"""Presence tracking logic for one workstation.

"Every workstation has the task of computing the presence of those
mobile devices inside the piconet.  These presences are revealed at
fixed intervals of time.  In order to reduce the computational and
communication load of the system, a workstation updates the central
location database only when it reveals a new presence or a new
absence." (§2)

The tracker turns per-cycle *sighting sets* (which devices answered the
inquiry window) into presence/absence *deltas*.  Discovery is
probabilistic (§4: ≈95 % per 3.84 s window), so a single missed window
must not be read as departure: a device becomes absent only after
``miss_threshold`` consecutive silent windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.bluetooth.address import BDAddr


@dataclass(frozen=True)
class CycleDeltas:
    """What changed in one operational cycle."""

    cycle_index: int
    tick: int
    new_presences: tuple[BDAddr, ...]
    new_absences: tuple[BDAddr, ...]

    @property
    def is_empty(self) -> bool:
        """True when nothing needs reporting (the common, cheap case)."""
        return not self.new_presences and not self.new_absences


@dataclass
class _DeviceState:
    present: bool = False
    consecutive_misses: int = 0
    last_seen_cycle: int = -1


@dataclass
class PresenceTracker:
    """Delta-based presence tracking with miss hysteresis.

    Args:
        miss_threshold: consecutive inquiry windows a present device may
            stay silent before it is declared absent.  1 = trust every
            window (cheap but flappy at 95 % discovery probability);
            the default 2 makes a false absence a ≤0.25 % event per
            cycle while bounding absence-detection latency at two
            cycles (≈31 s on the §5 schedule).
    """

    miss_threshold: int = 2
    _states: dict[BDAddr, _DeviceState] = field(default_factory=dict)
    _cycle_index: int = 0
    presences_reported: int = 0
    absences_reported: int = 0

    def __post_init__(self) -> None:
        if self.miss_threshold < 1:
            raise ValueError(f"miss_threshold must be >= 1: {self.miss_threshold}")

    @property
    def present_devices(self) -> set[BDAddr]:
        """Devices currently believed present."""
        return {
            addr
            for addr, state in self._states.items()  # lint: disable=DET003 -- builds an unordered set; no iteration order escapes
            if state.present
        }

    @property
    def cycles_completed(self) -> int:
        """How many cycles have been evaluated."""
        return self._cycle_index

    def observe_cycle(self, seen: Iterable[BDAddr], tick: int) -> CycleDeltas:
        """Fold one inquiry window's sightings into the presence state.

        Returns the deltas to send to the central server (possibly
        empty).
        """
        seen_set = set(seen)
        new_presences: list[BDAddr] = []
        new_absences: list[BDAddr] = []

        for address in sorted(seen_set, key=lambda a: a.value):
            state = self._states.setdefault(address, _DeviceState())
            state.consecutive_misses = 0
            state.last_seen_cycle = self._cycle_index
            if not state.present:
                state.present = True
                new_presences.append(address)

        for address, state in sorted(
            self._states.items(), key=lambda item: item[0].value
        ):
            if address in seen_set or not state.present:
                continue
            state.consecutive_misses += 1
            if state.consecutive_misses >= self.miss_threshold:
                state.present = False
                new_absences.append(address)

        # Devices that were never declared present and have gone quiet
        # can be dropped entirely to keep the state bounded.
        for address, state in sorted(
            self._states.items(), key=lambda item: item[0].value
        ):
            if not state.present and self._cycle_index - state.last_seen_cycle > 10:
                del self._states[address]

        self._cycle_index += 1
        self.presences_reported += len(new_presences)
        self.absences_reported += len(new_absences)
        return CycleDeltas(
            cycle_index=self._cycle_index - 1,
            tick=tick,
            new_presences=tuple(sorted(new_presences, key=lambda a: a.value)),
            new_absences=tuple(sorted(new_absences, key=lambda a: a.value)),
        )

    def force_absent(self, address: BDAddr) -> bool:
        """Drop a device immediately (e.g. its user logged out).

        Returns True if it had been present.
        """
        state = self._states.pop(address, None)
        return bool(state and state.present)
