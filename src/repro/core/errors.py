"""BIPS service errors."""

from __future__ import annotations


class BIPSError(Exception):
    """Base class for all BIPS service errors."""


class RegistrationError(BIPSError):
    """User registration failed (duplicate userid/username, bad input)."""


class AuthenticationError(BIPSError):
    """Login rejected: unknown userid or wrong password."""


class NotLoggedInError(BIPSError):
    """The operation needs a live userid ↔ BD_ADDR binding."""


class AccessDeniedError(BIPSError):
    """The querier lacks the right to locate the target user (§2)."""


class UnknownUserError(BIPSError):
    """No registered user matches the given name or id."""


class UnknownRoomError(BIPSError):
    """A room id does not exist in the deployed floor plan."""
