"""Configuration for the end-to-end BIPS simulation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.bluetooth.scan import PhaseMode, ResponseMode, ScanConfig
from repro.lan.transport import LatencyModel
from repro.mobility.speeds import PedestrianSpeedModel

from .scheduler import MasterSchedulingPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.recovery import RetryPolicy


@dataclass(frozen=True)
class BIPSConfig:
    """All knobs of a full-system BIPS simulation.

    Defaults follow the paper: the §5 scheduling policy (3.84 s inquiry
    per 15.4 s cycle), room-granule tracking with a two-miss absence
    threshold, pedestrians in the [1.1, 1.5] m/s band, and a
    sub-millisecond office LAN.
    """

    seed: int = 20030101
    policy: MasterSchedulingPolicy = field(default_factory=MasterSchedulingPolicy)
    miss_threshold: int = 2
    lan_latency: LatencyModel = field(default_factory=LatencyModel)
    lan_loss_probability: float = 0.0
    speed_model: PedestrianSpeedModel = field(default_factory=PedestrianSpeedModel)
    dwell_low_seconds: float = 20.0
    dwell_high_seconds: float = 120.0
    #: Stagger workstation inquiry windows across the cycle so presence
    #: reports do not all burst onto the LAN at the same instant.
    stagger_workstations: bool = True
    #: Soft-state refresh: every N cycles a workstation re-asserts all
    #: its present devices, healing presence deltas lost on the LAN.
    #: 0 = pure delta reporting (the paper's design).
    refresh_interval_cycles: int = 0
    #: §2 enrolment: workstations page newly present devices during
    #: their serving window and join them to the piconet (up to the
    #: seven-slave AM_ADDR limit).  Tracking works without it; enabling
    #: it exercises the page/connection machinery end to end.
    enroll_users: bool = False
    #: With enrolment on, push an application message of this many bytes
    #: to every connected slave each cycle (the paper's "serving the
    #: slaves applications", e.g. a refreshed navigation path).  0 = no
    #: application traffic.
    push_navigation_bytes: int = 0
    #: Inter-piconet interference: piconets of adjacent rooms corrupt
    #: each other's inquiry responses with probability 1/79 per active
    #: neighbour (uncoordinated frequency hopping).  Off by default —
    #: the paper's one-piconet experiments have no neighbours.
    model_interference: bool = False
    #: Coverage overlap: a class-2 radio's 10 m disc does not stop at
    #: the wall, so a user near a boundary is sometimes heard by the
    #: *adjacent* room's workstation too.  For each room visit, with
    #: this fraction of the dwell the device also answers one random
    #: neighbouring piconet, making two workstations claim it — the
    #: stress case for the paper's one-room-per-device model.  0 (the
    #: default) is the paper's idealised room-granule radio.
    coverage_overlap_fraction: float = 0.0
    #: Mark a device's known position *stale* when no workstation has
    #: confirmed it for this long (the covering workstation may be
    #: down).  Queries still answer with the last known room but carry a
    #: staleness flag.  0 (the default) disables staleness marking.
    staleness_horizon_seconds: float = 0.0
    #: When set, workstations push every message to the server through
    #: the transport's reliable path (bounded retransmission with
    #: exponential backoff) instead of the paper's fire-and-forget
    #: deltas.  None keeps the original semantics; fault plans supply
    #: their own default policy (see ``repro.faults``).
    retry_policy: Optional["RetryPolicy"] = None

    def handheld_scan_config(self) -> ScanConfig:
        """Scan behaviour of user devices in the end-to-end simulation.

        Handhelds listen continuously and re-back-off after every
        response: with at most a handful of users per room, contention
        is negligible and the sparser responses keep the event count
        (and hence runtime) low.  The Figure-2 experiment, which *is*
        about contention, uses the denser CONTINUOUS mode explicitly.
        """
        return ScanConfig.continuous(
            phase_mode=PhaseMode.SEQUENCE,
            response_mode=ResponseMode.BACKOFF_EACH,
        )

    def __post_init__(self) -> None:
        if self.miss_threshold < 1:
            raise ValueError(f"miss_threshold must be >= 1: {self.miss_threshold}")
        if not 0.0 <= self.dwell_low_seconds <= self.dwell_high_seconds:
            raise ValueError(
                f"invalid dwell band: [{self.dwell_low_seconds}, {self.dwell_high_seconds}]"
            )
        if not 0.0 <= self.lan_loss_probability < 1.0:
            raise ValueError(f"loss probability out of range: {self.lan_loss_probability}")
        if self.refresh_interval_cycles < 0:
            raise ValueError(
                f"negative refresh interval: {self.refresh_interval_cycles}"
            )
        if self.push_navigation_bytes < 0:
            raise ValueError(
                f"negative push payload: {self.push_navigation_bytes}"
            )
        if not 0.0 <= self.coverage_overlap_fraction <= 0.5:
            raise ValueError(
                f"overlap fraction out of range: {self.coverage_overlap_fraction}"
            )
        if self.staleness_horizon_seconds < 0:
            raise ValueError(
                f"negative staleness horizon: {self.staleness_horizon_seconds}"
            )
