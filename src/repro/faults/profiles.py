"""Named fault profiles: how hostile is the deployment environment.

The paper assumes a benign office Ethernet and always-on workstations;
real BIPS-style deployments lose messages, crash workstations, and see
delayed deliveries (Opoku, arXiv:1209.3053; Shi & Gong, arXiv:2404.12529
list these as the dominant practical failure modes).  A
:class:`FaultProfile` bundles the rates of every supported fault kind so
that experiments, tests, and the CLI can name a whole failure scenario
with one token (``--faults lossy-lan``).

Profiles are *descriptions only*: all randomness lives in
:class:`~repro.faults.plan.FaultPlan`, which derives every decision from
the fault seed — never from the simulation's own streams — so enabling
faults does not perturb the fault-free draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping, Optional

from .recovery import RetryPolicy


@dataclass(frozen=True)
class FaultProfile:
    """Rates and magnitudes of every fault kind the planner can inject.

    All probabilities are per LAN message; durations are in (simulated)
    seconds.  A field left at zero disables that fault kind.
    """

    name: str
    #: LAN message faults (consulted by the transport per send).
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    delay_probability: float = 0.0
    delay_ms_low: float = 2.0
    delay_ms_high: float = 10.0
    #: Reordering is modelled as an outsized extra delay: the delayed
    #: message is overtaken by everything sent in the window behind it.
    reorder_probability: float = 0.0
    reorder_ms_low: float = 20.0
    reorder_ms_high: float = 60.0
    #: Workstation crash/restart: each workstation crashes this many
    #: times over the fault window, staying down for a uniform draw from
    #: the downtime band.
    crashes_per_workstation: int = 0
    crash_downtime_seconds_low: float = 20.0
    crash_downtime_seconds_high: float = 60.0
    #: Central-server brownouts: the server endpoint goes deaf (messages
    #: to it are dropped) for a uniform draw from the band.
    brownouts: int = 0
    brownout_seconds_low: float = 5.0
    brownout_seconds_high: float = 20.0
    #: Radio outages for single-master experiments (table1 and friends):
    #: the Bluetooth-only harnesses have no LAN or workstation process,
    #: so a "workstation crash" maps to the master's radio going deaf
    #: mid-trial.
    radio_outages_per_trial: int = 0
    radio_outage_seconds_low: float = 2.0
    radio_outage_seconds_high: float = 6.0
    #: Faults only fire before this simulated time (None = the whole
    #: run).  A finite window is what makes convergence testable: after
    #: it closes, the tracker must re-converge within a bounded number
    #: of inquiry cycles.
    active_seconds: Optional[float] = None
    #: Recovery mechanics paired with the profile: the retry policy
    #: workstations use for delta pushes while this profile is active
    #: (None = fire-and-forget, the paper's design).
    retry_policy: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        for field_name in (
            "drop_probability",
            "duplicate_probability",
            "delay_probability",
            "reorder_probability",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{field_name} out of range: {value}")
        for low, high in (
            (self.delay_ms_low, self.delay_ms_high),
            (self.reorder_ms_low, self.reorder_ms_high),
            (self.crash_downtime_seconds_low, self.crash_downtime_seconds_high),
            (self.brownout_seconds_low, self.brownout_seconds_high),
            (self.radio_outage_seconds_low, self.radio_outage_seconds_high),
        ):
            if not 0.0 <= low <= high:
                raise ValueError(f"invalid duration band: [{low}, {high}]")
        if self.crashes_per_workstation < 0 or self.brownouts < 0:
            raise ValueError("fault counts must be non-negative")
        if self.radio_outages_per_trial < 0:
            raise ValueError("fault counts must be non-negative")
        if self.active_seconds is not None and self.active_seconds <= 0:
            raise ValueError(f"active window must be positive: {self.active_seconds}")

    @property
    def has_lan_faults(self) -> bool:
        """Whether the transport needs an injector for this profile."""
        return any(
            probability > 0.0
            for probability in (
                self.drop_probability,
                self.duplicate_probability,
                self.delay_probability,
                self.reorder_probability,
            )
        )

    @property
    def is_noop(self) -> bool:
        """True for the ``none`` profile (and any all-zero custom one)."""
        return not (
            self.has_lan_faults
            or self.crashes_per_workstation
            or self.brownouts
            or self.radio_outages_per_trial
        )


#: The default recovery mechanics shipped with every fault-injecting
#: profile: four attempts, 8 ms initial timeout (an office-LAN RTT is
#: well under 1 ms), doubling with 2 ms of deterministic jitter.
DEFAULT_RETRY_POLICY = RetryPolicy()

#: Every fault-injecting profile stops after this much simulated time,
#: so convergence after the window closes is testable on the stock
#: profiles (runs shorter than this see faults throughout).
DEFAULT_ACTIVE_SECONDS = 300.0

#: The named profiles the CLI and the chaos suite iterate over.
PROFILES: Mapping[str, FaultProfile] = MappingProxyType(
    {
        "none": FaultProfile(name="none"),
        "lossy-lan": FaultProfile(
            name="lossy-lan",
            drop_probability=0.05,
            duplicate_probability=0.03,
            delay_probability=0.15,
            reorder_probability=0.05,
            active_seconds=DEFAULT_ACTIVE_SECONDS,
            retry_policy=DEFAULT_RETRY_POLICY,
        ),
        "flaky-workstations": FaultProfile(
            name="flaky-workstations",
            crashes_per_workstation=1,
            radio_outages_per_trial=1,
            active_seconds=DEFAULT_ACTIVE_SECONDS,
            retry_policy=DEFAULT_RETRY_POLICY,
        ),
        "brownout": FaultProfile(
            name="brownout",
            brownouts=2,
            active_seconds=DEFAULT_ACTIVE_SECONDS,
            retry_policy=DEFAULT_RETRY_POLICY,
        ),
        "chaos": FaultProfile(
            name="chaos",
            drop_probability=0.08,
            duplicate_probability=0.04,
            delay_probability=0.20,
            reorder_probability=0.08,
            crashes_per_workstation=1,
            brownouts=1,
            radio_outages_per_trial=2,
            active_seconds=DEFAULT_ACTIVE_SECONDS,
            retry_policy=DEFAULT_RETRY_POLICY,
        ),
    }
)


def profile_named(name: str) -> FaultProfile:
    """Look up a profile, failing with the list of known names."""
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise KeyError(f"unknown fault profile {name!r}; known: {known}") from None


def profile_names() -> list[str]:
    """Registered profile names, sorted (CLI ``choices``)."""
    return sorted(PROFILES)
