"""The fault plan: everything a chaos run will break, derived from a seed.

A :class:`FaultPlan` binds a :class:`~repro.faults.profiles.FaultProfile`
to a fault seed and deterministically expands it into concrete fault
events:

* a :class:`~repro.faults.injector.LANFaultInjector` for the transport;
* per-workstation crash windows (crash at ``start``, restart at ``end``);
* central-server brownout windows;
* per-trial radio outages for the Bluetooth-only experiment harnesses.

Every expansion draws from its own stream named after the thing it
breaks (``faults/ws/<room>``, ``faults/server``, ``faults/radio/<trial>``)
so the plan is independent of topology iteration order, worker count,
and everything else the determinism contract forbids.  The same
``(profile, seed)`` therefore breaks exactly the same things in a serial
run and under ``--jobs N``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sim.clock import ticks_from_seconds
from repro.sim.rng import RandomStream

from .injector import LANFaultInjector
from .profiles import FaultProfile, profile_named

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.kernel import Kernel

#: A half-open fault interval in ticks: the fault holds on
#: ``start <= tick < end``.
Window = tuple[int, int]


def _merge(windows: list[Window]) -> tuple[Window, ...]:
    """Sort and coalesce overlapping/adjacent windows."""
    merged: list[Window] = []
    for start, end in sorted(windows):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return tuple(merged)


def in_windows(windows: tuple[Window, ...], tick: int) -> bool:
    """Whether ``tick`` falls inside any of the (merged) windows."""
    return any(start <= tick < end for start, end in windows)


@dataclass(frozen=True)
class FaultPlan:
    """A profile bound to a fault seed; expands to concrete fault events."""

    profile: FaultProfile
    seed: int = 0

    @staticmethod
    def named(profile_name: str, seed: int = 0) -> "FaultPlan":
        """The plan for a registered profile name (CLI entry point)."""
        return FaultPlan(profile=profile_named(profile_name), seed=seed)

    @property
    def is_noop(self) -> bool:
        """Whether this plan injects nothing (the ``none`` profile)."""
        return self.profile.is_noop

    def active_until_tick(self) -> Optional[int]:
        """End of the fault window in ticks (None = never closes)."""
        if self.profile.active_seconds is None:
            return None
        return ticks_from_seconds(self.profile.active_seconds)

    # -- expansion --------------------------------------------------------

    def lan_injector(
        self, metrics: Optional["MetricsRegistry"] = None
    ) -> Optional[LANFaultInjector]:
        """The transport injection point, or None without LAN faults."""
        if not self.profile.has_lan_faults:
            return None
        return LANFaultInjector(
            self.profile,
            RandomStream(self.seed, "faults", "lan"),
            active_until_tick=self.active_until_tick(),
            metrics=metrics,
        )

    def crash_windows(self, room_id: str, horizon_tick: int) -> tuple[Window, ...]:
        """When the workstation of ``room_id`` is down (crash → restart)."""
        return self._windows(
            ("ws", room_id),
            count=self.profile.crashes_per_workstation,
            low_seconds=self.profile.crash_downtime_seconds_low,
            high_seconds=self.profile.crash_downtime_seconds_high,
            horizon_tick=horizon_tick,
        )

    def brownout_windows(self, horizon_tick: int) -> tuple[Window, ...]:
        """When the central server is browned out."""
        return self._windows(
            ("server",),
            count=self.profile.brownouts,
            low_seconds=self.profile.brownout_seconds_low,
            high_seconds=self.profile.brownout_seconds_high,
            horizon_tick=horizon_tick,
        )

    def radio_outages(self, trial_key: str, horizon_tick: int) -> tuple[Window, ...]:
        """Master radio downtime for one Bluetooth-only trial.

        The single-master harnesses (table1 and friends) have no LAN and
        no workstation process, so the profile's workstation-crash axis
        maps to the master's radio going deaf mid-trial; discovery then
        completes late (or not at all), degrading — not erasing — the
        experiment's output rows.
        """
        return self._windows(
            ("radio", trial_key),
            count=self.profile.radio_outages_per_trial,
            low_seconds=self.profile.radio_outage_seconds_low,
            high_seconds=self.profile.radio_outage_seconds_high,
            horizon_tick=horizon_tick,
        )

    def survival_predicate(self, trial_key: str, horizon_tick: int):
        """A channel reachability predicate enforcing the radio outages.

        Returns None when the profile has no radio-outage axis, so
        callers can pass the result straight to ``InquiryProcedure``.
        """
        outages = self.radio_outages(trial_key, horizon_tick)
        if not outages:
            return None
        return lambda packet, tick: not in_windows(outages, tick)

    def _windows(
        self,
        names: tuple[str, ...],
        count: int,
        low_seconds: float,
        high_seconds: float,
        horizon_tick: int,
    ) -> tuple[Window, ...]:
        """Draw ``count`` fault windows confined to the active window.

        Both the onset and the recovery are clamped inside the plan's
        active window, so "faults stop at T" really means the whole
        system is healthy again from T on — the precondition of every
        convergence invariant in the chaos suite.
        """
        if count <= 0 or horizon_tick <= 0:
            return ()
        limit = horizon_tick
        active_until = self.active_until_tick()
        if active_until is not None:
            limit = min(limit, active_until)
        if limit <= 1:
            return ()
        rng = RandomStream(self.seed, "faults", *names)
        windows: list[Window] = []
        for _ in range(count):
            start = rng.randint(0, limit - 1)
            duration = ticks_from_seconds(rng.uniform(low_seconds, high_seconds))
            end = min(start + max(1, duration), limit)
            if end > start:
                windows.append((start, end))
        return _merge(windows)
