"""The LAN fault injector: per-message drop/delay/duplicate/reorder.

:class:`LANFaultInjector` is the injection point the transport consults
on every send (see ``LANTransport(fault_injector=...)``) — faults enter
through a declared seam, not by monkeypatching delivery internals.  Each
consultation returns a :class:`FaultDecision`; the transport applies it
and stays otherwise unchanged.

Decisions are drawn from the injector's own seeded stream, so a fault
run is exactly reproducible from ``(profile, fault seed)`` and the
simulation's non-fault streams never shift.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, NamedTuple, Optional

from repro.sim.clock import ticks_from_milliseconds

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.rng import RandomStream

    from .profiles import FaultProfile

#: Extra-delay histogram buckets in ticks (1 tick = 312.5 µs).
_DELAY_BUCKETS = (4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


class FaultDecision(NamedTuple):
    """What the injector wants done with one message."""

    drop: bool = False
    extra_delay_ticks: int = 0
    duplicates: int = 0


#: The decision for a healthy message (shared, it is immutable).
NO_FAULT = FaultDecision()


class LANFaultInjector:
    """Draws one :class:`FaultDecision` per transport send.

    The draw order per message is fixed (drop, duplicate, delay,
    reorder) so a decision stream is a pure function of the seed and
    the send sequence.  Outside the profile's active window every
    message passes untouched.
    """

    def __init__(
        self,
        profile: "FaultProfile",
        rng: "RandomStream",
        active_until_tick: Optional[int] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.profile = profile
        self.rng = rng
        self.active_until_tick = active_until_tick
        self.decisions = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.reordered = 0
        self._metrics = metrics
        if metrics is not None:
            self._m_dropped = metrics.counter("faults.lan_dropped")
            self._m_duplicated = metrics.counter("faults.lan_duplicated")
            self._m_delayed = metrics.counter("faults.lan_delayed")
            self._m_reordered = metrics.counter("faults.lan_reordered")
            self._m_delay = metrics.histogram(
                "faults.lan_extra_delay_ticks", buckets=_DELAY_BUCKETS
            )

    def decide(
        self, now: int, source: str, destination: str, message: Any
    ) -> FaultDecision:
        """The fault verdict for one message about to be sent at ``now``."""
        if self.active_until_tick is not None and now >= self.active_until_tick:
            return NO_FAULT
        profile = self.profile
        if not profile.has_lan_faults:
            return NO_FAULT
        self.decisions += 1
        if profile.drop_probability and self.rng.random() < profile.drop_probability:
            self.dropped += 1
            if self._metrics is not None:
                self._m_dropped.inc()
            return FaultDecision(drop=True)
        duplicates = 0
        if (
            profile.duplicate_probability
            and self.rng.random() < profile.duplicate_probability
        ):
            duplicates = 1
            self.duplicated += 1
            if self._metrics is not None:
                self._m_duplicated.inc()
        extra_ms = 0.0
        if profile.delay_probability and self.rng.random() < profile.delay_probability:
            extra_ms += self.rng.uniform(profile.delay_ms_low, profile.delay_ms_high)
            self.delayed += 1
            if self._metrics is not None:
                self._m_delayed.inc()
        if (
            profile.reorder_probability
            and self.rng.random() < profile.reorder_probability
        ):
            extra_ms += self.rng.uniform(
                profile.reorder_ms_low, profile.reorder_ms_high
            )
            self.reordered += 1
            if self._metrics is not None:
                self._m_reordered.inc()
        extra_ticks = ticks_from_milliseconds(extra_ms) if extra_ms else 0
        if extra_ticks and self._metrics is not None:
            self._m_delay.observe(extra_ticks)
        if not duplicates and not extra_ticks:
            return NO_FAULT
        return FaultDecision(extra_delay_ticks=extra_ticks, duplicates=duplicates)

    def __repr__(self) -> str:
        return (
            f"LANFaultInjector(profile={self.profile.name!r}, "
            f"decisions={self.decisions}, dropped={self.dropped})"
        )
