"""Recovery mechanics: bounded retry with exponential backoff and jitter.

The counterpart of fault injection.  The paper's delta reporting is
fire-and-forget: one lost presence message strands a device until its
next room change.  :class:`RetryPolicy` describes the transport-level
remedy — retransmit on delivery timeout, back off exponentially, give
up after a bounded number of attempts — that
:meth:`repro.lan.transport.LANTransport.send_reliable` executes.

The policy is a frozen description; the jitter draw comes from the
caller's :class:`~repro.sim.rng.RandomStream` so retry timing is as
reproducible as everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sim.clock import ticks_from_milliseconds

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.rng import RandomStream


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retransmission: timeout, exponential backoff, jitter.

    ``max_attempts`` counts every transmission including the first, so
    ``max_attempts=4`` means one send plus up to three retries.  The
    timeout before retry ``n`` is
    ``timeout_ms * backoff_factor**(n-1) + U(0, jitter_ms)``; jitter
    decorrelates retry bursts when many senders lose messages to the
    same network event.
    """

    max_attempts: int = 4
    timeout_ms: float = 8.0
    backoff_factor: float = 2.0
    jitter_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.timeout_ms <= 0:
            raise ValueError(f"timeout must be positive: {self.timeout_ms}")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff factor must be >= 1: {self.backoff_factor}")
        if self.jitter_ms < 0:
            raise ValueError(f"negative jitter: {self.jitter_ms}")

    def timeout_ticks(self, attempt: int, rng: Optional["RandomStream"]) -> int:
        """Ticks to wait for an ack after transmission ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based: {attempt}")
        timeout = self.timeout_ms * self.backoff_factor ** (attempt - 1)
        if rng is not None and self.jitter_ms:
            timeout += rng.uniform(0.0, self.jitter_ms)
        return max(1, ticks_from_milliseconds(timeout))

    @property
    def max_retries(self) -> int:
        """Retransmissions after the initial send."""
        return self.max_attempts - 1
