"""Deterministic fault injection and recovery for the BIPS pipeline.

The robustness layer of the reproduction: seed-derived fault plans
(drop/delay/duplicate/reorder LAN messages, workstation crash + restart,
central-server brownouts) that enter through declared injection points —
``LANTransport(fault_injector=...)``, ``Workstation.set_failed``,
``BIPSServer.set_brownout`` — plus the matching recovery mechanics
(bounded retry with exponential backoff, delivery timeouts, workstation
re-registration, location-database staleness marking).

See ``docs/fault-injection.md`` for profiles, seeds, and the invariants
the chaos suite asserts.
"""

from __future__ import annotations

from .injector import NO_FAULT, FaultDecision, LANFaultInjector
from .plan import FaultPlan, Window, in_windows
from .profiles import (
    DEFAULT_RETRY_POLICY,
    PROFILES,
    FaultProfile,
    profile_named,
    profile_names,
)
from .recovery import RetryPolicy

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "FaultDecision",
    "FaultPlan",
    "FaultProfile",
    "LANFaultInjector",
    "NO_FAULT",
    "PROFILES",
    "RetryPolicy",
    "Window",
    "in_windows",
    "profile_named",
    "profile_names",
]
