"""A simulated Ethernet LAN connecting workstations and the server.

Switched office Ethernet is effectively reliable with sub-millisecond
latency; both are configurable so the benches can study BIPS under a
degraded network (latency spikes, loss) as an extension experiment.

Two optional layers extend the base transport:

* **Fault injection** — a :class:`repro.faults.LANFaultInjector` passed
  as ``fault_injector`` is consulted once per send and may drop, delay,
  or duplicate the message (``docs/fault-injection.md``).  This is the
  declared injection seam; nothing monkeypatches delivery internals.
* **Reliable delivery** — :meth:`LANTransport.send_reliable` adds
  transport-level retransmission: per-(source, destination) sequence
  numbers, receiver-side acks and duplicate suppression, and bounded
  retry with exponential backoff under a
  :class:`repro.faults.RetryPolicy`.  Acks are internal control frames:
  they ride the same latency/loss/fault path but never reach endpoint
  handlers and are counted separately (``lan.acks_sent``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, is_dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.clock import ticks_from_milliseconds
from repro.sim.hotpath import hot_path
from repro.sim.kernel import EventHandle, Kernel
from repro.sim.rng import RandomStream

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import LANFaultInjector
    from repro.faults.recovery import RetryPolicy
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracing import Span, SpanTracer

#: A handler receives ``(source_endpoint, message)``.
Handler = Callable[[str, Any], None]

#: Fixed per-frame overhead in the wire-size estimate (headers etc.).
_FRAME_OVERHEAD_BYTES = 32

#: Latency-histogram buckets in ticks (1 tick = 312.5 µs).
_LATENCY_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 32.0, 64.0)

#: "No trace context supplied" sentinel for :meth:`LANTransport._transmit`.
#: Distinct from None: a reliable retransmission legitimately carries
#: ``ctx=None`` (captured outside any trace) and must NOT fall back to
#: the ambient context of the retry-timer event that fired it.
_NO_CTX = object()


def _wire_bytes(message: Any, field_names: tuple[str, ...]) -> int:
    """Wire-size body shared by the public helper and the send path."""
    size = _FRAME_OVERHEAD_BYTES
    for name in field_names:
        value = getattr(message, name)
        if isinstance(value, str):
            size += len(value.encode("utf-8"))
        elif isinstance(value, bool) or value is None:
            size += 1
        elif isinstance(value, (int, float)):
            size += 8
        elif isinstance(value, (tuple, list)):
            size += 2 + sum(len(str(item)) for item in value)
        else:  # BDAddr and other small objects
            size += 8
    return size


def estimate_wire_bytes(message: Any) -> int:
    """A deterministic wire-size estimate for a message dataclass.

    Nobody serialises anything in the simulation, so "bytes on the LAN"
    is a model, not a measurement: a fixed frame overhead plus a
    per-field estimate.  It only needs to be deterministic and
    proportional to payload complexity so that byte counters are
    meaningful for load comparisons.
    """
    if not is_dataclass(message):
        return _FRAME_OVERHEAD_BYTES
    return _wire_bytes(message, tuple(spec.name for spec in fields(message)))


class UnknownEndpointError(Exception):
    """A message was addressed to an endpoint that never registered."""


@dataclass(frozen=True)
class DeliveryAck:
    """Transport-internal ack frame for one reliable delivery.

    Never delivered to endpoint handlers; exposed only so fault
    injectors (and tests) can recognise — and drop — acks.
    """

    seq: int


@dataclass(frozen=True)
class LatencyModel:
    """One-way delivery latency: fixed base plus uniform jitter."""

    base_ms: float = 0.3
    jitter_ms: float = 0.2
    #: The jitter-free sample, precomputed — the default transport has
    #: deterministic latency, so every send takes this fast path.
    base_ticks: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.base_ms < 0 or self.jitter_ms < 0:
            raise ValueError(f"negative latency parameters: {self}")
        object.__setattr__(
            self, "base_ticks", max(1, ticks_from_milliseconds(self.base_ms))
        )

    def draw_ticks(self, rng: Optional[RandomStream]) -> int:
        """One latency sample in ticks (at least 1)."""
        if rng is None or not self.jitter_ms:
            return self.base_ticks
        jitter = rng.uniform(0.0, self.jitter_ms)
        return max(1, ticks_from_milliseconds(self.base_ms + jitter))


@dataclass
class TransportStats:
    """LAN counters."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    by_type: dict[str, int] = field(default_factory=dict)
    #: Reliable-delivery counters (zero unless ``send_reliable`` is used).
    reliable_sent: int = 0
    duplicates_dropped: int = 0
    retries: int = 0
    retries_exhausted: int = 0
    acks_sent: int = 0
    aborted: int = 0


@dataclass
class _PendingReliable:
    """One reliable message awaiting its ack."""

    source: str
    destination: str
    message: Any
    policy: "RetryPolicy"
    attempt: int = 1
    timer: Optional[EventHandle] = None
    #: Trace context captured at ``send_reliable`` time, so every
    #: retransmission parents to the span of the *original* send.
    ctx: Any = None


class LANTransport:
    """Delivers messages between named endpoints with simulated latency."""

    def __init__(
        self,
        kernel: Kernel,
        latency: Optional[LatencyModel] = None,
        loss_probability: float = 0.0,
        rng: Optional[RandomStream] = None,
        metrics: Optional["MetricsRegistry"] = None,
        fault_injector: Optional["LANFaultInjector"] = None,
        spans: Optional["SpanTracer"] = None,
    ) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError(f"loss probability out of range: {loss_probability}")
        if loss_probability > 0.0 and rng is None:
            raise ValueError("a lossy transport needs an rng")
        self.kernel = kernel
        self.latency = latency if latency is not None else LatencyModel()
        self.loss_probability = loss_probability
        self.rng = rng
        self.faults = fault_injector
        self._spans = spans
        self.stats = TransportStats()
        self._endpoints: dict[str, Handler] = {}
        #: Every endpoint that ever registered.  A send to a name in
        #: here that is *currently* unregistered models a message to a
        #: crashed/browned-out machine: silently dropped, not a wiring
        #: bug.
        self._known_endpoints: set[str] = set()
        # Per-message-type memo: (by-type counter, kernel label, wire
        # field names).  The registry lookup, the f-string and the
        # dataclasses.fields() walk would otherwise repeat per send for
        # a handful of distinct frozen message types.
        self._type_cache: dict[
            str, tuple[Optional[Any], str, tuple[str, ...]]
        ] = {}
        # Reliable-delivery state.  Sequence numbers and receiver-side
        # dedup model the endpoints' network stacks; keeping them in the
        # transport (rather than each endpoint object) means a crashed
        # workstation's *process* state dies while its protocol state
        # survives, like a kernel socket outliving an application crash
        # would not — so crashes also call :meth:`abort_pending`.
        self._next_seq: dict[tuple[str, str], int] = {}
        self._pending: dict[tuple[str, str, int], _PendingReliable] = {}
        # (destination, source) -> delivered seqs.  Unbounded, but delta
        # traffic is a few messages per workstation per 15.4 s cycle, so
        # sim-scale runs stay small.
        self._seen_seqs: dict[tuple[str, str], set[int]] = {}
        self._metrics = metrics
        if metrics is not None:
            self._m_sent = metrics.counter("lan.messages_sent")
            self._m_delivered = metrics.counter("lan.messages_delivered")
            self._m_dropped = metrics.counter("lan.messages_dropped")
            self._m_bytes = metrics.counter("lan.bytes_sent")
            self._m_in_flight = metrics.gauge("lan.messages_in_flight")
            self._m_latency = metrics.histogram(
                "lan.delivery_latency_ticks", buckets=_LATENCY_BUCKETS
            )
            self._m_reliable = metrics.counter("lan.reliable_messages")
            self._m_duplicates = metrics.counter("lan.duplicates_dropped")
            self._m_retries = metrics.counter("lan.retries")
            self._m_exhausted = metrics.counter("lan.retries_exhausted")
            self._m_acks = metrics.counter("lan.acks_sent")

    def register(self, endpoint: str, handler: Handler) -> None:
        """Attach ``handler`` as the receiver for ``endpoint``."""
        if endpoint in self._endpoints:
            raise ValueError(f"endpoint {endpoint!r} already registered")
        self._endpoints[endpoint] = handler
        self._known_endpoints.add(endpoint)

    def unregister(self, endpoint: str) -> None:
        """Detach an endpoint; in-flight messages to it are dropped.

        The name stays *known*: later sends to it are silently dropped
        (a crashed or browned-out machine) instead of raising, and a
        re-``register`` restores delivery.
        """
        self._endpoints.pop(endpoint, None)

    # -- sending ---------------------------------------------------------------

    def send(self, source: str, destination: str, message: Any) -> None:
        """Queue ``message`` for delivery after a latency sample.

        Sending to an endpoint that has *never* registered raises
        immediately (a wiring bug); an endpoint that unregistered —
        before the send or while a message is in flight — silently
        drops it (a crash/restart).
        """
        if destination not in self._known_endpoints:
            raise UnknownEndpointError(f"no endpoint {destination!r}")
        self._transmit(source, destination, message, seq=None)

    def send_reliable(
        self, source: str, destination: str, message: Any, policy: "RetryPolicy"
    ) -> None:
        """Send with transport-level retransmission under ``policy``.

        The message gets a per-(source, destination) sequence number;
        delivery is acked by the receiving side and retransmitted on
        timeout, backing off exponentially, until acked or the policy's
        attempt budget is exhausted.  The receiver suppresses duplicate
        deliveries (a re-sent message observed twice is counted in
        ``lan.duplicates_dropped``, never handed to the handler again).
        """
        if destination not in self._known_endpoints:
            raise UnknownEndpointError(f"no endpoint {destination!r}")
        pair = (source, destination)
        seq = self._next_seq.get(pair, 0)
        self._next_seq[pair] = seq + 1
        self.stats.reliable_sent += 1
        if self._metrics is not None:
            self._m_reliable.inc()
        self._pending[(source, destination, seq)] = _PendingReliable(
            source=source,
            destination=destination,
            message=message,
            policy=policy,
            ctx=self._spans.capture() if self._spans is not None else None,
        )
        self._attempt((source, destination, seq))

    def abort_pending(self, source: str) -> int:
        """Drop every un-acked reliable send from ``source``.

        A crashed endpoint loses its send state with its process; the
        restart re-reports from scratch instead of replaying a dead
        queue.  Returns how many sends were aborted.
        """
        keys = [key for key in sorted(self._pending) if key[0] == source]
        for key in keys:
            pending = self._pending.pop(key)
            if pending.timer is not None:
                pending.timer.cancel()
        self.stats.aborted += len(keys)
        return len(keys)

    @property
    def pending_reliable(self) -> int:
        """Reliable sends still awaiting their ack."""
        return len(self._pending)

    # -- wire path --------------------------------------------------------------

    def _transmit(
        self,
        source: str,
        destination: str,
        message: Any,
        seq: Optional[int],
        ctx: Any = _NO_CTX,
    ) -> None:
        """One transmission attempt (plain send or reliable (re)try).

        ``ctx`` is the trace context the transit spans parent to;
        callers without a stored context (plain :meth:`send`) leave the
        sentinel so the ambient context at call time is used.
        """
        self.stats.sent += 1
        type_name = type(message).__name__
        self.stats.by_type[type_name] = self.stats.by_type.get(type_name, 0) + 1
        cached = self._type_cache.get(type_name)
        if cached is None:
            cached = (
                self._metrics.counter("lan.messages_sent_by_type", type=type_name)
                if self._metrics is not None
                else None,
                f"lan:{type_name}",
                tuple(spec.name for spec in fields(message))
                if is_dataclass(message)
                else (),
            )
            self._type_cache[type_name] = cached
        type_counter, label, field_names = cached
        if self._metrics is not None:
            self._m_sent.inc()
            if type_counter is not None:
                type_counter.inc()
            self._m_bytes.inc(_wire_bytes(message, field_names))
        spans = self._spans
        parent: Any = None
        if spans is not None:
            parent = spans.capture() if ctx is _NO_CTX else ctx
        if destination not in self._endpoints:
            # Known endpoint, currently down (crash/brownout): the wire
            # accepts the frame and nobody hears it.
            self._drop()
            if spans is not None:
                spans.instant(
                    "lan.transit", "lan", self.kernel.now, parent=parent,
                    type=type_name, src=source, dst=destination, outcome="dropped",
                )
            return
        if self.loss_probability and self.rng and self.rng.random() < self.loss_probability:
            self._drop()
            if spans is not None:
                spans.instant(
                    "lan.transit", "lan", self.kernel.now, parent=parent,
                    type=type_name, src=source, dst=destination, outcome="dropped",
                )
            return
        extra_delay = 0
        copies = 1
        if self.faults is not None:
            decision = self.faults.decide(self.kernel.now, source, destination, message)
            if decision.drop:
                self._drop()
                if spans is not None:
                    spans.instant(
                        "lan.transit", "lan", self.kernel.now, parent=parent,
                        type=type_name, src=source, dst=destination, outcome="dropped",
                    )
                return
            extra_delay = decision.extra_delay_ticks
            copies = 1 + decision.duplicates
        for _ in range(copies):
            delay = self.latency.draw_ticks(self.rng) + extra_delay
            if self._metrics is not None:
                self._m_in_flight.inc()
                self._m_latency.observe(delay)
            if spans is not None:
                # One transit span per wire copy, [send, deliver]; its
                # fate (delivered / dropped / dedup) lands in ``outcome``
                # when the copy resolves at _deliver time.
                if seq is None:
                    span = spans.begin(
                        "lan.transit", "lan", self.kernel.now, parent=parent,
                        type=type_name, src=source, dst=destination,
                    )
                else:
                    span = spans.begin(
                        "lan.transit", "lan", self.kernel.now, parent=parent,
                        type=type_name, src=source, dst=destination, seq=seq,
                    )
                self.kernel.post(
                    delay,
                    lambda s=span: self._deliver(source, destination, message, seq, span=s),
                    label=label,
                )
                continue
            # Deliveries are never cancelled: use the kernel's
            # handle-free fast path.
            self.kernel.post(
                delay,
                lambda: self._deliver(source, destination, message, seq),
                label=label,
            )

    def _drop(self) -> None:
        self.stats.dropped += 1
        if self._metrics is not None:
            self._m_dropped.inc()

    @hot_path
    def _deliver(
        self,
        source: str,
        destination: str,
        message: Any,
        seq: Optional[int],
        span: Optional["Span"] = None,
    ) -> None:
        if self._metrics is not None:
            self._m_in_flight.dec()
        handler = self._endpoints.get(destination)
        if handler is None:
            self._drop()
            self._end_transit(span, "dropped")
            return
        if seq is not None:
            seen = self._seen_seqs.setdefault((destination, source), set())
            if seq in seen:
                # A retransmission (or injected duplicate) of a message
                # this endpoint already consumed: suppress it, but re-ack
                # — the original ack may be the thing that got lost.
                self.stats.duplicates_dropped += 1
                if self._metrics is not None:
                    self._m_duplicates.inc()
                self._send_ack(destination, source, seq)
                self._end_transit(span, "dedup")
                return
            seen.add(seq)
        self.stats.delivered += 1
        if self._metrics is not None:
            self._m_delivered.inc()
        if span is not None and self._spans is not None:
            # The handler runs inside the transit span, so DB-apply and
            # query spans it opens nest under the message that caused them.
            prev = self._spans.push(span)
            try:
                handler(source, message)
            finally:
                self._spans.pop(prev)
            self._end_transit(span, "delivered")
        else:
            handler(source, message)
        if seq is not None:
            self._send_ack(destination, source, seq)

    def _end_transit(self, span: Optional["Span"], outcome: str) -> None:
        """Close one transit span with its resolution."""
        if span is None or self._spans is None:
            return
        span.attrs["outcome"] = outcome
        self._spans.end(span, self.kernel.now)

    # -- reliable machinery ------------------------------------------------------

    def _attempt(self, key: tuple[str, str, int]) -> None:
        pending = self._pending[key]
        self._transmit(
            pending.source, pending.destination, pending.message, key[2],
            ctx=pending.ctx,
        )
        timeout = pending.policy.timeout_ticks(pending.attempt, self.rng)
        pending.timer = self.kernel.schedule(
            timeout, lambda: self._on_timeout(key), label="lan:retry-timer"
        )

    def _on_timeout(self, key: tuple[str, str, int]) -> None:
        pending = self._pending.get(key)
        if pending is None:  # acked while the timer event was in the queue
            return
        if pending.attempt >= pending.policy.max_attempts:
            del self._pending[key]
            self.stats.retries_exhausted += 1
            if self._metrics is not None:
                self._m_exhausted.inc()
            return
        pending.attempt += 1
        self.stats.retries += 1
        if self._metrics is not None:
            self._m_retries.inc()
        self._attempt(key)

    def _send_ack(self, from_endpoint: str, to_endpoint: str, seq: int) -> None:
        """The receiver's network stack acks one reliable delivery.

        Acks ride the same latency/loss/fault path as data but are
        transport-internal: they cancel the sender's retry timer instead
        of reaching a handler, and only ``lan.acks_sent`` counts them.
        """
        self.stats.acks_sent += 1
        if self._metrics is not None:
            self._m_acks.inc()
        if self.loss_probability and self.rng and self.rng.random() < self.loss_probability:
            return
        extra_delay = 0
        if self.faults is not None:
            decision = self.faults.decide(
                self.kernel.now, from_endpoint, to_endpoint, DeliveryAck(seq)
            )
            if decision.drop:
                return
            extra_delay = decision.extra_delay_ticks
        delay = self.latency.draw_ticks(self.rng) + extra_delay
        key = (to_endpoint, from_endpoint, seq)
        self.kernel.post(delay, lambda: self._on_ack(key), label="lan:ack")  # lint: disable=PERF001 -- the closure IS the scheduled event payload; one allocation per ack is the cost of posting it

    def _on_ack(self, key: tuple[str, str, int]) -> None:
        pending = self._pending.pop(key, None)
        if pending is not None and pending.timer is not None:
            pending.timer.cancel()

    @property
    def endpoint_names(self) -> list[str]:
        """Currently registered endpoints."""
        return list(self._endpoints)
