"""A simulated Ethernet LAN connecting workstations and the server.

Switched office Ethernet is effectively reliable with sub-millisecond
latency; both are configurable so the benches can study BIPS under a
degraded network (latency spikes, loss) as an extension experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, is_dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.clock import ticks_from_milliseconds
from repro.sim.kernel import Kernel
from repro.sim.rng import RandomStream

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

#: A handler receives ``(source_endpoint, message)``.
Handler = Callable[[str, Any], None]

#: Fixed per-frame overhead in the wire-size estimate (headers etc.).
_FRAME_OVERHEAD_BYTES = 32

#: Latency-histogram buckets in ticks (1 tick = 312.5 µs).
_LATENCY_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 32.0, 64.0)


def _wire_bytes(message: Any, field_names: tuple[str, ...]) -> int:
    """Wire-size body shared by the public helper and the send path."""
    size = _FRAME_OVERHEAD_BYTES
    for name in field_names:
        value = getattr(message, name)
        if isinstance(value, str):
            size += len(value.encode("utf-8"))
        elif isinstance(value, bool) or value is None:
            size += 1
        elif isinstance(value, (int, float)):
            size += 8
        elif isinstance(value, (tuple, list)):
            size += 2 + sum(len(str(item)) for item in value)
        else:  # BDAddr and other small objects
            size += 8
    return size


def estimate_wire_bytes(message: Any) -> int:
    """A deterministic wire-size estimate for a message dataclass.

    Nobody serialises anything in the simulation, so "bytes on the LAN"
    is a model, not a measurement: a fixed frame overhead plus a
    per-field estimate.  It only needs to be deterministic and
    proportional to payload complexity so that byte counters are
    meaningful for load comparisons.
    """
    if not is_dataclass(message):
        return _FRAME_OVERHEAD_BYTES
    return _wire_bytes(message, tuple(spec.name for spec in fields(message)))


class UnknownEndpointError(Exception):
    """A message was addressed to an endpoint that never registered."""


@dataclass(frozen=True)
class LatencyModel:
    """One-way delivery latency: fixed base plus uniform jitter."""

    base_ms: float = 0.3
    jitter_ms: float = 0.2
    #: The jitter-free sample, precomputed — the default transport has
    #: deterministic latency, so every send takes this fast path.
    base_ticks: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.base_ms < 0 or self.jitter_ms < 0:
            raise ValueError(f"negative latency parameters: {self}")
        object.__setattr__(
            self, "base_ticks", max(1, ticks_from_milliseconds(self.base_ms))
        )

    def draw_ticks(self, rng: Optional[RandomStream]) -> int:
        """One latency sample in ticks (at least 1)."""
        if rng is None or not self.jitter_ms:
            return self.base_ticks
        jitter = rng.uniform(0.0, self.jitter_ms)
        return max(1, ticks_from_milliseconds(self.base_ms + jitter))


@dataclass
class TransportStats:
    """LAN counters."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    by_type: dict[str, int] = field(default_factory=dict)


class LANTransport:
    """Delivers messages between named endpoints with simulated latency."""

    def __init__(
        self,
        kernel: Kernel,
        latency: Optional[LatencyModel] = None,
        loss_probability: float = 0.0,
        rng: Optional[RandomStream] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError(f"loss probability out of range: {loss_probability}")
        if loss_probability > 0.0 and rng is None:
            raise ValueError("a lossy transport needs an rng")
        self.kernel = kernel
        self.latency = latency if latency is not None else LatencyModel()
        self.loss_probability = loss_probability
        self.rng = rng
        self.stats = TransportStats()
        self._endpoints: dict[str, Handler] = {}
        # Per-message-type memo: (by-type counter, kernel label, wire
        # field names).  The registry lookup, the f-string and the
        # dataclasses.fields() walk would otherwise repeat per send for
        # a handful of distinct frozen message types.
        self._type_cache: dict[
            str, tuple[Optional[Any], str, tuple[str, ...]]
        ] = {}
        self._metrics = metrics
        if metrics is not None:
            self._m_sent = metrics.counter("lan.messages_sent")
            self._m_delivered = metrics.counter("lan.messages_delivered")
            self._m_dropped = metrics.counter("lan.messages_dropped")
            self._m_bytes = metrics.counter("lan.bytes_sent")
            self._m_in_flight = metrics.gauge("lan.messages_in_flight")
            self._m_latency = metrics.histogram(
                "lan.delivery_latency_ticks", buckets=_LATENCY_BUCKETS
            )

    def register(self, endpoint: str, handler: Handler) -> None:
        """Attach ``handler`` as the receiver for ``endpoint``."""
        if endpoint in self._endpoints:
            raise ValueError(f"endpoint {endpoint!r} already registered")
        self._endpoints[endpoint] = handler

    def unregister(self, endpoint: str) -> None:
        """Detach an endpoint; in-flight messages to it are dropped."""
        self._endpoints.pop(endpoint, None)

    def send(self, source: str, destination: str, message: Any) -> None:
        """Queue ``message`` for delivery after a latency sample.

        Sending to an endpoint that has *never* registered raises
        immediately (a wiring bug); an endpoint that unregistered while
        a message is in flight silently drops it (a crash/restart).
        """
        if destination not in self._endpoints:
            raise UnknownEndpointError(f"no endpoint {destination!r}")
        self.stats.sent += 1
        type_name = type(message).__name__
        self.stats.by_type[type_name] = self.stats.by_type.get(type_name, 0) + 1
        cached = self._type_cache.get(type_name)
        if cached is None:
            cached = (
                self._metrics.counter("lan.messages_sent_by_type", type=type_name)
                if self._metrics is not None
                else None,
                f"lan:{type_name}",
                tuple(spec.name for spec in fields(message))
                if is_dataclass(message)
                else (),
            )
            self._type_cache[type_name] = cached
        type_counter, label, field_names = cached
        if self._metrics is not None:
            self._m_sent.inc()
            if type_counter is not None:
                type_counter.inc()
            self._m_bytes.inc(_wire_bytes(message, field_names))
        if self.loss_probability and self.rng and self.rng.random() < self.loss_probability:
            self.stats.dropped += 1
            if self._metrics is not None:
                self._m_dropped.inc()
            return
        delay = self.latency.draw_ticks(self.rng)
        if self._metrics is not None:
            self._m_in_flight.inc()
            self._m_latency.observe(delay)
        # Deliveries are never cancelled: use the kernel's handle-free
        # fast path.
        self.kernel.post(
            delay,
            lambda: self._deliver(source, destination, message),
            label=label,
        )

    def _deliver(self, source: str, destination: str, message: Any) -> None:
        if self._metrics is not None:
            self._m_in_flight.dec()
        handler = self._endpoints.get(destination)
        if handler is None:
            self.stats.dropped += 1
            if self._metrics is not None:
                self._m_dropped.inc()
            return
        self.stats.delivered += 1
        if self._metrics is not None:
            self._m_delivered.inc()
        handler(source, message)

    @property
    def endpoint_names(self) -> list[str]:
        """Currently registered endpoints."""
        return list(self._endpoints)
