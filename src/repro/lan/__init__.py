"""Simulated Ethernet LAN: message types and the transport."""

from .messages import (
    LocationQuery,
    LocationResponse,
    LoginRequest,
    LoginResponse,
    LogoutRequest,
    Message,
    PathQuery,
    PathResponse,
    PresenceInvalidation,
    PresenceUpdate,
    WorkstationHello,
)
from .transport import (
    Handler,
    LANTransport,
    LatencyModel,
    TransportStats,
    UnknownEndpointError,
)

__all__ = [
    "LocationQuery",
    "LocationResponse",
    "LoginRequest",
    "LoginResponse",
    "LogoutRequest",
    "Message",
    "PathQuery",
    "PathResponse",
    "PresenceInvalidation",
    "PresenceUpdate",
    "WorkstationHello",
    "Handler",
    "LANTransport",
    "LatencyModel",
    "TransportStats",
    "UnknownEndpointError",
]
