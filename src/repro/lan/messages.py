"""Messages exchanged over the BIPS Ethernet LAN.

The protocol between workstations and the central server is small (§2):
presence deltas flow up, login/logout and queries flow between user
sessions and the server.  Messages are plain frozen dataclasses; the
transport treats them as opaque payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.bluetooth.address import BDAddr


@dataclass(frozen=True)
class Message:
    """Base class: every LAN message knows when it was sent."""

    sent_tick: int


# -- workstation -> server -------------------------------------------------


@dataclass(frozen=True)
class PresenceUpdate(Message):
    """A workstation reports a new presence or absence in its piconet.

    Workstations send these *only on change* — "a workstation updates
    the central location database only when it reveals a new presence or
    a new absence" (§2) — which is what keeps the LAN load low.

    ``room_id`` piggybacks the workstation → room mapping so that a lost
    :class:`WorkstationHello` cannot strand a workstation's updates
    forever; None models a pre-fix sender (the server then relies on
    the hello alone).
    """

    workstation_id: str
    device: BDAddr
    present: bool
    room_id: Optional[str] = None


@dataclass(frozen=True)
class WorkstationHello(Message):
    """A workstation announces itself (room id) at startup."""

    workstation_id: str
    room_id: str


# -- user session -> server ----------------------------------------------


@dataclass(frozen=True)
class LoginRequest(Message):
    """A registered user logs in, binding userid ↔ BD_ADDR (§2)."""

    userid: str
    password: str
    device: BDAddr


@dataclass(frozen=True)
class LogoutRequest(Message):
    """End the userid ↔ BD_ADDR binding; tracking stops."""

    userid: str


@dataclass(frozen=True)
class LocationQuery(Message):
    """"Where is user X?" — the paper's spatio-temporal query.

    ``querier_userid`` is checked against the access rights of the
    target before any location is disclosed.
    """

    querier_userid: str
    target_username: str
    query_id: int = 0


@dataclass(frozen=True)
class PathQuery(Message):
    """"How do I reach user X from my current position?"."""

    querier_userid: str
    target_username: str
    query_id: int = 0


# -- server -> workstations --------------------------------------------------


@dataclass(frozen=True)
class PresenceInvalidation(Message):
    """The server tells a workstation that a device it believes present
    has been attributed to a different piconet.

    Without this, delta reporting has a consistency hole: a device that
    briefly leaves a room (too briefly for the absence hysteresis to
    fire) and later returns is still "present" in the old workstation's
    tracker, so no new delta is ever sent and the central database
    never re-attributes the device.  On every location change the
    server invalidates the previous room's tracker; if the device
    really is back there, the next inquiry window re-discovers it and a
    fresh presence delta flows.
    """

    device: BDAddr
    new_room_id: str


# -- server -> clients ------------------------------------------------------


@dataclass(frozen=True)
class LoginResponse(Message):
    """Outcome of a login attempt."""

    userid: str
    ok: bool
    reason: str = ""


@dataclass(frozen=True)
class LocationResponse(Message):
    """Answer to a :class:`LocationQuery`."""

    query_id: int
    ok: bool
    room_id: Optional[str] = None
    reason: str = ""
    #: The answer is served from an attribution older than the server's
    #: staleness horizon (covering workstation silent — possibly down).
    stale: bool = False


@dataclass(frozen=True)
class PathResponse(Message):
    """Answer to a :class:`PathQuery`: the room-by-room shortest path."""

    query_id: int
    ok: bool
    rooms: tuple[str, ...] = field(default=())
    total_distance_m: float = 0.0
    reason: str = ""
