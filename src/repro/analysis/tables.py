"""Plain-text table rendering for experiment reports.

All experiment harnesses print their results through this module so the
regenerated tables look like the paper's (and diff cleanly in CI logs).
"""

from __future__ import annotations

from typing import Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    align_right: Optional[Sequence[bool]] = None,
) -> str:
    """Render a monospace table.

    Args:
        headers: column names.
        rows: cell values; anything with a sensible ``str()`` works.
        title: optional caption printed above the table.
        align_right: per-column right-alignment flags (default: left for
            the first column, right for the rest — the usual shape for a
            label + numbers table).
    """
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("row width does not match header count")
    if align_right is None:
        align_right = [False] + [True] * (len(headers) - 1)
    if len(align_right) != len(headers):
        raise ValueError("align_right width does not match header count")

    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]

    def format_row(row: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(row):
            parts.append(cell.rjust(widths[i]) if align_right[i] else cell.ljust(widths[i]))
        return "| " + " | ".join(parts) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(format_row(cells[0]))
    lines.append(separator)
    for row in cells[1:]:
        lines.append(format_row(row))
    lines.append(separator)
    return "\n".join(lines)


def render_comparison(
    title: str,
    rows: Sequence[tuple[str, float, Optional[float]]],
    measured_label: str = "measured",
    reference_label: str = "paper",
    unit: str = "",
) -> str:
    """Render a measured-vs-reference table with relative errors.

    Rows are ``(label, measured, reference_or_None)``; a missing
    reference renders as "—".
    """
    body: list[list[object]] = []
    for label, measured, reference in rows:
        if reference is None:
            body.append([label, f"{measured:.4f}{unit}", "—", "—"])
        else:
            error = abs(measured - reference) / abs(reference) if reference else float("inf")
            body.append(
                [label, f"{measured:.4f}{unit}", f"{reference:.4f}{unit}", f"{error * 100:.1f}%"]
            )
    return render_table(
        ["case", measured_label, reference_label, "rel.err"], body, title=title
    )
