"""ASCII curve plotting for figure reproductions.

Renders probability-vs-time curves (Figure 2 of the paper) as terminal
graphics, so the benchmark harness can show the reproduced figure
without any plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Series:
    """One labelled curve: y-values on a shared x-grid."""

    label: str
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"series {self.label!r} is empty")


_GLYPHS = "1234567890abcdefghijklmnop"


def render_curves(
    grid: Sequence[float],
    series: Sequence[Series],
    title: str = "",
    height: int = 16,
    width: int = 72,
    y_min: float = 0.0,
    y_max: float = 1.0,
    x_label: str = "time (s)",
    y_label: str = "P",
) -> str:
    """Render curves on a character canvas.

    Each series gets a glyph (its index); overlapping points show the
    later series.  The legend maps glyphs back to labels.
    """
    if not series:
        raise ValueError("no series to plot")
    if any(len(s.values) != len(grid) for s in series):
        raise ValueError("series length does not match grid")
    if y_max <= y_min:
        raise ValueError(f"empty y range: [{y_min}, {y_max}]")
    if height < 2 or width < 8:
        raise ValueError("canvas too small")

    canvas = [[" "] * width for _ in range(height)]
    x_lo, x_hi = grid[0], grid[-1]
    x_span = (x_hi - x_lo) or 1.0

    for index, s in enumerate(series):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for x_value, y_value in zip(grid, s.values):
            col = round((x_value - x_lo) / x_span * (width - 1))
            clamped = min(max(y_value, y_min), y_max)
            row = round((1.0 - (clamped - y_min) / (y_max - y_min)) * (height - 1))
            canvas[row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(canvas):
        fraction = 1.0 - row_index / (height - 1)
        y_value = y_min + fraction * (y_max - y_min)
        lines.append(f"{y_value:5.2f} |" + "".join(row))
    lines.append(" " * 6 + "+" + "-" * width)
    left = f"{x_lo:g}"
    right = f"{x_hi:g}"
    padding = width - len(left) - len(right)
    lines.append(" " * 7 + left + " " * max(1, padding) + right)
    lines.append(f"      {y_label} vs {x_label}")
    legend = "  ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]}={s.label}" for i, s in enumerate(series)
    )
    lines.append("      legend: " + legend)
    return "\n".join(lines)
