"""Statistics and plain-text reporting helpers for the experiments."""

from .curves import Series, render_curves
from .stats import (
    EmpiricalCDF,
    Summary,
    percentile,
    proportion_ci95,
    relative_error,
    summarize,
)
from .tables import render_comparison, render_table

__all__ = [
    "Series",
    "render_curves",
    "EmpiricalCDF",
    "Summary",
    "percentile",
    "proportion_ci95",
    "relative_error",
    "summarize",
    "render_comparison",
    "render_table",
]
