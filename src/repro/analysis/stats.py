"""Summary statistics for experiment results.

Self-contained (no scipy needed at runtime) so the core experiment path
has no heavyweight imports; the benchmarks may still use numpy/scipy for
cross-checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class Summary:
    """Mean/std/extremes/CI of one sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci95_half_width: float

    @property
    def ci95(self) -> tuple[float, float]:
        """95 % confidence interval for the mean (normal approximation)."""
        return (self.mean - self.ci95_half_width, self.mean + self.ci95_half_width)

    def format(self, unit: str = "") -> str:
        """Human-readable one-liner."""
        suffix = unit and f" {unit}"
        return (
            f"n={self.count} mean={self.mean:.4f}{suffix} "
            f"±{self.ci95_half_width:.4f} (95% CI), "
            f"std={self.std:.4f}, min={self.minimum:.4f}, max={self.maximum:.4f}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` of ``values``.

    Raises:
        ValueError: on an empty sample.
    """
    if not values:
        raise ValueError("cannot summarize an empty sample")
    count = len(values)
    mean = sum(values) / count
    if count > 1:
        variance = sum((v - mean) ** 2 for v in values) / (count - 1)
    else:
        variance = 0.0
    std = math.sqrt(variance)
    half_width = 1.96 * std / math.sqrt(count) if count > 1 else 0.0
    return Summary(
        count=count,
        mean=mean,
        std=std,
        minimum=min(values),
        maximum=max(values),
        ci95_half_width=half_width,
    )


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation."""
    if not values:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile out of range: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    fraction = rank - low
    value = ordered[low] + fraction * (ordered[high] - ordered[low])
    # Guard against floating-point overshoot at the interval ends.
    return min(max(value, ordered[low]), ordered[high])


def proportion_ci95(successes: int, trials: int) -> tuple[float, float]:
    """Wilson 95 % confidence interval for a proportion."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} out of range for {trials} trials")
    z = 1.96
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p_hat * (1.0 - p_hat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return (max(0.0, centre - margin), min(1.0, centre + margin))


def relative_error(measured: float, reference: float) -> float:
    """|measured − reference| / |reference| (reference must be nonzero)."""
    if reference == 0:
        raise ValueError("reference value is zero")
    return abs(measured - reference) / abs(reference)


@dataclass(frozen=True)
class EmpiricalCDF:
    """An empirical CDF over event times, with right-censored samples.

    ``times`` are the event times of the non-censored samples;
    ``total`` counts all samples including those that never saw the
    event (censored), so ``value(t)`` is a true probability.
    """

    times: tuple[float, ...]
    total: int

    def __post_init__(self) -> None:
        if self.total < len(self.times):
            raise ValueError(
                f"total {self.total} smaller than event count {len(self.times)}"
            )
        if any(self.times[i] > self.times[i + 1] for i in range(len(self.times) - 1)):
            raise ValueError("times must be sorted")

    @classmethod
    def from_samples(
        cls, samples: Sequence[Optional[float]]
    ) -> "EmpiricalCDF":
        """Build from samples where None means "event never happened"."""
        times = tuple(sorted(s for s in samples if s is not None))
        return cls(times=times, total=len(samples))

    def value(self, t: float) -> float:
        """P(event time <= t)."""
        if self.total == 0:
            return 0.0
        # binary search for rightmost time <= t
        lo, hi = 0, len(self.times)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.times[mid] <= t:
                lo = mid + 1
            else:
                hi = mid
        return lo / self.total

    def sample_curve(self, grid: Sequence[float]) -> list[float]:
        """CDF values on a time grid."""
        return [self.value(t) for t in grid]

    @property
    def completion_fraction(self) -> float:
        """Fraction of samples that ever saw the event."""
        if self.total == 0:
            return 0.0
        return len(self.times) / self.total
