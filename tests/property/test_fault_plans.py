"""Property tests: fault-plan expansion over random profiles and seeds.

Whatever rates, bands, and seeds a profile carries, the expanded
windows must be sorted, disjoint, clamped inside both the horizon and
the plan's active window, and a pure function of ``(profile, seed)``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan, FaultProfile, LANFaultInjector, in_windows
from repro.sim.clock import ticks_from_seconds
from repro.sim.rng import RandomStream

probabilities = st.floats(min_value=0.0, max_value=0.95, allow_nan=False)


@st.composite
def profiles(draw):
    low = draw(st.floats(min_value=0.1, max_value=30.0, allow_nan=False))
    high = low + draw(st.floats(min_value=0.0, max_value=60.0, allow_nan=False))
    return FaultProfile(
        name="generated",
        drop_probability=draw(probabilities),
        duplicate_probability=draw(probabilities),
        delay_probability=draw(probabilities),
        reorder_probability=draw(probabilities),
        crashes_per_workstation=draw(st.integers(min_value=0, max_value=4)),
        crash_downtime_seconds_low=low,
        crash_downtime_seconds_high=high,
        brownouts=draw(st.integers(min_value=0, max_value=4)),
        radio_outages_per_trial=draw(st.integers(min_value=0, max_value=4)),
        active_seconds=draw(
            st.one_of(st.none(), st.floats(min_value=1.0, max_value=900.0))
        ),
    )


seeds = st.integers(min_value=0, max_value=2**31)
horizons = st.integers(min_value=0, max_value=ticks_from_seconds(1200.0))


@given(profiles(), seeds, horizons)
@settings(max_examples=150)
def test_windows_are_sorted_disjoint_and_clamped(profile, seed, horizon):
    plan = FaultPlan(profile=profile, seed=seed)
    limit = horizon
    if plan.active_until_tick() is not None:
        limit = min(limit, plan.active_until_tick())
    for windows in (
        plan.crash_windows("room-x", horizon),
        plan.brownout_windows(horizon),
        plan.radio_outages("0", horizon),
    ):
        previous_end = 0
        for start, end in windows:
            assert 0 <= start < end <= limit
            assert start >= previous_end
            previous_end = end


@given(profiles(), seeds, horizons)
@settings(max_examples=100)
def test_expansion_is_a_pure_function_of_profile_and_seed(profile, seed, horizon):
    plan_a = FaultPlan(profile=profile, seed=seed)
    plan_b = FaultPlan(profile=profile, seed=seed)
    assert plan_a.crash_windows("r", horizon) == plan_b.crash_windows("r", horizon)
    assert plan_a.brownout_windows(horizon) == plan_b.brownout_windows(horizon)
    assert plan_a.radio_outages("7", horizon) == plan_b.radio_outages("7", horizon)


@given(profiles(), seeds, horizons)
@settings(max_examples=100)
def test_survival_predicate_is_consistent_with_the_outages(profile, seed, horizon):
    plan = FaultPlan(profile=profile, seed=seed)
    outages = plan.radio_outages("3", horizon)
    reachable = plan.survival_predicate("3", horizon)
    if not outages:
        assert reachable is None
        return
    for start, end in outages:
        assert reachable(None, start) is False
        assert reachable(None, end - 1) is False
        assert reachable(None, end) is True
    assert not in_windows(outages, horizon)


@given(profiles(), seeds, st.integers(min_value=1, max_value=400))
@settings(max_examples=75)
def test_injector_decisions_replay_exactly(profile, seed, count):
    def drain():
        injector = LANFaultInjector(
            profile, RandomStream(seed, "faults", "lan"),
            active_until_tick=plan_limit,
        )
        return [injector.decide(i, "a", "b", i) for i in range(count)]

    plan_limit = FaultPlan(profile=profile, seed=seed).active_until_tick()
    assert drain() == drain()


@given(profiles(), seeds)
@settings(max_examples=75)
def test_injector_goes_quiet_past_the_active_window(profile, seed):
    plan = FaultPlan(profile=profile, seed=seed)
    limit = plan.active_until_tick()
    if limit is None or not profile.has_lan_faults:
        return
    injector = LANFaultInjector(
        profile, RandomStream(seed, "faults", "lan"), active_until_tick=limit
    )
    for offset in (0, 1, 1000):
        decision = injector.decide(limit + offset, "a", "b", "m")
        assert not decision.drop
        assert decision.extra_delay_ticks == 0
        assert decision.duplicates == 0
