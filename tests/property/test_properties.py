"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import EmpiricalCDF, percentile, summarize
from repro.bluetooth.address import BDAddr
from repro.bluetooth.btclock import CLKN_WRAP, BluetoothClock
from repro.bluetooth.constants import NUM_INQUIRY_FREQUENCIES, TICKS_PER_TRAIN_PASS
from repro.bluetooth.hopping import (
    PeriodicWindows,
    Train,
    TrainStrategy,
    periodic_inquiry,
    train_of_position,
    tx_offset_of_position,
)
from repro.core.tracker import PresenceTracker
from repro.sim.kernel import Kernel
from repro.sim.rng import RandomStream
from tests.bluetooth.test_hopping import enumerate_transmissions

# -- kernel ---------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=50))
@settings(max_examples=50)
def test_kernel_fires_in_nondecreasing_time_order(times):
    kernel = Kernel()
    fired = []
    for t in times:
        kernel.schedule_at(t, lambda t=t: fired.append(kernel.now))
    kernel.run_until(10_001)
    assert fired == sorted(fired)
    assert len(fired) == len(times)


@given(
    st.lists(
        st.tuples(st.integers(0, 5_000), st.booleans()), min_size=1, max_size=40
    )
)
@settings(max_examples=50)
def test_kernel_cancelled_events_never_fire(entries):
    kernel = Kernel()
    fired = []
    handles = []
    for t, cancel in entries:
        handles.append((kernel.schedule_at(t, lambda t=t: fired.append(t)), cancel))
    for handle, cancel in handles:
        if cancel:
            handle.cancel()
    kernel.run_until(5_001)
    expected = sorted(t for (t, cancel) in entries if not cancel)
    assert sorted(fired) == expected


# -- addresses ----------------------------------------------------------------


@given(st.integers(min_value=0, max_value=(1 << 48) - 1))
def test_bdaddr_parse_format_roundtrip(value):
    addr = BDAddr(value)
    assert BDAddr.parse(addr.format()) == addr


@given(
    st.integers(0, (1 << 16) - 1),
    st.integers(0, (1 << 8) - 1),
    st.integers(0, (1 << 24) - 1),
)
def test_bdaddr_parts_roundtrip(nap, uap, lap):
    addr = BDAddr.from_parts(nap, uap, lap)
    assert (addr.nap, addr.uap, addr.lap) == (nap, uap, lap)


# -- clock -------------------------------------------------------------------


@given(st.integers(0, CLKN_WRAP - 1), st.integers(0, 1 << 30))
def test_clock_phase_change_period(offset, tick):
    clock = BluetoothClock(offset=offset)
    delta = clock.ticks_to_next_phase_change(tick)
    assert 1 <= delta <= 4096
    phase_now = clock.scan_phase(tick, 32)
    assert clock.scan_phase(tick + delta - 1, 32) == phase_now
    assert clock.scan_phase(tick + delta, 32) == (phase_now + 1) % 32


# -- hopping -------------------------------------------------------------------


@given(
    window=st.integers(64, 2048),
    period_extra=st.integers(0, 4096),
    start=st.integers(0, 1000),
    position=st.integers(0, NUM_INQUIRY_FREQUENCIES - 1),
    from_tick=st.integers(0, 12_000),
    strategy=st.sampled_from(list(TrainStrategy)),
    start_train=st.sampled_from(list(Train)),
)
@settings(max_examples=60, deadline=None)
def test_next_tx_matches_brute_force(
    window, period_extra, start, position, from_tick, strategy, start_train
):
    schedule = periodic_inquiry(
        window_ticks=window,
        period_ticks=window + period_extra,
        start=start,
        strategy=strategy,
        start_train=start_train,
    )
    horizon = 16_000
    expected = next(
        (
            tick
            for tick, pos in sorted(enumerate_transmissions(schedule, horizon))
            if pos == position and tick >= from_tick
        ),
        None,
    )
    assert schedule.next_tx_of_position(position, from_tick, horizon) == expected


@given(st.integers(0, NUM_INQUIRY_FREQUENCIES - 1))
def test_tx_offset_in_pass_bounds(position):
    offset = tx_offset_of_position(position)
    assert 0 <= offset < TICKS_PER_TRAIN_PASS
    # Offsets identify the transmit half-slots of even slots only.
    slot = offset // 2
    assert slot % 2 == 0


@given(
    st.integers(1, 500),
    st.integers(0, 2000),
    st.integers(0, 20_000),
)
@settings(max_examples=60)
def test_periodic_windows_containing_consistent(window, start, probe):
    windows = PeriodicWindows(
        start=start, window_ticks=window, period_ticks=window + 250
    )
    containing = windows.containing(probe)
    if containing is not None:
        assert containing.contains(probe)
        assert windows.is_active(probe)
    else:
        assert not windows.is_active(probe)


# -- tracker -------------------------------------------------------------------


@given(
    st.lists(
        st.lists(st.integers(0, 5), unique=True, max_size=6),
        min_size=1,
        max_size=30,
    ),
    st.integers(1, 3),
)
@settings(max_examples=60)
def test_tracker_deltas_replay_to_current_state(cycles, threshold):
    """Folding the reported deltas must reproduce the tracker's state."""
    tracker = PresenceTracker(miss_threshold=threshold)
    believed: set[BDAddr] = set()
    for index, seen_values in enumerate(cycles):
        seen = [BDAddr(v) for v in seen_values]
        deltas = tracker.observe_cycle(seen, tick=index * 100)
        for addr in deltas.new_presences:
            assert addr not in believed  # presence only reported on change
            believed.add(addr)
        for addr in deltas.new_absences:
            assert addr in believed  # absence only for present devices
            believed.remove(addr)
    assert believed == tracker.present_devices


@given(
    st.lists(st.booleans(), min_size=1, max_size=40),
    st.integers(1, 4),
)
@settings(max_examples=60)
def test_tracker_single_device_hysteresis(seen_flags, threshold):
    """A device is absent iff it missed >= threshold consecutive cycles."""
    tracker = PresenceTracker(miss_threshold=threshold)
    device = BDAddr(1)
    ever_present = False
    misses = 0
    for index, seen in enumerate(seen_flags):
        tracker.observe_cycle([device] if seen else [], tick=index)
        if seen:
            ever_present = True
            misses = 0
        elif ever_present:
            misses += 1
    if not ever_present:
        expected_present = False
    else:
        expected_present = misses < threshold
    assert (device in tracker.present_devices) == expected_present


# -- statistics ---------------------------------------------------------------


@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
def test_summary_bounds(values):
    summary = summarize(values)
    # Allow for floating-point accumulation error in the mean.
    slack = 1e-6 * (abs(summary.minimum) + abs(summary.maximum) + 1.0)
    assert summary.minimum - slack <= summary.mean <= summary.maximum + slack
    assert summary.std >= 0


@given(
    st.lists(st.floats(0, 1e3), min_size=1, max_size=100),
    st.floats(0, 100),
)
def test_percentile_within_range(values, q):
    result = percentile(values, q)
    assert min(values) <= result <= max(values)


@given(
    st.lists(
        st.one_of(st.none(), st.floats(0, 100)), min_size=1, max_size=100
    )
)
def test_cdf_monotone_and_bounded(samples):
    cdf = EmpiricalCDF.from_samples(samples)
    grid = [0.0, 1.0, 5.0, 25.0, 50.0, 100.0, 1000.0]
    curve = cdf.sample_curve(grid)
    assert curve == sorted(curve)
    assert all(0.0 <= v <= 1.0 for v in curve)
    assert curve[-1] == cdf.completion_fraction


# -- rng ------------------------------------------------------------------------


@given(st.integers(0, 2**32), st.text(min_size=1, max_size=10))
def test_rng_streams_reproducible(seed, name):
    a = RandomStream(seed, name)
    b = RandomStream(seed, name)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


# -- pathfinding ------------------------------------------------------------------


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_dijkstra_triangle_inequality(data):
    """d(a,c) <= d(a,b) + d(b,c) for all sampled triples."""
    from repro.core.pathfinding import Graph

    node_count = data.draw(st.integers(3, 10))
    nodes = [f"n{i}" for i in range(node_count)]
    graph = Graph()
    for node in nodes:
        graph.add_node(node)
    # Spanning tree keeps it connected.
    for i in range(1, node_count):
        parent = nodes[data.draw(st.integers(0, i - 1))]
        graph.add_edge(nodes[i], parent, data.draw(st.floats(0.1, 50.0)))
    a, b, c = (
        data.draw(st.sampled_from(nodes)),
        data.draw(st.sampled_from(nodes)),
        data.draw(st.sampled_from(nodes)),
    )
    d_ab = graph.shortest_path(a, b).total_distance_m
    d_bc = graph.shortest_path(b, c).total_distance_m
    d_ac = graph.shortest_path(a, c).total_distance_m
    assert d_ac <= d_ab + d_bc + 1e-9
