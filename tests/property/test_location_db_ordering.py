"""Property tests: the location database under arbitrary LAN reordering.

Deltas race over the LAN: a chaos run can deliver presences and
absences late, duplicated, and out of order.  Whatever interleaving
arrives, the database must uphold two guarantees:

* ``last_confirmed`` never regresses — a delayed delivery cannot make
  an attribution look *fresher-confirmed-earlier* than it already is;
* a departed (or never-successfully-reported) user is never
  resurrected by a delayed presence that predates their departure.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bluetooth.address import BDAddr
from repro.core.location_db import LocationDatabase

DEVICE = BDAddr(0x00AA01000001)
ROOMS = ("lab-1", "lab-2", "library")

#: One delta as it crosses the LAN: kind, origin room, workstation tick.
deltas = st.tuples(
    st.sampled_from(("presence", "absence")),
    st.sampled_from(ROOMS),
    st.integers(min_value=0, max_value=10_000),
)


def _apply(db: LocationDatabase, delta) -> None:
    kind, room, tick = delta
    if kind == "presence":
        db.apply_presence(DEVICE, room, tick, f"ws:{room}")
    else:
        db.apply_absence(DEVICE, room, tick, f"ws:{room}")


@given(st.lists(deltas, max_size=60))
@settings(max_examples=200)
def test_last_confirmed_never_regresses(sequence):
    db = LocationDatabase()
    high_water = None
    for delta in sequence:
        _apply(db, delta)
        confirmed = db.last_confirmed(DEVICE)
        if confirmed is not None and high_water is not None:
            assert confirmed >= high_water
        if confirmed is not None:
            high_water = confirmed if high_water is None else max(high_water, confirmed)


@given(st.lists(deltas, min_size=1, max_size=60))
@settings(max_examples=200)
def test_attribution_is_never_older_than_a_processed_absence(sequence):
    # Once an absence at tick T for the device's current room has been
    # *applied*, no presence with tick < T may re-attribute the device:
    # a delayed presence must not resurrect a departed user.
    db = LocationDatabase()
    for delta in sequence:
        _apply(db, delta)
        record = db.record_of(DEVICE)
        if record is not None and record.room_id is not None:
            # Whatever room the device is in, the information the
            # attribution rests on is at least as fresh as everything
            # the database has acknowledged applying.
            assert record.since_tick <= db.last_confirmed(DEVICE)


@given(st.lists(deltas, min_size=1, max_size=60))
@settings(max_examples=200)
def test_departed_user_stays_departed(sequence):
    db = LocationDatabase()
    for delta in sequence:
        _apply(db, delta)
    record = db.record_of(DEVICE)
    if record is None:
        return
    departure = record.since_tick if record.room_id is None else None
    if departure is None:
        return
    # Replaying any delayed presence from before the departure is a
    # no-op: the tombstone/ordering guard refuses to resurrect.
    for kind, room, tick in sequence:
        if kind == "presence" and tick < departure:
            assert not db.apply_presence(DEVICE, room, tick, f"ws:{room}")
            assert db.current_room(DEVICE) is None


@given(st.lists(deltas, max_size=60), st.integers(0, 10_000))
@settings(max_examples=100)
def test_duplicate_suffix_is_idempotent(sequence, extra_tick):
    # Applying the whole sequence twice ends in the same state as once:
    # the guards make redelivery (a LAN duplicate storm) harmless.
    once = LocationDatabase()
    twice = LocationDatabase()
    for delta in sequence:
        _apply(once, delta)
        _apply(twice, delta)
    for delta in sequence:
        _apply(twice, delta)
    assert once.record_of(DEVICE) == twice.record_of(DEVICE)
    assert once.current_room(DEVICE) == twice.current_room(DEVICE)


@given(st.lists(deltas, max_size=40))
@settings(max_examples=100)
def test_tombstones_only_for_unknown_devices(sequence):
    db = LocationDatabase()
    for delta in sequence:
        before = db.record_of(DEVICE)
        kind, room, tick = delta
        _apply(db, delta)
        if kind == "absence" and before is None:
            # First contact was an absence: a tombstone pins the tick.
            record = db.record_of(DEVICE)
            assert record is not None and record.room_id is None
            assert record.since_tick == tick
