"""Property-based invariants of the protocol machinery."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bluetooth.address import BDAddr
from repro.bluetooth.btclock import CLKN_WRAP, BluetoothClock
from repro.bluetooth.device import BluetoothDevice
from repro.bluetooth.hopping import Train, TrainStrategy, continuous_inquiry
from repro.bluetooth.inquiry import InquiryProcedure
from repro.bluetooth.packets import FHSPacket
from repro.bluetooth.page import PageOutcome
from repro.bluetooth.paging import PAGE_HANDSHAKE_TICKS, SlotLevelPager
from repro.bluetooth.scan import InquiryScanner, PhaseMode, ResponseMode, ScanConfig
from repro.radio.channel import ResponseChannel
from repro.sim.kernel import Kernel
from repro.sim.rng import RandomStream

# -- channel conservation ---------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(0, 2000),  # tick
            st.integers(0, 5),  # rf channel
            st.integers(1, 30),  # sender id
        ),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=60)
def test_channel_conserves_packets(announcements):
    """delivered + collided + filtered == transmissions, always."""
    kernel = Kernel()
    received = []
    channel = ResponseChannel(
        kernel,
        lambda pkt, tick: received.append(pkt),
        reachable=lambda pkt, tick: pkt.sender.value % 3 != 0,  # drop a third
    )
    for tick, rf, sender in announcements:
        channel.schedule_fhs(
            tick, rf, FHSPacket(sender=BDAddr(sender), clkn=0, channel=rf, tx_tick=tick)
        )
    kernel.run_until(3000)
    stats = channel.stats
    assert stats.transmissions == len(announcements)
    assert stats.delivered + stats.collided + stats.filtered == stats.transmissions
    assert stats.delivered == len(received)
    assert channel.pending_count == 0


@given(
    st.lists(
        st.tuples(st.integers(0, 500), st.integers(0, 2), st.integers(1, 10)),
        min_size=2,
        max_size=40,
    )
)
@settings(max_examples=60)
def test_channel_collision_groups_have_size_at_least_two(announcements):
    kernel = Kernel()
    channel = ResponseChannel(kernel, lambda pkt, tick: None)
    for tick, rf, sender in announcements:
        channel.schedule_fhs(
            tick, rf, FHSPacket(sender=BDAddr(sender), clkn=0, channel=rf, tx_tick=tick)
        )
    kernel.run_until(1000)
    for record in channel.stats.collisions:
        assert len(record.senders) >= 2


# -- discovery invariants -----------------------------------------------------


@given(
    clock_offset=st.integers(0, CLKN_WRAP - 1),
    base_phase=st.integers(0, 31),
    start_train=st.sampled_from(list(Train)),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=40, deadline=None)
def test_discovery_ordering_invariants(clock_offset, base_phase, start_train, seed):
    """First hear <= first response <= discovery; response = hear + 1 slot."""
    kernel = Kernel()
    schedule = continuous_inquiry(start_train=start_train)
    master = InquiryProcedure(kernel, schedule)
    address = BDAddr(0xABC)
    scanner = InquiryScanner(
        kernel=kernel,
        address=address,
        schedule=schedule,
        channel=master.channel,
        rng=RandomStream(seed, "prop"),
        config=ScanConfig.continuous(response_mode=ResponseMode.SINGLE),
        clock=BluetoothClock(offset=clock_offset),
        base_phase=base_phase,
        horizon_tick=80_000,
    )
    scanner.start()
    kernel.run_until(80_000)
    tick = master.discovery_tick(address)
    assert tick is not None  # alternating trains always reach the slave
    stats = scanner.stats
    assert stats.first_heard_tick is not None
    assert stats.first_heard_tick <= stats.first_response_tick == tick
    # The response is exactly one slot after the ID it answers, which
    # the master transmitted while in inquiry.
    assert schedule.is_listening(tick)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_single_slave_never_collides(seed):
    kernel = Kernel()
    schedule = continuous_inquiry()
    master = InquiryProcedure(kernel, schedule)
    scanner = InquiryScanner(
        kernel=kernel,
        address=BDAddr(1),
        schedule=schedule,
        channel=master.channel,
        rng=RandomStream(seed, "solo"),
        config=ScanConfig.continuous(),
        clock=BluetoothClock(offset=seed * 7919 % CLKN_WRAP),
        base_phase=seed % 32,
        horizon_tick=40_000,
    )
    scanner.start()
    kernel.run_until(40_000)
    assert master.channel.stats.collision_events == 0
    assert master.channel.stats.delivered == scanner.stats.responses


# -- paging invariants ---------------------------------------------------------


@given(
    clock_offset=st.integers(0, CLKN_WRAP - 1),
    base_phase=st.integers(0, 31),
    error_periods=st.integers(0, 40),
)
@settings(max_examples=40, deadline=None)
def test_page_rendezvous_lands_in_scan_window(clock_offset, base_phase, error_periods):
    kernel = Kernel()
    target = BluetoothDevice(
        address=BDAddr(0x42),
        clock=BluetoothClock(offset=clock_offset),
        base_phase=base_phase,
    )
    pager = SlotLevelPager(kernel)
    outcomes = []
    pager.page(
        target,
        outcomes.append,
        estimate_error_ticks=error_periods * 4096,
        timeout_ticks=10 * 4096,
    )
    kernel.run_until(11 * 4096)
    outcome = outcomes[0]
    assert outcome.result.outcome is PageOutcome.CONNECTED
    rendezvous = outcome.rendezvous_tick
    # The heard ID must fall inside one of the slave's 11.25 ms page-scan
    # windows (anchored by its clock, every 1.28 s).
    anchor = target.clock.offset % 4096
    assert (rendezvous - anchor) % 4096 < 36
    assert outcome.result.finished_tick == rendezvous + PAGE_HANDSHAKE_TICKS
