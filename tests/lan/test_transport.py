"""Tests for the simulated Ethernet transport."""

from __future__ import annotations

import pytest

from repro.lan.transport import LANTransport, LatencyModel, UnknownEndpointError
from repro.sim.rng import RandomStream


class TestLatencyModel:
    def test_draw_at_least_one_tick(self):
        model = LatencyModel(base_ms=0.0, jitter_ms=0.0)
        assert model.draw_ticks(None) == 1

    def test_jitter_within_bounds(self):
        model = LatencyModel(base_ms=1.0, jitter_ms=2.0)
        rng = RandomStream(1, "lat")
        for _ in range(100):
            ticks = model.draw_ticks(rng)
            # 1 ms = 3.2 ticks -> between ~3 and ~10 ticks.
            assert 3 <= ticks <= 10

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(base_ms=-1.0)


class TestTransport:
    def test_delivery_with_latency(self, kernel):
        transport = LANTransport(kernel)
        received = []
        transport.register("server", lambda src, msg: received.append((src, msg, kernel.now)))
        transport.send("ws", "server", "hello")
        assert received == []  # not delivered synchronously
        kernel.run_until(100)
        assert len(received) == 1
        src, msg, tick = received[0]
        assert (src, msg) == ("ws", "hello")
        assert tick >= 1

    def test_unknown_destination_raises(self, kernel):
        transport = LANTransport(kernel)
        with pytest.raises(UnknownEndpointError):
            transport.send("a", "ghost", "x")

    def test_duplicate_registration_rejected(self, kernel):
        transport = LANTransport(kernel)
        transport.register("server", lambda s, m: None)
        with pytest.raises(ValueError):
            transport.register("server", lambda s, m: None)

    def test_unregister_drops_in_flight(self, kernel):
        transport = LANTransport(kernel)
        received = []
        transport.register("server", lambda s, m: received.append(m))
        transport.send("ws", "server", "x")
        transport.unregister("server")
        kernel.run_until(100)
        assert received == []
        assert transport.stats.dropped == 1

    def test_loss(self, kernel):
        transport = LANTransport(
            kernel, loss_probability=0.5, rng=RandomStream(3, "lan")
        )
        received = []
        transport.register("server", lambda s, m: received.append(m))
        for i in range(200):
            transport.send("ws", "server", i)
        kernel.run_until(1000)
        assert transport.stats.dropped > 50
        assert len(received) == 200 - transport.stats.dropped

    def test_lossy_transport_requires_rng(self, kernel):
        with pytest.raises(ValueError):
            LANTransport(kernel, loss_probability=0.1)

    def test_stats_by_type(self, kernel):
        transport = LANTransport(kernel)
        transport.register("server", lambda s, m: None)
        transport.send("a", "server", "text")
        transport.send("a", "server", 42)
        assert transport.stats.by_type == {"str": 1, "int": 1}

    def test_fifo_per_same_latency(self, kernel):
        transport = LANTransport(kernel, latency=LatencyModel(base_ms=1.0, jitter_ms=0.0))
        received = []
        transport.register("server", lambda s, m: received.append(m))
        for i in range(5):
            transport.send("a", "server", i)
        kernel.run_until(100)
        assert received == [0, 1, 2, 3, 4]

    def test_endpoint_names(self, kernel):
        transport = LANTransport(kernel)
        transport.register("a", lambda s, m: None)
        transport.register("b", lambda s, m: None)
        assert set(transport.endpoint_names) == {"a", "b"}
