"""Tests for the on-disk result cache."""

from __future__ import annotations

import json

from repro.runner.cache import CACHE_SCHEMA_VERSION, ResultCache

DIGEST = "a" * 64
PAYLOADS = [{"index": 0, "value": 1.5}, {"index": 1, "value": None}]


class TestRoundTrip:
    def test_store_then_load(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("table1", DIGEST, PAYLOADS)
        assert cache.load("table1", DIGEST) == PAYLOADS
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_on_absent_cell(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load("table1", DIGEST) is None
        assert cache.misses == 1

    def test_cells_keyed_by_digest(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("table1", DIGEST, PAYLOADS)
        assert cache.load("table1", "b" * 64) is None

    def test_cells_keyed_by_experiment(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("table1", DIGEST, PAYLOADS)
        assert cache.load("figure2", DIGEST) is None

    def test_store_is_overwrite(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("table1", DIGEST, PAYLOADS)
        cache.store("table1", DIGEST, PAYLOADS[:1])
        assert cache.load("table1", DIGEST) == PAYLOADS[:1]

    def test_no_leftover_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("table1", DIGEST, PAYLOADS)
        leftovers = [p for p in tmp_path.rglob("*") if p.is_file() and p.suffix != ".json"]
        assert leftovers == []


class TestRobustness:
    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.path_for("table1", DIGEST)
        path.parent.mkdir(parents=True)
        path.write_text("{not json", encoding="utf-8")
        assert cache.load("table1", DIGEST) is None

    def test_schema_version_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("table1", DIGEST, PAYLOADS)
        path = cache.path_for("table1", DIGEST)
        cell = json.loads(path.read_text(encoding="utf-8"))
        cell["cache_version"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(cell), encoding="utf-8")
        assert cache.load("table1", DIGEST) is None

    def test_digest_mismatch_inside_file_is_a_miss(self, tmp_path):
        # A renamed/copied cell must not be trusted.
        cache = ResultCache(tmp_path)
        cache.store("table1", "b" * 64, PAYLOADS)
        cache.path_for("table1", "b" * 64).rename(cache.path_for("table1", DIGEST))
        assert cache.load("table1", DIGEST) is None

    def test_experiment_names_are_sanitised(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.store("figure2/n=10", DIGEST, PAYLOADS)
        assert path.is_file()
        assert tmp_path in path.parents
        assert cache.load("figure2/n=10", DIGEST) == PAYLOADS

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("table1", DIGEST, PAYLOADS)
        cache.store("figure2", DIGEST, PAYLOADS)
        assert cache.clear() == 2
        assert cache.load("table1", DIGEST) is None

    def test_clear_missing_root(self, tmp_path):
        assert ResultCache(tmp_path / "nope").clear() == 0
