"""Tests for the experiment runner itself (cheap synthetic trials).

The trial function here is deliberately trivial — the real experiment
equivalence is covered by ``test_parallel_equivalence.py``; these tests
pin the runner mechanics: ordering, seeding, caching, and metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.runner import ExperimentRunner, ResultCache, build_runner
from repro.runner.seeding import config_digest, trial_seeds


@dataclass(frozen=True)
class EchoConfig:
    label: str = "echo"
    scale: int = 2


def echo_trial(config: EchoConfig, index: int, seed: int) -> dict:
    """Module-level so worker processes can import it."""
    return {"index": index, "seed": seed, "scaled": index * config.scale}


class TestSerialMapping:
    def test_results_in_index_order(self):
        payloads = ExperimentRunner().map_trials("echo", EchoConfig(), echo_trial, 5)
        assert [p["index"] for p in payloads] == [0, 1, 2, 3, 4]

    def test_trials_get_derived_seeds(self):
        config = EchoConfig()
        payloads = ExperimentRunner().map_trials("echo", config, echo_trial, 4)
        expected = trial_seeds("echo", config_digest("echo", config), 4)
        assert [p["seed"] for p in payloads] == expected

    def test_zero_trials(self):
        assert ExperimentRunner().map_trials("echo", EchoConfig(), echo_trial, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner().map_trials("echo", EchoConfig(), echo_trial, -1)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner(jobs=0)

    def test_payloads_json_normalised(self):
        # Tuples in payloads come back as lists, exactly like a cache read.
        def tuple_trial(config, index, seed):
            return {"pair": (index, seed)}

        payloads = ExperimentRunner().map_trials("echo", EchoConfig(), tuple_trial, 2)
        assert isinstance(payloads[0]["pair"], list)


class TestParallelMapping:
    def test_matches_serial_bytes(self):
        config = EchoConfig(scale=3)
        serial = ExperimentRunner().map_trials("echo", config, echo_trial, 8)
        parallel = ExperimentRunner(jobs=2).map_trials("echo", config, echo_trial, 8)
        assert serial == parallel

    def test_worker_count_does_not_change_results(self):
        config = EchoConfig(scale=5)
        two = ExperimentRunner(jobs=2).map_trials("echo", config, echo_trial, 6)
        three = ExperimentRunner(jobs=3).map_trials("echo", config, echo_trial, 6)
        assert two == three


class TestCaching:
    def test_second_call_hits(self, tmp_path):
        registry = MetricsRegistry()
        runner = ExperimentRunner(cache=ResultCache(tmp_path), metrics=registry)
        first = runner.map_trials("echo", EchoConfig(), echo_trial, 4)
        second = runner.map_trials("echo", EchoConfig(), echo_trial, 4)
        assert first == second
        assert registry.counter("runner.cache_hits", experiment="echo").value == 1
        assert registry.counter("runner.cache_misses", experiment="echo").value == 1
        assert registry.counter("runner.trials_dispatched", experiment="echo").value == 4

    def test_config_change_invalidates(self, tmp_path):
        registry = MetricsRegistry()
        runner = ExperimentRunner(cache=ResultCache(tmp_path), metrics=registry)
        runner.map_trials("echo", EchoConfig(scale=1), echo_trial, 3)
        runner.map_trials("echo", EchoConfig(scale=2), echo_trial, 3)
        assert registry.counter("runner.cache_hits", experiment="echo").value == 0
        assert registry.counter("runner.trials_dispatched", experiment="echo").value == 6

    def test_count_mismatch_recomputes(self, tmp_path):
        # Same config but a different trial count must not serve a
        # truncated (or padded) cell.
        cache = ResultCache(tmp_path)
        runner = ExperimentRunner(cache=cache)
        runner.map_trials("echo", EchoConfig(), echo_trial, 4)
        payloads = runner.map_trials("echo", EchoConfig(), echo_trial, 6)
        assert len(payloads) == 6

    def test_cache_shared_across_runner_instances(self, tmp_path):
        ExperimentRunner(cache=ResultCache(tmp_path)).map_trials(
            "echo", EchoConfig(), echo_trial, 3
        )
        registry = MetricsRegistry()
        warm = ExperimentRunner(cache=ResultCache(tmp_path), metrics=registry)
        warm.map_trials("echo", EchoConfig(), echo_trial, 3)
        assert registry.counter("runner.cache_hits", experiment="echo").value == 1

    def test_no_cache_runner_never_touches_disk(self, tmp_path):
        runner = build_runner(jobs=1, use_cache=False, cache_dir=str(tmp_path))
        runner.map_trials("echo", EchoConfig(), echo_trial, 2)
        assert list(tmp_path.iterdir()) == []


class TestMetrics:
    def test_dispatch_and_batch_counters(self):
        registry = MetricsRegistry()
        runner = ExperimentRunner(metrics=registry)
        runner.map_trials("echo", EchoConfig(), echo_trial, 5)
        assert registry.counter("runner.trials_dispatched", experiment="echo").value == 5
        assert registry.counter("runner.batches", mode="serial").value == 1
        assert registry.gauge("runner.jobs").value == 1

    def test_wall_clock_gauges_recorded(self):
        registry = MetricsRegistry()
        ExperimentRunner(metrics=registry).map_trials(
            "echo", EchoConfig(), echo_trial, 3
        )
        assert registry.gauge("runner.wall_seconds", experiment="echo").value >= 0.0
        assert registry.gauge("runner.busy_seconds", experiment="echo").value >= 0.0

    def test_runs_without_registry(self):
        assert ExperimentRunner().map_trials("echo", EchoConfig(), echo_trial, 1)
