"""Serial == parallel byte-equality for the real experiment harnesses.

The acceptance contract of the runner: ``--jobs N`` must reproduce the
serial results byte for byte at the same seed, and a warm cache must
serve a repeated run without dispatching a single trial.  Sample sizes
are tiny — identity, not statistics, is being asserted.
"""

from __future__ import annotations

import pytest

from repro.bluetooth.scan import PhaseMode
from repro.experiments.duty_cycle import Section5Config, run_section5
from repro.experiments.figure2 import Figure2Config, run_figure2
from repro.experiments.sweep import sweep_inquiry_window, sweep_table1_phase_mode
from repro.experiments.table1 import Table1Config, run_table1
from repro.obs.metrics import MetricsRegistry
from repro.runner import ExperimentRunner, ResultCache


def parallel_runner(jobs: int = 2, **kwargs) -> ExperimentRunner:
    return ExperimentRunner(jobs=jobs, **kwargs)


class TestSerialParallelEquality:
    def test_table1_bytes_equal(self):
        config = Table1Config(trials=10, seed=777)
        serial = run_table1(config)
        parallel = run_table1(config, runner=parallel_runner())
        assert serial.to_csv() == parallel.to_csv()

    def test_table1_metrics_equal(self):
        # The experiment-layer metrics are computed from returned
        # payloads, so they cannot depend on where trials ran.
        config = Table1Config(trials=8, seed=41)
        serial_registry = MetricsRegistry()
        run_table1(config, metrics=serial_registry)
        parallel_registry = MetricsRegistry()
        run_table1(config, metrics=parallel_registry, runner=parallel_runner())
        serial_lines = [
            line
            for line in serial_registry.to_jsonl().splitlines()
            if "table1." in line
        ]
        parallel_lines = [
            line
            for line in parallel_registry.to_jsonl().splitlines()
            if "table1." in line
        ]
        assert serial_lines == parallel_lines

    def test_figure2_bytes_equal(self):
        config = Figure2Config(slave_counts=(2, 6), replications=3, seed=901)
        serial = run_figure2(config)
        parallel = run_figure2(config, runner=parallel_runner())
        assert serial.to_csv() == parallel.to_csv()
        for count in config.slave_counts:
            assert (
                serial.curve_for(count).collisions
                == parallel.curve_for(count).collisions
            )

    def test_section5_equal(self):
        config = Section5Config(replications=4, seed=902, slave_count=5)
        serial = run_section5(config)
        parallel = run_section5(config, runner=parallel_runner())
        assert serial.discovered == parallel.discovered
        assert serial.total_slaves == parallel.total_slaves

    def test_sweep_bytes_equal(self):
        serial = sweep_inquiry_window(
            windows_seconds=(2.56, 3.84), slave_count=5, replications=3
        )
        parallel = sweep_inquiry_window(
            windows_seconds=(2.56, 3.84),
            slave_count=5,
            replications=3,
            runner=parallel_runner(),
        )
        assert serial.render() == parallel.render()


class TestSchedulerParallelEquality:
    """The scheduler knob composes with trial fan-out: any (scheduler,
    jobs) combination must reproduce the canonical serial-heap bytes.
    Workers inherit the environment variable, so setting it in the
    parent covers the spawned processes too."""

    def test_calendar_serial_matches_calendar_parallel(self, monkeypatch):
        from repro.sim.kernel import SCHEDULER_ENV_VAR

        monkeypatch.setenv(SCHEDULER_ENV_VAR, "calendar")
        config = Table1Config(trials=10, seed=777)
        serial = run_table1(config)
        parallel = run_table1(config, runner=parallel_runner())
        assert serial.to_csv() == parallel.to_csv()

    def test_calendar_parallel_matches_heap_serial(self, monkeypatch):
        from repro.sim.kernel import SCHEDULER_ENV_VAR

        config = Table1Config(trials=10, seed=777)
        monkeypatch.delenv(SCHEDULER_ENV_VAR, raising=False)
        heap_serial = run_table1(config)
        monkeypatch.setenv(SCHEDULER_ENV_VAR, "calendar")
        calendar_parallel = run_table1(config, runner=parallel_runner())
        assert heap_serial.to_csv() == calendar_parallel.to_csv()

    def test_figure2_calendar_parallel_equal(self, monkeypatch):
        from repro.sim.kernel import SCHEDULER_ENV_VAR

        config = Figure2Config(slave_counts=(4,), replications=2, seed=905)
        serial = run_figure2(config)
        monkeypatch.setenv(SCHEDULER_ENV_VAR, "calendar")
        parallel = run_figure2(config, runner=parallel_runner())
        assert serial.to_csv() == parallel.to_csv()


class TestCacheSemantics:
    def test_warm_cache_skips_all_trials(self, tmp_path):
        windows = (2.56, 3.84, 5.12)
        cold = sweep_inquiry_window(
            windows_seconds=windows,
            slave_count=4,
            replications=3,
            runner=ExperimentRunner(cache=ResultCache(tmp_path)),
        )
        registry = MetricsRegistry()
        warm = sweep_inquiry_window(
            windows_seconds=windows,
            slave_count=4,
            replications=3,
            runner=ExperimentRunner(cache=ResultCache(tmp_path), metrics=registry),
        )
        assert cold.render() == warm.render()
        # Cache-hit counter equals cell count; nothing was recomputed.
        hits = registry.counter("runner.cache_hits", experiment="section5").value
        assert hits == len(windows)
        assert ("runner.trials_dispatched") not in {
            record["name"] for record in registry.snapshot()
        }

    def test_cached_and_fresh_results_identical(self, tmp_path):
        config = Table1Config(trials=6, seed=555)
        fresh = run_table1(config)
        cached_runner = ExperimentRunner(cache=ResultCache(tmp_path))
        cold = run_table1(config, runner=cached_runner)
        warm = run_table1(config, runner=cached_runner)
        assert fresh.to_csv() == cold.to_csv() == warm.to_csv()

    def test_seed_change_misses_cache(self, tmp_path):
        registry = MetricsRegistry()
        runner = ExperimentRunner(cache=ResultCache(tmp_path), metrics=registry)
        run_table1(Table1Config(trials=4, seed=1), runner=runner)
        run_table1(Table1Config(trials=4, seed=2), runner=runner)
        assert registry.counter("runner.cache_hits", experiment="table1").value == 0
        assert (
            registry.counter("runner.cache_misses", experiment="table1").value == 2
        )


class TestSweepSeedIndependence:
    def test_variants_do_not_replay_one_stream(self):
        """Ablation variants at the same seed must draw independently.

        Before config-digest seeding, both phase modes replayed the
        same stream: the per-trial coin flips (start train, clock
        offset) were byte-identical across variants, silently
        correlating the columns being compared.
        """
        trials = 40
        fixed = run_table1(
            Table1Config(trials=trials, seed=77001, phase_mode=PhaseMode.FIXED)
        )
        sequence = run_table1(
            Table1Config(trials=trials, seed=77001, phase_mode=PhaseMode.SEQUENCE)
        )
        fixed_trains = [t.same_train for t in fixed.trials]
        sequence_trains = [t.same_train for t in sequence.trials]
        # 40 independent coin flips colliding has probability 2^-40.
        assert fixed_trains != sequence_trains

    def test_window_cells_draw_distinct_streams(self):
        """Each window cell's replications must be independent draws."""
        sweep = sweep_inquiry_window(
            windows_seconds=(2.56, 2.561), slave_count=8, replications=6
        )
        # Two near-identical windows sharing one stream would produce
        # exactly equal fractions; independent streams almost never do.
        # (Checked loosely: the *configs* differ, so the digests do.)
        from repro.experiments.duty_cycle import EXPERIMENT as S5
        from repro.runner.seeding import config_digest

        a = config_digest(S5, Section5Config(inquiry_window_seconds=2.56))
        b = config_digest(S5, Section5Config(inquiry_window_seconds=2.561))
        assert a != b
        assert len(sweep.rows) == 2

    def test_phase_sweep_runs_with_parallel_runner(self):
        serial = sweep_table1_phase_mode(trials=6, seed=11)
        parallel = sweep_table1_phase_mode(trials=6, seed=11, runner=parallel_runner())
        assert serial.render() == parallel.render()
