"""Tests for config digests and per-trial seed derivation."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import pytest

from repro.experiments.table1 import Table1Config
from repro.runner.seeding import (
    code_version,
    config_digest,
    seeding_digest,
    trial_seed,
    trial_seeds,
)


class Color(Enum):
    RED = "red"
    BLUE = "blue"


@dataclass(frozen=True)
class ToyConfig:
    trials: int = 10
    rate: float = 1.5
    color: Color = Color.RED
    windows: tuple = (1.0, 2.0)


class TestConfigDigest:
    def test_stable_across_calls(self):
        assert config_digest("toy", ToyConfig()) == config_digest("toy", ToyConfig())

    def test_differs_per_experiment(self):
        assert config_digest("a", ToyConfig()) != config_digest("b", ToyConfig())

    def test_differs_per_field_value(self):
        assert config_digest("toy", ToyConfig(trials=10)) != config_digest(
            "toy", ToyConfig(trials=11)
        )

    def test_float_fields_not_collapsed(self):
        # 1.5 vs 1.5000000001 must hash differently (repr round-trip).
        assert config_digest("toy", ToyConfig(rate=1.5)) != config_digest(
            "toy", ToyConfig(rate=1.5000000001)
        )

    def test_enum_fields_hash_by_name(self):
        assert config_digest("toy", ToyConfig(color=Color.RED)) != config_digest(
            "toy", ToyConfig(color=Color.BLUE)
        )

    def test_real_experiment_config(self):
        base = Table1Config(trials=30, seed=777)
        assert config_digest("table1", base) == config_digest(
            "table1", Table1Config(trials=30, seed=777)
        )
        assert config_digest("table1", base) != config_digest(
            "table1", Table1Config(trials=30, seed=778)
        )

    def test_folds_in_code_version(self):
        assert isinstance(code_version(), str) and code_version()

    def test_unhashable_field_raises(self):
        @dataclass(frozen=True)
        class Bad:
            thing: object = object()

        with pytest.raises(TypeError):
            config_digest("bad", Bad())


class TestSeedingDigest:
    def test_equals_cache_digest_without_declarations(self):
        assert seeding_digest("toy", ToyConfig()) == config_digest("toy", ToyConfig())

    def test_fault_fields_split_the_cache_but_not_the_seeds(self):
        clean = Table1Config(trials=30, seed=777)
        faulted = Table1Config(trials=30, seed=777, faults="chaos", fault_seed=9)
        # Distinct cache cells (a faulted run must never be served the
        # clean run's cached bytes)...
        assert config_digest("table1", clean) != config_digest("table1", faulted)
        # ...but identical trial streams: the fault plan draws from its
        # own seed, so faults degrade the same trials the clean run has.
        assert seeding_digest("table1", clean) == seeding_digest("table1", faulted)

    def test_non_fault_fields_still_shift_the_seeds(self):
        assert seeding_digest("table1", Table1Config(seed=1)) != seeding_digest(
            "table1", Table1Config(seed=2)
        )


class TestTrialSeeds:
    def test_distinct_per_index(self):
        digest = config_digest("toy", ToyConfig())
        seeds = trial_seeds("toy", digest, 50)
        assert len(set(seeds)) == 50

    def test_stable_per_index(self):
        digest = config_digest("toy", ToyConfig())
        assert trial_seed("toy", digest, 7) == trial_seed("toy", digest, 7)

    def test_distinct_per_digest(self):
        d1 = config_digest("toy", ToyConfig(trials=1))
        d2 = config_digest("toy", ToyConfig(trials=2))
        assert trial_seed("toy", d1, 0) != trial_seed("toy", d2, 0)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            trial_seed("toy", "digest", -1)

    def test_empty_seed_list(self):
        assert trial_seeds("toy", "digest", 0) == []
