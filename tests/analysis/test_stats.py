"""Tests for statistics helpers."""

from __future__ import annotations

import math

import pytest

from repro.analysis.stats import (
    EmpiricalCDF,
    percentile,
    proportion_ci95,
    relative_error,
    summarize,
)


class TestSummarize:
    def test_basic(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.mean == 2.0
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert math.isclose(summary.std, 1.0)

    def test_single_value(self):
        summary = summarize([5.0])
        assert summary.std == 0.0
        assert summary.ci95_half_width == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_ci_contains_mean(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        low, high = summary.ci95
        assert low <= summary.mean <= high

    def test_ci_shrinks_with_samples(self):
        small = summarize([1.0, 2.0] * 5)
        large = summarize([1.0, 2.0] * 500)
        assert large.ci95_half_width < small.ci95_half_width

    def test_format(self):
        assert "mean=" in summarize([1.0, 2.0]).format("s")


class TestPercentile:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_extremes(self):
        values = [3.0, 1.0, 2.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 3.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == 2.5

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestProportionCI:
    def test_contains_point_estimate(self):
        low, high = proportion_ci95(90, 100)
        assert low <= 0.9 <= high

    def test_bounds_clamped(self):
        low, high = proportion_ci95(0, 10)
        assert low == 0.0
        low, high = proportion_ci95(10, 10)
        assert high == 1.0

    def test_narrower_with_more_trials(self):
        narrow = proportion_ci95(900, 1000)
        wide = proportion_ci95(9, 10)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            proportion_ci95(1, 0)
        with pytest.raises(ValueError):
            proportion_ci95(11, 10)


class TestRelativeError:
    def test_value(self):
        assert math.isclose(relative_error(1.1, 1.0), 0.1)

    def test_zero_reference(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)


class TestEmpiricalCDF:
    def test_from_samples_with_censoring(self):
        cdf = EmpiricalCDF.from_samples([1.0, None, 3.0, 2.0])
        assert cdf.total == 4
        assert cdf.times == (1.0, 2.0, 3.0)
        assert cdf.completion_fraction == 0.75

    def test_value_steps(self):
        cdf = EmpiricalCDF.from_samples([1.0, 2.0, 3.0, None])
        assert cdf.value(0.5) == 0.0
        assert cdf.value(1.0) == 0.25
        assert cdf.value(2.5) == 0.5
        assert cdf.value(100.0) == 0.75  # censored sample never completes

    def test_monotone_on_grid(self):
        cdf = EmpiricalCDF.from_samples([0.5, 1.5, 2.5, 2.5, None])
        curve = cdf.sample_curve([0.0, 1.0, 2.0, 3.0, 4.0])
        assert curve == sorted(curve)

    def test_empty(self):
        cdf = EmpiricalCDF.from_samples([])
        assert cdf.value(10.0) == 0.0
        assert cdf.completion_fraction == 0.0

    def test_unsorted_times_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF(times=(2.0, 1.0), total=2)

    def test_total_smaller_than_events_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF(times=(1.0, 2.0), total=1)
