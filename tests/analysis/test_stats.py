"""Tests for statistics helpers."""

from __future__ import annotations

import math

import pytest

from repro.analysis.stats import (
    EmpiricalCDF,
    percentile,
    proportion_ci95,
    relative_error,
    summarize,
)


class TestSummarize:
    def test_basic(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.mean == 2.0
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert math.isclose(summary.std, 1.0)

    def test_single_value(self):
        summary = summarize([5.0])
        assert summary.std == 0.0
        assert summary.ci95_half_width == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_ci_contains_mean(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        low, high = summary.ci95
        assert low <= summary.mean <= high

    def test_ci_shrinks_with_samples(self):
        small = summarize([1.0, 2.0] * 5)
        large = summarize([1.0, 2.0] * 500)
        assert large.ci95_half_width < small.ci95_half_width

    def test_format(self):
        assert "mean=" in summarize([1.0, 2.0]).format("s")


class TestPercentile:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_extremes(self):
        values = [3.0, 1.0, 2.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 3.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == 2.5

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -0.5)

    def test_single_sample_any_q(self):
        # With one sample every percentile is that sample, including
        # the q=0/q=100 extremes.
        for q in (0, 12.5, 50, 99.9, 100):
            assert percentile([4.2], q) == 4.2

    def test_extreme_q_with_duplicates(self):
        values = [2.0, 2.0, 2.0]
        assert percentile(values, 0) == 2.0
        assert percentile(values, 100) == 2.0

    def test_boundary_q_are_exact_order_statistics(self):
        # q=0/100 must return the min/max exactly — no interpolation
        # drift — because report tables print them as observed bounds.
        values = [0.1 * i for i in range(1, 8)]
        assert percentile(values, 0) == min(values)
        assert percentile(values, 100) == max(values)

    def test_does_not_mutate_input(self):
        values = [3.0, 1.0, 2.0]
        percentile(values, 50)
        assert values == [3.0, 1.0, 2.0]


class TestProportionCI:
    def test_contains_point_estimate(self):
        low, high = proportion_ci95(90, 100)
        assert low <= 0.9 <= high

    def test_bounds_clamped(self):
        low, high = proportion_ci95(0, 10)
        assert low == 0.0
        low, high = proportion_ci95(10, 10)
        assert high == 1.0

    def test_narrower_with_more_trials(self):
        narrow = proportion_ci95(900, 1000)
        wide = proportion_ci95(9, 10)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            proportion_ci95(1, 0)
        with pytest.raises(ValueError):
            proportion_ci95(11, 10)
        with pytest.raises(ValueError):
            proportion_ci95(-1, 10)

    def test_zero_successes_interval_is_informative(self):
        # Wilson at 0/n: lower bound pins to 0 but the upper bound
        # stays strictly positive and below 1 — unlike the Wald
        # interval, which degenerates to (0, 0).
        low, high = proportion_ci95(0, 20)
        assert low == 0.0
        assert 0.0 < high < 1.0

    def test_all_successes_interval_is_informative(self):
        low, high = proportion_ci95(20, 20)
        assert high == 1.0
        assert 0.0 < low < 1.0

    def test_extremes_tighten_with_trials(self):
        few = proportion_ci95(0, 5)
        many = proportion_ci95(0, 500)
        assert many[1] < few[1]

    def test_single_trial(self):
        low, high = proportion_ci95(1, 1)
        assert 0.0 <= low < 1.0 and high == 1.0
        low, high = proportion_ci95(0, 1)
        assert low == 0.0 and 0.0 < high <= 1.0


class TestRelativeError:
    def test_value(self):
        assert math.isclose(relative_error(1.1, 1.0), 0.1)

    def test_zero_reference(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)


class TestEmpiricalCDF:
    def test_from_samples_with_censoring(self):
        cdf = EmpiricalCDF.from_samples([1.0, None, 3.0, 2.0])
        assert cdf.total == 4
        assert cdf.times == (1.0, 2.0, 3.0)
        assert cdf.completion_fraction == 0.75

    def test_value_steps(self):
        cdf = EmpiricalCDF.from_samples([1.0, 2.0, 3.0, None])
        assert cdf.value(0.5) == 0.0
        assert cdf.value(1.0) == 0.25
        assert cdf.value(2.5) == 0.5
        assert cdf.value(100.0) == 0.75  # censored sample never completes

    def test_monotone_on_grid(self):
        cdf = EmpiricalCDF.from_samples([0.5, 1.5, 2.5, 2.5, None])
        curve = cdf.sample_curve([0.0, 1.0, 2.0, 3.0, 4.0])
        assert curve == sorted(curve)

    def test_empty(self):
        cdf = EmpiricalCDF.from_samples([])
        assert cdf.value(10.0) == 0.0
        assert cdf.completion_fraction == 0.0

    def test_unsorted_times_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF(times=(2.0, 1.0), total=2)

    def test_total_smaller_than_events_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF(times=(1.0, 2.0), total=1)
