"""Tests for table and curve rendering."""

from __future__ import annotations

import pytest

from repro.analysis.curves import Series, render_curves
from repro.analysis.tables import render_comparison, render_table


class TestRenderTable:
    def test_contains_cells(self):
        text = render_table(["name", "value"], [["alpha", 1], ["beta", 22]])
        assert "alpha" in text and "22" in text

    def test_title(self):
        text = render_table(["a"], [["x"]], title="My Table")
        assert text.startswith("My Table")

    def test_column_alignment_width(self):
        text = render_table(["h"], [["looooooong"], ["s"]])
        lines = [l for l in text.splitlines() if l.startswith("|")]
        assert len({len(l) for l in lines}) == 1  # all rows same width

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_align_right_length_checked(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["x"]], align_right=[True, False])


class TestRenderComparison:
    def test_relative_error_column(self):
        text = render_comparison("t", [("case", 1.1, 1.0)])
        assert "10.0%" in text

    def test_missing_reference(self):
        text = render_comparison("t", [("case", 1.1, None)])
        assert "—" in text

    def test_unit_suffix(self):
        text = render_comparison("t", [("case", 1.5, 1.5)], unit="s")
        assert "1.5000s" in text


class TestRenderCurves:
    def test_basic_plot(self):
        grid = [0.0, 1.0, 2.0, 3.0]
        series = [Series("up", (0.0, 0.3, 0.7, 1.0))]
        text = render_curves(grid, series, title="Plot")
        assert text.startswith("Plot")
        assert "legend: 1=up" in text
        assert "1.00 |" in text and "0.00 |" in text

    def test_multiple_series_glyphs(self):
        grid = [0.0, 1.0]
        series = [Series("a", (0.0, 1.0)), Series("b", (1.0, 0.0))]
        text = render_curves(grid, series)
        assert "1=a" in text and "2=b" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_curves([0.0, 1.0], [Series("a", (0.0,))])

    def test_no_series_rejected(self):
        with pytest.raises(ValueError):
            render_curves([0.0], [])

    def test_values_clamped_to_range(self):
        grid = [0.0, 1.0]
        series = [Series("a", (-5.0, 5.0))]
        text = render_curves(grid, series)  # must not raise
        assert "legend" in text

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            Series("a", ())

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ValueError):
            render_curves([0.0, 1.0], [Series("a", (0.0, 1.0))], height=1)
