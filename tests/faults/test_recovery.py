"""Recovery mechanics: crash/restart, brownouts, graceful degradation.

The other half of fault injection — what the pipeline does about it:
workstation restart re-registers and re-reports, reliable senders
bridge server brownouts, and the database marks (never invents)
answers it can no longer confirm.
"""

from __future__ import annotations

from repro.core import BIPSConfig, BIPSSimulation
from repro.faults import RetryPolicy
from repro.lan.messages import LocationResponse
from repro.lan.transport import LANTransport, LatencyModel

#: Users stay put for the whole run: recovery tests need a stationary
#: ground truth, not a walk that happens to end mid-crash.
STAY = dict(dwell_low_seconds=500.0, dwell_high_seconds=600.0)

POLICY = RetryPolicy(jitter_ms=0.0)


def _tracked_sim(seed=11, **config_kwargs):
    sim = BIPSSimulation(config=BIPSConfig(seed=seed, **STAY, **config_kwargs))
    sim.add_user("u-a", "A")
    sim.add_user("u-b", "B")
    sim.login("u-a")
    sim.login("u-b")
    sim.follow_route("u-a", ["lab-1"])
    return sim


class TestWorkstationRestart:
    def test_crash_and_restart_reregisters_and_reannounces(self):
        sim = _tracked_sim()
        sim.run(until_seconds=60.0)
        assert sim.server.locate("u-b", "A") == "lab-1"
        workstation = sim.workstations["lab-1"]
        sim.fail_workstation("lab-1")
        assert workstation.workstation_id not in sim.lan.endpoint_names
        sim.recover_workstation("lab-1")
        assert workstation.workstation_id in sim.lan.endpoint_names
        assert workstation.reregistrations == 1
        assert sim.metrics.counter("core.workstation_reregistrations").value == 1
        # The re-hello re-announced the room mapping to the server.
        sim.run(until_seconds=61.0)
        assert sim.server.room_of_workstation(workstation.workstation_id) == "lab-1"

    def test_tracking_resumes_after_restart(self):
        sim = _tracked_sim()
        sim.run(until_seconds=60.0)
        sim.fail_workstation("lab-1")
        sim.run(until_seconds=120.0)
        sim.recover_workstation("lab-1")
        # The restarted tracker is empty; the next windows re-discover
        # and re-report the user still standing in the room.
        sim.run(until_seconds=240.0)
        assert sim.server.locate("u-b", "A") == "lab-1"
        device = sim.user("u-a").device.address
        confirmed = sim.server.location_db.last_confirmed(device)
        assert confirmed is not None and confirmed > 0

    def test_crash_keeps_last_position_as_degraded_answer(self):
        # refresh every cycle (~15.4 s) keeps a healthy record fresh
        # within the 40 s staleness horizon; a 100 s crash starves the
        # refreshes, so the answer survives but stops claiming freshness.
        sim = _tracked_sim(refresh_interval_cycles=1, staleness_horizon_seconds=40.0)
        sim.run(until_seconds=60.0)
        device = sim.user("u-a").device.address
        assert not sim.server.location_db.is_stale(device, sim.kernel.now)
        sim.fail_workstation("lab-1")
        sim.run(until_seconds=170.0)
        room, stale = sim.server.queries.locate_full("u-b", "A", sim.kernel.now)
        assert room == "lab-1"  # kept, not erased
        assert stale
        assert device in sim.server.location_db.stale_devices(sim.kernel.now)
        # Recovery re-reports the user and the answer turns fresh again.
        sim.recover_workstation("lab-1")
        sim.run(until_seconds=280.0)
        room, stale = sim.server.queries.locate_full("u-b", "A", sim.kernel.now)
        assert room == "lab-1"
        assert not stale

    def test_stale_flag_reaches_the_lan_response(self):
        sim = _tracked_sim(refresh_interval_cycles=1, staleness_horizon_seconds=40.0)
        sim.run(until_seconds=60.0)
        sim.fail_workstation("lab-1")
        sim.run(until_seconds=170.0)
        sim.query_location_via_lan("u-b", "A")
        sim.run(until_seconds=171.0)
        response = next(
            m for m in sim.user("u-b").inbox if isinstance(m, LocationResponse)
        )
        assert response.room_id == "lab-1"
        assert response.stale
        assert sim.metrics.counter("core.stale_answers").value >= 1


class TestServerBrownout:
    def test_brownout_drops_queries_silently(self):
        sim = _tracked_sim()
        sim.run(until_seconds=60.0)
        sim.server.set_brownout(True)
        assert sim.server.brownouts == 1
        assert sim.metrics.counter("core.server_brownouts").value == 1
        sim.query_location_via_lan("u-b", "A")
        sim.run(until_seconds=90.0)
        assert not any(
            isinstance(m, LocationResponse) for m in sim.user("u-b").inbox
        )
        sim.server.set_brownout(False)
        sim.query_location_via_lan("u-b", "A")
        sim.run(until_seconds=120.0)
        assert any(isinstance(m, LocationResponse) for m in sim.user("u-b").inbox)

    def test_set_brownout_is_idempotent(self):
        sim = _tracked_sim()
        sim.server.set_brownout(True)
        sim.server.set_brownout(True)
        assert sim.server.brownouts == 1
        sim.server.set_brownout(False)
        sim.server.set_brownout(False)
        assert sim.server.brownouts == 1

    def test_reliable_sender_bridges_a_short_brownout(self, kernel):
        # The recovery story for brownouts: retransmission with backoff
        # outlives the outage, so the delta arrives — exactly once.
        transport = LANTransport(kernel, latency=LatencyModel(jitter_ms=0.0))
        received = []
        transport.register("server", lambda src, msg: received.append(msg))
        transport.unregister("server")  # brownout starts
        transport.send_reliable("ws:lab-1", "server", "delta", POLICY)
        kernel.run_until(kernel.now + 10)
        assert received == []
        transport.register("server", lambda src, msg: received.append(msg))
        kernel.run_until(kernel.now + 100_000)
        assert received == ["delta"]
        assert transport.stats.retries >= 1
        assert transport.pending_reliable == 0


class TestRetryPolicyWiring:
    def test_config_retry_policy_routes_deltas_reliably(self):
        sim = _tracked_sim(retry_policy=POLICY)
        sim.run(until_seconds=60.0)
        assert sim.lan.stats.reliable_sent > 0
        assert sim.lan.stats.acks_sent > 0
        assert sim.server.locate("u-b", "A") == "lab-1"

    def test_default_config_stays_fire_and_forget(self):
        sim = _tracked_sim()
        sim.run(until_seconds=60.0)
        assert sim.lan.stats.reliable_sent == 0
        assert sim.lan.stats.acks_sent == 0
