"""The LAN fault injector: decision streams and metrics."""

from __future__ import annotations

from repro.faults import NO_FAULT, LANFaultInjector, profile_named
from repro.obs.metrics import MetricsRegistry
from repro.sim.rng import RandomStream


def _injector(profile_name="lossy-lan", seed=7, **kwargs):
    return LANFaultInjector(
        profile_named(profile_name), RandomStream(seed, "faults", "lan"), **kwargs
    )


def _drain(injector, count=500):
    return [injector.decide(0, "ws:a", "server", f"m{i}") for i in range(count)]


class TestDecisions:
    def test_same_seed_same_decision_stream(self):
        assert _drain(_injector(seed=3)) == _drain(_injector(seed=3))

    def test_different_seed_different_stream(self):
        assert _drain(_injector(seed=3)) != _drain(_injector(seed=4))

    def test_lossy_profile_actually_drops_and_duplicates(self):
        injector = _injector()
        decisions = _drain(injector, 2000)
        assert injector.decisions == 2000
        assert any(d.drop for d in decisions)
        assert any(d.duplicates for d in decisions)
        assert any(d.extra_delay_ticks for d in decisions)
        # Drop rate should be in the neighbourhood of the profile's 5%.
        assert 0.02 < injector.dropped / injector.decisions < 0.10

    def test_noop_profile_never_faults(self):
        injector = _injector("none")
        assert all(d is NO_FAULT for d in _drain(injector))
        assert injector.decisions == 0

    def test_inactive_past_the_active_window(self):
        injector = _injector(active_until_tick=100)
        assert injector.decide(100, "a", "b", "m") is NO_FAULT
        assert injector.decide(10_000, "a", "b", "m") is NO_FAULT
        assert injector.decisions == 0

    def test_drop_short_circuits_other_draws(self):
        injector = _injector()
        for decision in _drain(injector, 1000):
            if decision.drop:
                assert decision.extra_delay_ticks == 0
                assert decision.duplicates == 0


class TestMetrics:
    def test_counters_match_internal_tallies(self):
        registry = MetricsRegistry()
        injector = _injector(metrics=registry)
        _drain(injector, 1000)
        snapshot = {
            (record["name"]): record for record in registry.snapshot()
        }
        assert snapshot["faults.lan_dropped"]["value"] == injector.dropped
        assert snapshot["faults.lan_duplicated"]["value"] == injector.duplicated
        assert snapshot["faults.lan_delayed"]["value"] == injector.delayed
        assert snapshot["faults.lan_reordered"]["value"] == injector.reordered
        assert injector.dropped > 0
