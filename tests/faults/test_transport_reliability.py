"""Transport-level reliable delivery under injected faults.

Covers the retry/ack/dedup machinery of ``LANTransport.send_reliable``
and the declared fault-injection seam (``fault_injector=...``).  A
scripted injector stands in for the seeded one so each test exercises
exactly one fault shape.
"""

from __future__ import annotations

import pytest

from repro.faults import NO_FAULT, FaultDecision, RetryPolicy
from repro.lan.transport import (
    DeliveryAck,
    LANTransport,
    LatencyModel,
    UnknownEndpointError,
)

#: Deterministic policy: no jitter (the transports here carry no rng).
POLICY = RetryPolicy(jitter_ms=0.0)

LONG = 100_000  # run well past every retry timer


class ScriptedFaults:
    """A fault injector fake driving the declared seam from a script.

    ``script`` maps message index (in decide order, data and acks
    alike) to a :class:`FaultDecision`; everything else passes clean.
    """

    def __init__(self, script):
        self.script = dict(script)
        self.calls = []

    def decide(self, now, source, destination, message):
        index = len(self.calls)
        self.calls.append((now, source, destination, message))
        return self.script.get(index, NO_FAULT)


def _rig(kernel, faults=None):
    transport = LANTransport(
        kernel, latency=LatencyModel(base_ms=0.3, jitter_ms=0.0), fault_injector=faults
    )
    received = []
    transport.register("server", lambda src, msg: received.append(msg))
    transport.register("ws:lab-1", lambda src, msg: None)
    return transport, received


class TestEndpointSemantics:
    def test_never_registered_destination_raises(self, kernel):
        transport, _ = _rig(kernel)
        with pytest.raises(UnknownEndpointError):
            transport.send_reliable("ws:lab-1", "ghost", "delta", POLICY)

    def test_known_but_down_destination_drops_silently(self, kernel):
        transport, received = _rig(kernel)
        transport.unregister("server")
        transport.send("ws:lab-1", "server", "delta")  # no raise
        kernel.run_until(LONG)
        assert received == []
        assert transport.stats.dropped == 1


class TestFaultSeam:
    def test_drop_decision_loses_the_message(self, kernel):
        faults = ScriptedFaults({0: FaultDecision(drop=True)})
        transport, received = _rig(kernel, faults)
        transport.send("ws:lab-1", "server", "delta")
        kernel.run_until(LONG)
        assert received == []
        assert transport.stats.dropped == 1

    def test_delay_decision_postpones_delivery(self, kernel):
        faults = ScriptedFaults({0: FaultDecision(extra_delay_ticks=500)})
        transport, _ = _rig(kernel, faults)
        arrival = []
        transport.register("sink", lambda s, m: arrival.append(kernel.now))
        transport.send("ws:lab-1", "sink", "delta")
        kernel.run_until(LONG)
        assert arrival and arrival[0] >= 500

    def test_duplicate_decision_delivers_twice_for_plain_sends(self, kernel):
        # Fire-and-forget sends have no seq, so an injected duplicate
        # really reaches the handler twice -- that is the failure mode
        # send_reliable exists to fix.
        faults = ScriptedFaults({0: FaultDecision(duplicates=1)})
        transport, received = _rig(kernel, faults)
        transport.send("ws:lab-1", "server", "delta")
        kernel.run_until(LONG)
        assert received == ["delta", "delta"]


class TestReliableDelivery:
    def test_ack_cancels_the_retry(self, kernel):
        transport, received = _rig(kernel)
        transport.send_reliable("ws:lab-1", "server", "delta", POLICY)
        kernel.run_until(LONG)
        assert received == ["delta"]
        assert transport.stats.retries == 0
        assert transport.stats.acks_sent == 1
        assert transport.pending_reliable == 0

    def test_lost_message_is_retransmitted(self, kernel):
        faults = ScriptedFaults({0: FaultDecision(drop=True)})
        transport, received = _rig(kernel, faults)
        transport.send_reliable("ws:lab-1", "server", "delta", POLICY)
        kernel.run_until(LONG)
        assert received == ["delta"]
        assert transport.stats.retries == 1
        assert transport.pending_reliable == 0

    def test_injected_duplicate_is_suppressed(self, kernel):
        # Satellite regression: a delta observed twice increments
        # lan.duplicates_dropped and reaches the handler exactly once.
        faults = ScriptedFaults({0: FaultDecision(duplicates=1)})
        transport, received = _rig(kernel, faults)
        transport.send_reliable("ws:lab-1", "server", "delta", POLICY)
        kernel.run_until(LONG)
        assert received == ["delta"]
        assert transport.stats.duplicates_dropped == 1

    def test_lost_ack_causes_retry_then_dedup(self, kernel):
        # Data arrives, the ack is dropped: the sender retransmits, the
        # receiver sees a duplicate, suppresses it, and re-acks.
        faults = ScriptedFaults({1: FaultDecision(drop=True)})  # call 1 = the ack
        transport, received = _rig(kernel, faults)
        transport.send_reliable("ws:lab-1", "server", "delta", POLICY)
        kernel.run_until(LONG)
        assert received == ["delta"]  # applied once despite two deliveries
        assert transport.stats.duplicates_dropped == 1
        assert transport.stats.retries == 1
        assert transport.pending_reliable == 0
        # The dropped frame really was the ack.
        assert isinstance(faults.calls[1][3], DeliveryAck)

    def test_retries_exhaust_after_the_attempt_budget(self, kernel):
        faults = ScriptedFaults(
            {index: FaultDecision(drop=True) for index in range(POLICY.max_attempts)}
        )
        transport, received = _rig(kernel, faults)
        transport.send_reliable("ws:lab-1", "server", "delta", POLICY)
        kernel.run_until(LONG)
        assert received == []
        assert transport.stats.retries == POLICY.max_attempts - 1
        assert transport.stats.retries_exhausted == 1
        assert transport.pending_reliable == 0

    def test_acks_never_reach_handlers(self, kernel):
        transport, received = _rig(kernel)
        for index in range(5):
            transport.send_reliable("ws:lab-1", "server", f"d{index}", POLICY)
        kernel.run_until(LONG)
        assert received == [f"d{index}" for index in range(5)]
        assert transport.stats.acks_sent == 5

    def test_abort_pending_cancels_a_crashed_sources_queue(self, kernel):
        # Server down: the delta cannot be acked, so it sits pending.
        transport, received = _rig(kernel)
        transport.unregister("server")
        transport.send_reliable("ws:lab-1", "server", "delta", POLICY)
        assert transport.pending_reliable == 1
        aborted = transport.abort_pending("ws:lab-1")
        assert aborted == 1
        assert transport.pending_reliable == 0
        kernel.run_until(LONG)
        assert received == []
        assert transport.stats.retries == 0  # timer was cancelled
        assert transport.stats.aborted == 1

    def test_sequence_numbers_are_per_direction(self, kernel):
        transport, received = _rig(kernel)
        transport.send_reliable("ws:lab-1", "server", "a", POLICY)
        transport.send_reliable("server", "ws:lab-1", "b", POLICY)
        kernel.run_until(LONG)
        # Both used seq 0 in their own (source, destination) space and
        # neither was mistaken for a duplicate of the other.
        assert received == ["a"]
        assert transport.stats.duplicates_dropped == 0
