"""Radio outages degrade table1's rows — they never go missing.

The discovery-time harness has no LAN or workstation process, so the
crash axis of a fault profile maps to the master's radio going deaf
for seed-derived windows.  The regression being pinned: a trial whose
master was deaf discovers late (or not at all) and still renders —
the experiment completes with degraded rows, not absent ones.
"""

from __future__ import annotations

from repro.experiments.table1 import Table1Config, run_table1
from repro.obs.metrics import MetricsRegistry
from repro.runner import ExperimentRunner

TRIALS = 30
CLEAN = Table1Config(trials=TRIALS, seed=321)
FAULTED = Table1Config(trials=TRIALS, seed=321, faults="chaos", fault_seed=7)


class TestDegradedOutput:
    def test_every_trial_row_survives_the_outages(self):
        result = run_table1(FAULTED)
        assert len(result.trials) == TRIALS
        csv = result.to_csv()
        assert len(csv.splitlines()) == TRIALS + 1  # header + one row each
        # The three-row table renders even with outage-stretched tails.
        rendered = result.render()
        for row_label in ("Same", "Different", "Mixed"):
            assert row_label in rendered

    def test_outages_actually_degrade_discovery(self):
        clean = run_table1(CLEAN)
        faulted = run_table1(FAULTED)
        # Same seed, same trials; only the outage windows differ — so
        # discovery can only get slower, never faster.
        slowed = 0
        for before, after in zip(clean.trials, faulted.trials):
            assert before.same_train == after.same_train
            if after.discovery_seconds is None:
                slowed += 1
                continue
            assert after.discovery_seconds >= before.discovery_seconds
            if after.discovery_seconds > before.discovery_seconds:
                slowed += 1
        assert slowed > 0, "chaos profile never touched a trial"
        assert faulted.mixed_summary.mean > clean.mixed_summary.mean

    def test_default_fault_fields_leave_results_untouched(self):
        # faults="none"/fault_seed=0 are omitted from the config digest
        # at their defaults, so the pre-fault trial seeds — and bytes —
        # are preserved exactly.
        explicit = Table1Config(trials=TRIALS, seed=321, faults="none", fault_seed=0)
        assert run_table1(CLEAN).to_csv() == run_table1(explicit).to_csv()

    def test_faulted_run_is_parallel_safe(self):
        serial = run_table1(FAULTED)
        parallel = run_table1(FAULTED, runner=ExperimentRunner(jobs=2))
        assert serial.to_csv() == parallel.to_csv()

    def test_metrics_flag_the_fault_run(self):
        registry = MetricsRegistry()
        run_table1(FAULTED, metrics=registry)
        assert registry.gauge("faults.active").value == 1
        clean_registry = MetricsRegistry()
        run_table1(CLEAN, metrics=clean_registry)
        assert clean_registry.gauge("faults.active").value == 0
