"""The fault plan: profiles, windows, and seed determinism."""

from __future__ import annotations

import pytest

from repro.faults import (
    PROFILES,
    FaultPlan,
    FaultProfile,
    in_windows,
    profile_named,
    profile_names,
)
from repro.sim.clock import ticks_from_seconds

HORIZON = ticks_from_seconds(600.0)


class TestProfiles:
    def test_registry_contains_the_documented_profiles(self):
        assert {"none", "lossy-lan", "flaky-workstations", "brownout", "chaos"} <= set(
            profile_names()
        )

    def test_unknown_profile_raises_with_known_names(self):
        with pytest.raises(KeyError) as excinfo:
            profile_named("total-mayhem")
        assert "lossy-lan" in str(excinfo.value)

    def test_none_profile_is_noop(self):
        assert PROFILES["none"].is_noop
        assert FaultPlan.named("none").is_noop

    def test_every_other_profile_is_not_noop(self):
        for name in profile_names():
            if name != "none":
                assert not PROFILES[name].is_noop, name

    def test_profiles_validate_probabilities(self):
        with pytest.raises(ValueError):
            FaultProfile(name="bad", drop_probability=1.5)

    def test_fault_profiles_carry_a_retry_policy(self):
        for name in profile_names():
            if name != "none":
                assert PROFILES[name].retry_policy is not None, name


class TestWindows:
    def test_same_seed_same_windows(self):
        plan_a = FaultPlan.named("chaos", seed=7)
        plan_b = FaultPlan.named("chaos", seed=7)
        assert plan_a.crash_windows("lab-1", HORIZON) == plan_b.crash_windows(
            "lab-1", HORIZON
        )
        assert plan_a.brownout_windows(HORIZON) == plan_b.brownout_windows(HORIZON)
        assert plan_a.radio_outages("3", HORIZON) == plan_b.radio_outages("3", HORIZON)

    def test_different_seeds_differ(self):
        windows = {
            FaultPlan.named("chaos", seed=s).crash_windows("lab-1", HORIZON)
            for s in range(6)
        }
        assert len(windows) > 1

    def test_rooms_get_independent_windows(self):
        plan = FaultPlan.named("chaos", seed=7)
        assert plan.crash_windows("lab-1", HORIZON) != plan.crash_windows(
            "lab-2", HORIZON
        )

    def test_windows_are_sorted_disjoint_and_clamped(self):
        plan = FaultPlan.named("chaos", seed=11)
        limit = plan.active_until_tick()
        assert limit is not None
        for room in ("lab-1", "lab-2", "office-3"):
            windows = plan.crash_windows(room, HORIZON)
            previous_end = 0
            for start, end in windows:
                assert 0 <= start < end <= min(HORIZON, limit)
                assert start >= previous_end
                previous_end = end

    def test_recovery_lands_inside_the_active_window(self):
        # The precondition of every convergence invariant: after the
        # fault window closes, nothing is still broken.
        plan = FaultPlan.named("flaky-workstations", seed=3)
        limit = plan.active_until_tick()
        for room in ("a", "b", "c", "d"):
            for _start, end in plan.crash_windows(room, HORIZON):
                assert end <= limit

    def test_noop_plan_expands_to_nothing(self):
        plan = FaultPlan.named("none", seed=9)
        assert plan.crash_windows("lab-1", HORIZON) == ()
        assert plan.brownout_windows(HORIZON) == ()
        assert plan.radio_outages("0", HORIZON) == ()
        assert plan.lan_injector() is None
        assert plan.survival_predicate("0", HORIZON) is None

    def test_in_windows(self):
        windows = ((10, 20), (30, 40))
        assert in_windows(windows, 10)
        assert in_windows(windows, 19)
        assert not in_windows(windows, 20)
        assert not in_windows(windows, 25)
        assert in_windows(windows, 39)

    def test_survival_predicate_tracks_outages(self):
        plan = FaultPlan.named("flaky-workstations", seed=5)
        outages = plan.radio_outages("0", HORIZON)
        assert outages  # the profile has a radio-outage axis
        reachable = plan.survival_predicate("0", HORIZON)
        start, end = outages[0]
        assert not reachable(None, start)
        assert reachable(None, end)
