"""Chaos suite: system invariants under every registered fault profile.

Each profile drives a full BIPS deployment with stationary users; the
assertions are invariants, not statistics — whatever the plan broke,
the pipeline must keep every user attributed to at most one piconet,
re-converge within a bounded number of inquiry cycles once the fault
window closes, and stay byte-reproducible from ``(seed, fault seed)``.
"""

from __future__ import annotations

import pytest

from repro.core import BIPSConfig, BIPSSimulation
from repro.faults import FaultPlan, profile_names

#: The stock profiles stop injecting at 300 s (``active_seconds``); a
#: 400 s run leaves ~6 §5 inquiry cycles (15.4 s each) of healthy tail,
#: comfortably above the convergence bound below.
FAULTS_END_SECONDS = 300.0
RUN_SECONDS = 400.0

#: Convergence bound: miss_threshold (2) cycles to flush a false
#: absence plus one cycle to re-discover and one for LAN/refresh slack.
CONVERGENCE_CYCLES = 4

ROUTES = {"u-a": ("A", "lab-1"), "u-b": ("B", "lab-2")}


def _chaos_sim(profile: str, fault_seed: int = 5, seed: int = 13) -> BIPSSimulation:
    config = BIPSConfig(
        seed=seed,
        dwell_low_seconds=500.0,
        dwell_high_seconds=600.0,
        refresh_interval_cycles=1,
        staleness_horizon_seconds=60.0,
    )
    sim = BIPSSimulation(config=config, faults=FaultPlan.named(profile, seed=fault_seed))
    for userid, (username, room) in ROUTES.items():
        sim.add_user(userid, username)
        sim.login(userid)
        sim.follow_route(userid, [room])
    return sim


def _location_trace(sim: BIPSSimulation) -> list[tuple[str, int, object]]:
    """The byte-comparable outcome of a run: every DB transition."""
    trace = []
    for userid in sorted(ROUTES):
        device = sim.user(userid).device.address
        for event in sim.server.location_db.history_of(device):
            trace.append((userid, event.tick, event.room_id))
    return trace


@pytest.mark.parametrize("profile", profile_names())
class TestEveryProfile:
    def test_invariants_hold_and_tracking_converges(self, profile):
        sim = _chaos_sim(profile)
        sim.run(until_seconds=RUN_SECONDS)

        # 1. No user is in two piconets: tracker presence sets are
        #    disjoint and the database attributes each device one room.
        seen = set()
        for room_id in sorted(sim.workstations):
            present = sim.workstations[room_id].tracker.present_devices
            assert not (present & seen), f"{profile}: device in two piconets"
            seen |= present
        occupants = [
            device
            for room in sorted(sim.plan.rooms)
            for device in sim.server.location_db.occupants_of(room)
        ]
        assert len(occupants) == len(set(occupants))

        # 2. Convergence: the fault window closed >6 cycles ago, so
        #    every stationary user is attributed to their real room and
        #    the attribution is fresh again (no lingering staleness).
        for userid, (username, room) in ROUTES.items():
            querier = next(u for u in ROUTES if u != userid)
            answer, stale = sim.server.queries.locate_full(
                querier, username, sim.kernel.now
            )
            assert answer == room, f"{profile}: {username} misplaced after recovery"
            assert not stale, f"{profile}: answer still stale after recovery"

        # 3. Whatever was injected, nothing leaked past the window: all
        #    workstations are up and no reliable send is stuck.
        for workstation in sim.workstations.values():
            assert not workstation.failed
        assert not sim.server.browned_out
        assert sim.lan.pending_reliable == 0

    def test_runs_are_byte_reproducible(self, profile):
        first = _chaos_sim(profile)
        first.run(until_seconds=RUN_SECONDS)
        second = _chaos_sim(profile)
        second.run(until_seconds=RUN_SECONDS)
        assert _location_trace(first) == _location_trace(second)
        assert first.lan.stats == second.lan.stats


class TestFaultSeedIsolation:
    def test_fault_seed_changes_faults_not_the_walk(self):
        # Fault plans draw from their own streams: changing the fault
        # seed must not perturb the simulation's ground truth.
        sims = [_chaos_sim("chaos", fault_seed=s) for s in (1, 2)]
        for sim in sims:
            sim.run(until_seconds=RUN_SECONDS)
        ground_truths = [
            [
                (visit.enter_tick, visit.leave_tick, visit.room_id)
                for userid in sorted(ROUTES)
                for visit in sim.user(userid).timeline.visits
            ]
            for sim in sims
        ]
        assert ground_truths[0] == ground_truths[1]
        # ...while the faults themselves did change.
        assert _location_trace(sims[0]) != _location_trace(sims[1]) or (
            sims[0].lan.stats != sims[1].lan.stats
        )

    def test_faults_gauge_is_set(self):
        sim = _chaos_sim("chaos")
        sim.run(until_seconds=50.0)
        assert sim.metrics.gauge("faults.active").value == 1

    def test_none_profile_matches_a_fault_free_run(self):
        # faults="none" is the identity: same bytes as no plan at all.
        plain = BIPSSimulation(config=BIPSConfig(seed=13))
        plain.add_user("u-a", "A")
        plain.login("u-a")
        plain.follow_route("u-a", ["lab-1"])
        plain.run(until_seconds=200.0)

        nulled = BIPSSimulation(
            config=BIPSConfig(seed=13), faults=FaultPlan.named("none", seed=99)
        )
        nulled.add_user("u-a", "A")
        nulled.login("u-a")
        nulled.follow_route("u-a", ["lab-1"])
        nulled.run(until_seconds=200.0)

        device = plain.user("u-a").device.address
        assert [
            (e.tick, e.room_id) for e in plain.server.location_db.history_of(device)
        ] == [
            (e.tick, e.room_id) for e in nulled.server.location_db.history_of(device)
        ]
        assert plain.lan.stats == nulled.lan.stats
