"""The ratcheting lint baseline."""

from __future__ import annotations

import json

import pytest

from repro.lint.baseline import (
    BASELINE_VERSION,
    Baseline,
    apply_baseline,
    fingerprint,
)
from repro.lint.diagnostics import Diagnostic, LintReport


def diag(path="src/a.py", line=3, rule="DET010", message="reaches time.time()"):
    return Diagnostic(path=path, line=line, column=0, rule=rule, message=message)


def report_of(*diagnostics):
    report = LintReport(files_checked=1)
    report.extend(diagnostics)
    report.finalize()
    return report


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        target = tmp_path / "lint-baseline.json"
        Baseline.from_report(report_of(diag())).save(target)
        loaded = Baseline.load(target)
        assert loaded.entries == [fingerprint(diag())]

    def test_from_report_dedupes_same_fingerprint(self):
        baseline = Baseline.from_report(
            report_of(diag(line=3), diag(line=30))
        )
        assert len(baseline.entries) == 1

    def test_json_is_deterministic_and_versioned(self):
        payload = json.loads(Baseline.from_report(report_of(diag())).to_json())
        assert payload["version"] == BASELINE_VERSION
        assert payload["findings"] == [
            {"path": "src/a.py", "rule": "DET010", "message": "reaches time.time()"}
        ]

    def test_load_rejects_wrong_version(self, tmp_path):
        target = tmp_path / "b.json"
        target.write_text('{"version": 99, "findings": []}')
        with pytest.raises(ValueError, match="unsupported version"):
            Baseline.load(target)


class TestRatchet:
    def test_grandfathered_finding_passes(self):
        baseline = Baseline.from_report(report_of(diag()))
        result = apply_baseline(report_of(diag()), baseline)
        assert result.exit_code == 0
        assert len(result.grandfathered) == 1
        assert result.new == [] and result.stale == []

    def test_new_finding_fails(self):
        baseline = Baseline.from_report(report_of(diag()))
        result = apply_baseline(
            report_of(diag(), diag(path="src/b.py", rule="ARCH001")), baseline
        )
        assert result.exit_code == 1
        assert len(result.new) == 1 and result.new[0].rule == "ARCH001"

    def test_stale_entry_fails_so_baseline_only_shrinks(self):
        baseline = Baseline.from_report(report_of(diag()))
        result = apply_baseline(report_of(), baseline)
        assert result.exit_code == 1
        assert result.stale == [fingerprint(diag())]
        assert "remove it" in result.render_text()

    def test_line_drift_does_not_invalidate_entry(self):
        baseline = Baseline.from_report(report_of(diag(line=3)))
        result = apply_baseline(report_of(diag(line=300)), baseline)
        assert result.exit_code == 0

    def test_empty_baseline_empty_report_is_clean(self):
        result = apply_baseline(report_of(), Baseline())
        assert result.exit_code == 0
        assert "0 new, 0 grandfathered, 0 stale" in result.render_text()


class TestRepoBaseline:
    def test_checked_in_baseline_is_empty(self):
        """The tree lands clean: the repo baseline grandfathers nothing."""
        from .conftest import REPO_ROOT

        payload = json.loads((REPO_ROOT / "lint-baseline.json").read_text())
        assert payload["version"] == BASELINE_VERSION
        assert payload["findings"] == []
