"""ARCH001: layer DAG enforcement and import-cycle detection."""

from __future__ import annotations

from repro.lint import lint_paths
from repro.lint.rules.architecture import ALLOWED, LAYER_DEPS, layer_of


def arch001(root):
    report = lint_paths([root], select=["ARCH001"], deep=True)
    return [d for d in report.diagnostics if d.rule == "ARCH001"]


class TestLayerModel:
    def test_closure_is_transitive(self):
        assert "sim" in ALLOWED["bluetooth"]  # via radio
        assert "radio" in ALLOWED["core"]  # via lan -> bluetooth -> radio
        assert "sim" in ALLOWED["cli"]

    def test_bottom_layers_depend_on_nothing(self):
        assert ALLOWED["sim"] == frozenset()
        assert ALLOWED["analysis"] == frozenset()

    def test_every_declared_dep_is_a_known_layer(self):
        for layer, deps in LAYER_DEPS.items():
            for dep in deps:
                assert dep in LAYER_DEPS, f"{layer} -> {dep}"

    def test_layer_of_maps_packages_and_overrides(self):
        assert layer_of("repro.sim.kernel") == "sim"
        assert layer_of("repro.obs.trace_cli") == "cli"
        assert layer_of("repro.obs.events") == "obs"
        assert layer_of("repro") == "api"
        assert layer_of("tests.something") is None


class TestLayeringRule:
    def test_upward_import_fires(self, package_tree):
        package_tree("repro/core/server.py", "X = 1\n")
        root = package_tree(
            "repro/sim/clock.py", "from repro.core import server\n"
        ).parent.parent
        findings = arch001(root)
        assert findings and all("must not import" in f.message for f in findings)
        assert findings[0].path.endswith("clock.py")

    def test_downward_import_passes(self, package_tree):
        package_tree("repro/sim/clock.py", "X = 1\n")
        root = package_tree(
            "repro/bluetooth/device.py", "from repro.sim import clock\n"
        ).parent.parent
        assert arch001(root) == []

    def test_typing_only_upward_import_exempt(self, package_tree):
        package_tree("repro/core/server.py", "X = 1\n")
        root = package_tree(
            "repro/sim/clock.py",
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.core import server\n",
        ).parent.parent
        assert arch001(root) == []

    def test_deferred_upward_import_still_fires(self, package_tree):
        package_tree("repro/core/server.py", "X = 1\n")
        root = package_tree(
            "repro/sim/clock.py",
            "def late():\n    from repro.core import server\n    return server\n",
        ).parent.parent
        findings = arch001(root)
        assert findings and "must not import" in findings[0].message

    def test_declared_edge_exception_passes(self, package_tree):
        # The declared exception is module-to-module, matching the real
        # tree's direct `from repro.bluetooth.packets import ...` form.
        package_tree("repro/bluetooth/packets.py", "class FHSPacket:\n    pass\n")
        root = package_tree(
            "repro/radio/channel.py",
            "from repro.bluetooth.packets import FHSPacket\n",
        ).parent.parent
        assert arch001(root) == []

    def test_undeclared_radio_to_bluetooth_edge_fires(self, package_tree):
        package_tree("repro/bluetooth/inquiry.py", "X = 1\n")
        root = package_tree(
            "repro/radio/channel.py", "from repro.bluetooth import inquiry\n"
        ).parent.parent
        findings = arch001(root)
        assert findings and "must not import" in findings[0].message


class TestCycleRule:
    def test_runtime_cycle_fires(self, package_tree):
        package_tree("repro/sim/a.py", "from repro.sim import b\n")
        root = package_tree(
            "repro/sim/b.py", "from repro.sim import a\n"
        ).parent.parent
        findings = arch001(root)
        assert any("import-time cycle" in f.message for f in findings)

    def test_deferred_cycle_does_not_fire(self, package_tree):
        package_tree("repro/sim/a.py", "from repro.sim import b\n")
        root = package_tree(
            "repro/sim/b.py",
            "def late():\n    from repro.sim import a\n    return a\n",
        ).parent.parent
        assert [f for f in arch001(root) if "cycle" in f.message] == []


class TestRealTree:
    def test_repro_tree_is_layer_clean(self):
        from .conftest import SRC_ROOT

        assert arch001(SRC_ROOT) == []
