"""The gate the CI job enforces: the shipped tree lints clean.

These tests run the real engine over the real ``src`` tree, so a lint
regression fails the ordinary test suite too, not just the CI lint job.
"""

from __future__ import annotations

from repro.lint import REGISTRY, lint_paths

from .conftest import REPO_ROOT, SRC_ROOT


class TestShippedTree:
    def test_src_is_clean(self):
        report = lint_paths([SRC_ROOT], project_root=REPO_ROOT)
        assert report.exit_code == 0, "\n" + report.render_text()
        assert report.files_checked > 80

    def test_suppressions_in_tree_are_live(self):
        # Every shipped suppression comment silences a real finding; a
        # zero here means dead directives are accumulating.
        report = lint_paths([SRC_ROOT], project_root=REPO_ROOT)
        assert report.suppressed > 0


class TestEndToEndPerturbation:
    def test_perturbed_constants_fail_through_lint_paths(self, package_tree):
        source = (SRC_ROOT / "repro" / "bluetooth" / "constants.py").read_text(
            encoding="utf-8"
        )
        bad = package_tree(
            "repro/bluetooth/constants.py",
            source.replace("N_INQUIRY = 256", "N_INQUIRY = 255"),
        )
        report = lint_paths([bad])
        assert report.exit_code == 1
        assert report.by_rule().get("BT001", 0) >= 4


class TestDocsCatalogue:
    def test_every_rule_is_documented(self):
        doc = (REPO_ROOT / "docs" / "static-analysis.md").read_text(encoding="utf-8")
        for spec in REGISTRY:
            assert spec.id in doc, f"rule {spec.id} missing from docs/static-analysis.md"

    def test_readme_links_the_doc(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "static-analysis.md" in readme
