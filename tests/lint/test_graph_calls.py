"""The name-resolution call graph: method/alias/re-export resolution,
conservative dynamic skips, and the real-tree resolution floor."""

from __future__ import annotations

from repro.lint import lint_paths
from repro.lint.graph.calls import (
    BUILTIN,
    DYNAMIC,
    EXTERNAL,
    PROJECT,
    UNKNOWN,
)
from repro.lint.registry import RuleRegistry

from .conftest import SRC_ROOT


def build_graph(root):
    sink = []
    lint_paths([root], registry=RuleRegistry(), deep=True, graph_sink=sink)
    return sink[0]


def sites_of(graph, caller):
    """Every call site in ``caller``, any resolution kind.

    (``callees_of`` deliberately indexes only project edges — the
    traversal queries never walk through external/builtin/dynamic
    sites — so tests inspect the full site list instead.)
    """
    return [s for s in graph.calls.sites if s.caller == caller]


class TestResolution:
    def test_bare_name_same_module(self, package_tree):
        root = package_tree(
            "pkg/a.py",
            "def helper():\n    return 1\n\n\ndef entry():\n    return helper()\n",
        ).parent.parent
        (site,) = sites_of(build_graph(root), "pkg.a.entry")
        assert site.kind == PROJECT and site.callee == "pkg.a.helper"

    def test_self_method_resolves(self, package_tree):
        root = package_tree(
            "pkg/a.py",
            "class C:\n"
            "    def helper(self):\n"
            "        return 1\n"
            "    def entry(self):\n"
            "        return self.helper()\n",
        ).parent.parent
        (site,) = sites_of(build_graph(root), "pkg.a.C.entry")
        assert site.kind == PROJECT and site.callee == "pkg.a.C.helper"

    def test_inherited_method_resolves_through_base(self, package_tree):
        root = package_tree(
            "pkg/a.py",
            "class Base:\n"
            "    def helper(self):\n"
            "        return 1\n"
            "class C(Base):\n"
            "    def entry(self):\n"
            "        return self.helper()\n",
        ).parent.parent
        (site,) = sites_of(build_graph(root), "pkg.a.C.entry")
        assert site.kind == PROJECT and site.callee == "pkg.a.Base.helper"

    def test_aliased_import_resolves(self, package_tree):
        package_tree("pkg/b.py", "def target():\n    return 1\n")
        root = package_tree(
            "pkg/a.py",
            "from pkg.b import target as t\n\n\ndef entry():\n    return t()\n",
        ).parent.parent
        (site,) = sites_of(build_graph(root), "pkg.a.entry")
        assert site.kind == PROJECT and site.callee == "pkg.b.target"

    def test_module_alias_attribute_resolves(self, package_tree):
        package_tree("pkg/b.py", "def target():\n    return 1\n")
        root = package_tree(
            "pkg/a.py",
            "import pkg.b as bee\n\n\ndef entry():\n    return bee.target()\n",
        ).parent.parent
        (site,) = sites_of(build_graph(root), "pkg.a.entry")
        assert site.kind == PROJECT and site.callee == "pkg.b.target"

    def test_init_reexport_resolves(self, package_tree):
        package_tree("pkg/sub/impl.py", "def target():\n    return 1\n")
        package_tree("pkg/sub/__init__.py", "from pkg.sub.impl import target\n")
        root = package_tree(
            "pkg/a.py",
            "from pkg.sub import target\n\n\ndef entry():\n    return target()\n",
        ).parent.parent
        (site,) = sites_of(build_graph(root), "pkg.a.entry")
        assert site.kind == PROJECT and site.callee == "pkg.sub.impl.target"

    def test_class_call_resolves_to_init(self, package_tree):
        root = package_tree(
            "pkg/a.py",
            "class C:\n"
            "    def __init__(self):\n"
            "        self.x = 1\n\n\n"
            "def entry():\n    return C()\n",
        ).parent.parent
        (site,) = sites_of(build_graph(root), "pkg.a.entry")
        assert site.kind == PROJECT and site.callee == "pkg.a.C.__init__"

    def test_module_singleton_method_resolves(self, package_tree):
        root = package_tree(
            "pkg/a.py",
            "class Registry:\n"
            "    def add(self, item):\n"
            "        return item\n\n\n"
            "REGISTRY = Registry()\n\n\n"
            "def entry():\n    REGISTRY.add(1)\n",
        ).parent.parent
        (site,) = sites_of(build_graph(root), "pkg.a.entry")
        assert site.kind == PROJECT and site.callee == "pkg.a.Registry.add"

    def test_stdlib_call_is_external(self, package_tree):
        root = package_tree(
            "pkg/a.py",
            "import time\n\n\ndef entry():\n    return time.time()\n",
        ).parent.parent
        (site,) = sites_of(build_graph(root), "pkg.a.entry")
        assert site.kind == EXTERNAL and site.callee == "time.time"

    def test_builtin_call(self, package_tree):
        root = package_tree(
            "pkg/a.py", "def entry(xs):\n    return len(xs)\n"
        ).parent.parent
        (site,) = sites_of(build_graph(root), "pkg.a.entry")
        assert site.kind == BUILTIN


class TestConservativeDynamicSkip:
    def test_parameter_call_is_dynamic(self, package_tree):
        root = package_tree(
            "pkg/a.py", "def entry(callback):\n    return callback()\n"
        ).parent.parent
        (site,) = sites_of(build_graph(root), "pkg.a.entry")
        assert site.kind == DYNAMIC

    def test_method_on_parameter_is_dynamic(self, package_tree):
        root = package_tree(
            "pkg/a.py", "def entry(obj):\n    return obj.run()\n"
        ).parent.parent
        (site,) = sites_of(build_graph(root), "pkg.a.entry")
        assert site.kind == DYNAMIC

    def test_call_on_call_result_is_dynamic(self, package_tree):
        root = package_tree(
            "pkg/a.py",
            "def make():\n    return int\n\n\ndef entry():\n    return make()()\n",
        ).parent.parent
        kinds = {s.kind for s in sites_of(build_graph(root), "pkg.a.entry")}
        assert DYNAMIC in kinds

    def test_dynamic_never_guessed_as_project(self, package_tree):
        root = package_tree(
            "pkg/a.py",
            "def run():\n    return 1\n\n\n"
            "def entry(run):\n    return run()\n",
        ).parent.parent
        # The *parameter* shadows the module function: must not resolve.
        (site,) = sites_of(build_graph(root), "pkg.a.entry")
        assert site.kind == DYNAMIC


class TestNestedFunctions:
    def test_nested_call_attributed_to_enclosing(self, package_tree):
        root = package_tree(
            "pkg/a.py",
            "def helper():\n    return 1\n\n\n"
            "def entry():\n"
            "    def inner():\n"
            "        return helper()\n"
            "    return inner\n",
        ).parent.parent
        callees = {
            s.callee
            for s in sites_of(build_graph(root), "pkg.a.entry")
            if s.kind == PROJECT
        }
        assert "pkg.a.helper" in callees


class TestTraversal:
    def test_reachable_from_gives_shortest_chain(self, package_tree):
        root = package_tree(
            "pkg/a.py",
            "def c():\n    return 1\n\n\n"
            "def b():\n    return c()\n\n\n"
            "def a():\n    return b()\n",
        ).parent.parent
        chains = build_graph(root).calls.reachable_from(["pkg.a.a"])
        assert chains["pkg.a.c"] == ("pkg.a.a", "pkg.a.b", "pkg.a.c")

    def test_chains_to_reverse_reachability(self, package_tree):
        root = package_tree(
            "pkg/a.py",
            "def c():\n    return 1\n\n\n"
            "def b():\n    return c()\n\n\n"
            "def a():\n    return b()\n",
        ).parent.parent
        chains = build_graph(root).calls.chains_to(["pkg.a.c"])
        assert chains["pkg.a.a"] == ("pkg.a.a", "pkg.a.b", "pkg.a.c")


class TestRealTree:
    def test_resolution_floor_on_repro_tree(self):
        """Satellite contract: >= 90% of statically addressable call
        sites in the real tree resolve to a concrete outcome."""
        graph = build_graph(SRC_ROOT)
        stats = graph.calls.stats
        assert stats.total > 2000  # the tree is not trivially empty
        assert stats.addressable_resolution >= 0.90
        # UNKNOWN should be rare in absolute terms too.
        assert stats.counts.get(UNKNOWN, 0) <= 0.02 * stats.total

    def test_known_kernel_chain_resolves(self):
        graph = build_graph(SRC_ROOT)
        callees = {
            s.callee
            for s in graph.calls.callees_of(
                "repro.sim.kernel.Kernel.run_to_completion"
            )
        }
        assert any(c.startswith("repro.sim.") for c in callees)
