"""The project import graph: edge flags, resolution, cycles."""

from __future__ import annotations

from repro.lint import lint_paths
from repro.lint.graph.imports import resolve_relative
from repro.lint.registry import RuleRegistry


def build_graph(root):
    """Build a ProjectGraph over ``root`` with no rules running."""
    sink = []
    lint_paths([root], registry=RuleRegistry(), deep=True, graph_sink=sink)
    return sink[0]


def edges(graph, source, target):
    return [
        e
        for e in graph.imports
        if e.source == source and e.target == target
    ]


class TestResolveRelative:
    def test_absolute(self):
        assert resolve_relative("repro.sim.kernel", False, 0, "os.path") == "os.path"

    def test_level_one_module(self):
        assert (
            resolve_relative("repro.sim.kernel", False, 1, "clock")
            == "repro.sim.clock"
        )

    def test_level_one_package_init(self):
        assert resolve_relative("repro.sim", True, 1, "clock") == "repro.sim.clock"

    def test_level_two(self):
        assert (
            resolve_relative("repro.sim.kernel", False, 2, "obs.events")
            == "repro.obs.events"
        )

    def test_bare_from_dot_import(self):
        assert resolve_relative("repro.sim.kernel", False, 1, None) == "repro.sim"


class TestEdgeFlags:
    def test_plain_import_is_runtime(self, package_tree):
        package_tree("pkg/a.py", "from pkg import b\n")
        root = package_tree("pkg/b.py", "X = 1\n").parent.parent
        (edge,) = edges(build_graph(root), "pkg.a", "pkg.b")
        assert not edge.typing_only and not edge.deferred

    def test_type_checking_guard_sets_typing_only(self, package_tree):
        package_tree(
            "pkg/a.py",
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from pkg import b\n",
        )
        root = package_tree("pkg/b.py", "X = 1\n").parent.parent
        (edge,) = edges(build_graph(root), "pkg.a", "pkg.b")
        assert edge.typing_only

    def test_function_body_import_sets_deferred(self, package_tree):
        package_tree(
            "pkg/a.py",
            "def late():\n    from pkg import b\n    return b\n",
        )
        root = package_tree("pkg/b.py", "X = 1\n").parent.parent
        (edge,) = edges(build_graph(root), "pkg.a", "pkg.b")
        assert edge.deferred and not edge.typing_only

    def test_from_import_records_submodule_edge(self, package_tree):
        package_tree("pkg/sub/impl.py", "def f():\n    return 1\n")
        root = package_tree(
            "pkg/a.py", "from pkg.sub import impl\n"
        ).parent.parent
        graph = build_graph(root)
        assert edges(graph, "pkg.a", "pkg.sub.impl")
        assert edges(graph, "pkg.a", "pkg.sub")


class TestCycles:
    def test_runtime_cycle_detected(self, package_tree):
        package_tree("pkg/a.py", "from pkg import b\n")
        root = package_tree("pkg/b.py", "from pkg import a\n").parent.parent
        assert build_graph(root).imports.cycles() == [("pkg.a", "pkg.b")]

    def test_deferred_import_breaks_cycle(self, package_tree):
        package_tree("pkg/a.py", "from pkg import b\n")
        root = package_tree(
            "pkg/b.py", "def late():\n    from pkg import a\n    return a\n"
        ).parent.parent
        assert build_graph(root).imports.cycles() == []

    def test_typing_import_breaks_cycle(self, package_tree):
        package_tree("pkg/a.py", "from pkg import b\n")
        root = package_tree(
            "pkg/b.py",
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from pkg import a\n",
        ).parent.parent
        assert build_graph(root).imports.cycles() == []

    def test_three_module_cycle(self, package_tree):
        package_tree("pkg/a.py", "from pkg import b\n")
        package_tree("pkg/b.py", "from pkg import c\n")
        root = package_tree("pkg/c.py", "from pkg import a\n").parent.parent
        assert build_graph(root).imports.cycles() == [("pkg.a", "pkg.b", "pkg.c")]


class TestExports:
    def test_dot_marks_typing_edges_dashed(self, package_tree):
        package_tree(
            "pkg/a.py",
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from pkg import b\n",
        )
        root = package_tree("pkg/b.py", "X = 1\n").parent.parent
        dot = build_graph(root).imports.to_dot()
        assert '"pkg.a" -> "pkg.b" [style=dashed, label="typing"];' in dot

    def test_json_dict_lists_project_modules(self, package_tree):
        package_tree("pkg/a.py", "from pkg import b\n")
        root = package_tree("pkg/b.py", "X = 1\n").parent.parent
        payload = build_graph(root).imports.to_json_dict()
        assert "pkg.a" in payload["modules"] and "pkg.b" in payload["modules"]
        assert any(
            e["source"] == "pkg.a" and e["target"] == "pkg.b"
            for e in payload["edges"]
        )
