"""`bips lint --deep`: CLI flags, baseline ratchet wiring, graph dumps."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

SINKING_CHAIN = {
    "repro/util/wallclock.py": (
        "import time\n\n\ndef stamp():\n    return time.time()\n"
    ),
    "repro/sim/engine.py": (
        "from repro.util.wallclock import stamp\n\n\n"
        "def entry():\n    return stamp()\n"
    ),
}


@pytest.fixture
def tainted_tree(package_tree):
    for relative, source in SINKING_CHAIN.items():
        target = package_tree(relative, source)
    return target.parent.parent


@pytest.fixture
def clean_tree(package_tree):
    return package_tree(
        "repro/sim/clock.py", "def seconds():\n    return 0\n"
    ).parent.parent


def run(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestDeepFlag:
    def test_deep_finds_project_violation(self, tainted_tree, capsys):
        code, out, _ = run(
            ["lint", str(tainted_tree), "--deep", "--select", "DET010"], capsys
        )
        assert code == 1
        assert "DET010" in out

    def test_shallow_run_ignores_project_rules(self, tainted_tree, capsys):
        code, out, _ = run(
            ["lint", str(tainted_tree), "--select", "DET010"], capsys
        )
        assert code == 0

    def test_select_and_ignore_apply_to_project_rules(self, tainted_tree, capsys):
        code, _, _ = run(
            [
                "lint", str(tainted_tree), "--deep",
                "--select", "DET010", "--ignore", "DET010",
            ],
            capsys,
        )
        assert code == 0

    def test_list_rules_marks_deep_rules(self, capsys):
        code, out, _ = run(["lint", "--list-rules"], capsys)
        assert code == 0
        for rule_id in ("DET010", "ARCH001", "PERF001"):
            assert rule_id in out
        assert "[deep]" in out

    def test_json_format_still_versioned(self, tainted_tree, capsys):
        code, out, _ = run(
            [
                "lint", str(tainted_tree), "--deep",
                "--select", "DET010", "--format", "json",
            ],
            capsys,
        )
        assert code == 1
        payload = json.loads(out)
        assert payload["summary"]["by_rule"].get("DET010") == 1


class TestGraphOut:
    def test_json_dump(self, clean_tree, tmp_path, capsys):
        target = tmp_path / "graph.json"
        code, _, err = run(
            ["lint", str(clean_tree), "--deep", "--graph-out", str(target)],
            capsys,
        )
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["version"] == 1
        assert "repro.sim.clock" in payload["imports"]["modules"]
        assert "resolution" in payload["calls"]

    def test_dot_dump(self, clean_tree, tmp_path, capsys):
        target = tmp_path / "graph.dot"
        code, _, _ = run(
            ["lint", str(clean_tree), "--deep", "--graph-out", str(target)],
            capsys,
        )
        assert code == 0
        dump = target.read_text()
        assert "digraph imports {" in dump and "digraph calls {" in dump

    def test_graph_out_requires_deep(self, clean_tree, capsys):
        code, _, err = run(
            ["lint", str(clean_tree), "--graph-out", "x.json"], capsys
        )
        assert code == 2
        assert "--graph-out requires --deep" in err


class TestBaselineWiring:
    def test_update_baseline_writes_findings(self, tainted_tree, tmp_path, capsys):
        target = tmp_path / "baseline.json"
        code, _, err = run(
            [
                "lint", str(tainted_tree), "--deep", "--select", "DET010",
                "--baseline", str(target), "--update-baseline",
            ],
            capsys,
        )
        assert code == 0
        payload = json.loads(target.read_text())
        assert len(payload["findings"]) == 1
        assert payload["findings"][0]["rule"] == "DET010"

    def test_grandfathered_finding_passes(self, tainted_tree, tmp_path, capsys):
        target = tmp_path / "baseline.json"
        run(
            [
                "lint", str(tainted_tree), "--deep", "--select", "DET010",
                "--baseline", str(target), "--update-baseline",
            ],
            capsys,
        )
        code, out, _ = run(
            [
                "lint", str(tainted_tree), "--deep", "--select", "DET010",
                "--baseline", str(target),
            ],
            capsys,
        )
        assert code == 0
        assert "1 new" not in out and "grandfathered" in out

    def test_new_finding_fails_against_baseline(self, tainted_tree, tmp_path, capsys):
        target = tmp_path / "baseline.json"
        target.write_text('{"version": 1, "findings": []}')
        code, out, _ = run(
            [
                "lint", str(tainted_tree), "--deep", "--select", "DET010",
                "--baseline", str(target),
            ],
            capsys,
        )
        assert code == 1
        assert "1 new" in out

    def test_stale_entry_fails(self, clean_tree, tmp_path, capsys):
        target = tmp_path / "baseline.json"
        target.write_text(
            json.dumps(
                {
                    "version": 1,
                    "findings": [
                        {"path": "gone.py", "rule": "DET010", "message": "fixed"}
                    ],
                }
            )
        )
        code, out, _ = run(
            [
                "lint", str(clean_tree), "--deep", "--select", "DET010",
                "--baseline", str(target),
            ],
            capsys,
        )
        assert code == 1
        assert "stale baseline entry" in out

    def test_unreadable_baseline_is_usage_error(self, clean_tree, tmp_path, capsys):
        target = tmp_path / "nope.json"
        code, _, err = run(
            [
                "lint", str(clean_tree), "--deep",
                "--baseline", str(target),
            ],
            capsys,
        )
        assert code == 2
        assert "baseline" in err

    def test_baseline_requires_deep(self, clean_tree, capsys):
        code, _, err = run(
            ["lint", str(clean_tree), "--baseline", "x.json"], capsys
        )
        assert code == 2
        assert "--baseline requires --deep" in err


class TestRepoTree:
    def test_deep_lint_clean_on_repo_src(self, capsys, monkeypatch):
        from .conftest import REPO_ROOT

        monkeypatch.chdir(REPO_ROOT)
        code, out, _ = run(["lint", "src", "--deep"], capsys)
        assert code == 0, out
