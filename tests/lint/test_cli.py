"""The `bips lint` command-line interface."""

from __future__ import annotations

import json
import os
import subprocess
import sys

from repro.cli import main
from repro.lint import REGISTRY

from .conftest import REPO_ROOT, SRC_ROOT


class TestExitCodes:
    def test_clean_file_exits_zero(self, package_tree, capsys):
        path = package_tree("repro/sim/fine.py", "TICKS = 3200\n")
        assert main(["lint", str(path)]) == 0
        assert "1 file(s) clean" in capsys.readouterr().out

    def test_findings_exit_one(self, package_tree, capsys):
        path = package_tree("repro/sim/bad.py", "import random\n")
        assert main(["lint", str(path)]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, package_tree, capsys):
        path = package_tree("repro/sim/fine.py", "TICKS = 3200\n")
        assert main(["lint", str(path), "--select", "NOPE999"]) == 2
        assert "NOPE999" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope.txt")]) == 2
        assert "bips lint:" in capsys.readouterr().err


class TestOutputFormats:
    def test_json_report_is_parseable(self, package_tree, capsys):
        path = package_tree("repro/sim/bad.py", "import random\nimport time\n")
        assert main(["lint", str(path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["summary"]["by_rule"] == {"DET001": 1, "DET002": 1}

    def test_select_narrows_the_run(self, package_tree, capsys):
        path = package_tree("repro/sim/bad.py", "import random\nimport time\n")
        assert main(["lint", str(path), "--select", "DET002", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["by_rule"] == {"DET002": 1}

    def test_ignore_drops_rules(self, package_tree, capsys):
        path = package_tree("repro/sim/bad.py", "import random\n")
        assert main(["lint", str(path), "--ignore", "DET001"]) == 0
        capsys.readouterr()

    def test_list_rules_prints_the_catalogue(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in REGISTRY.ids():
            assert rule_id in out

    def test_list_rules_in_a_fresh_process(self):
        # Registration must happen on import of repro.lint itself, not
        # as a side effect of a prior engine run in the same process.
        result = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--list-rules"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": str(SRC_ROOT)},
        )
        assert result.returncode == 0
        for rule_id in REGISTRY.ids():
            assert rule_id in result.stdout
