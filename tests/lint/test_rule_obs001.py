"""OBS001: metric registrations must match the docs catalogue."""

from __future__ import annotations

import pytest

from repro.lint.context import METRIC_CATALOGUE_PATH, ProjectContext

from .conftest import lint_snippet

CATALOGUE = """\
# Observability

| metric | kind | meaning |
| --- | --- | --- |
| `sim.events_fired` | counter | events executed |
| `core.queries_served{kind=location\\|path}` | counter | BIPS queries |

| span | category | kind | meaning |
| --- | --- | --- | --- |
| `lan.transit` | lan | interval | one wire copy |

Prose mentioning `not.a.catalogued.metric` must not register it.
"""


@pytest.fixture
def project(tmp_path) -> ProjectContext:
    doc = tmp_path / METRIC_CATALOGUE_PATH
    doc.parent.mkdir(parents=True)
    doc.write_text(CATALOGUE, encoding="utf-8")
    return ProjectContext(root=tmp_path)


def obs_findings(source: str, project: ProjectContext, module: str = "repro.obs.bad"):
    return [
        d
        for d in lint_snippet(source, module=module, project=project)
        if d.rule == "OBS001"
    ]


class TestCatalogueParsing:
    def test_table_names_are_collected(self, project):
        catalogue = project.metric_catalogue()
        assert "sim.events_fired" in catalogue

    def test_label_suffix_is_stripped(self, project):
        assert "core.queries_served" in project.metric_catalogue()

    def test_prose_outside_tables_is_ignored(self, project):
        assert "not.a.catalogued.metric" not in project.metric_catalogue()

    def test_missing_catalogue_yields_none(self, tmp_path):
        assert ProjectContext(root=tmp_path).metric_catalogue() is None

    def test_real_catalogue_loads(self):
        from .conftest import REPO_ROOT

        catalogue = ProjectContext(root=REPO_ROOT).metric_catalogue()
        assert catalogue is not None
        assert "sim.events_fired" in catalogue


class TestRule:
    def test_uncatalogued_metric_flagged(self, project):
        source = "def f(metrics):\n    metrics.counter('sim.not_documented').inc()\n"
        findings = obs_findings(source, project)
        assert len(findings) == 1
        assert "sim.not_documented" in findings[0].message

    def test_catalogued_metric_passes(self, project):
        source = "def f(metrics):\n    metrics.counter('sim.events_fired').inc()\n"
        assert obs_findings(source, project) == []

    def test_labelled_catalogue_entry_matches_bare_name(self, project):
        source = (
            "def f(metrics):\n"
            "    metrics.counter('core.queries_served', kind='location').inc()\n"
        )
        assert obs_findings(source, project) == []

    def test_all_registration_methods_are_checked(self, project):
        source = (
            "def f(metrics):\n"
            "    metrics.gauge('x.one').set(1)\n"
            "    metrics.histogram('x.two', buckets=(1,)).observe(0)\n"
        )
        assert len(obs_findings(source, project)) == 2

    def test_dotless_names_are_out_of_scope(self, project):
        source = "def f(c):\n    c.counter('plain')\n"
        assert obs_findings(source, project) == []

    def test_dynamic_names_are_out_of_scope(self, project):
        source = "def f(metrics, name):\n    metrics.counter(name).inc()\n"
        assert obs_findings(source, project) == []

    def test_no_catalogue_means_no_findings(self):
        source = "def f(metrics):\n    metrics.counter('sim.whatever').inc()\n"
        detached = ProjectContext(root=None)
        assert obs_findings(source, detached) == []

    def test_lint_package_itself_is_exempt(self, project):
        source = "def f(metrics):\n    metrics.counter('sim.not_documented').inc()\n"
        assert obs_findings(source, project, module="repro.lint.fixture") == []


class TestSpanNames:
    def test_uncatalogued_span_flagged(self, project):
        source = "def f(spans, t):\n    spans.begin('lan.tranist', 'lan', t)\n"
        findings = obs_findings(source, project)
        assert len(findings) == 1
        assert "span 'lan.tranist'" in findings[0].message

    def test_catalogued_span_passes(self, project):
        source = (
            "def f(spans, t):\n"
            "    spans.begin('lan.transit', 'lan', t)\n"
            "    spans.instant('lan.transit', 'lan', t, outcome='dropped')\n"
        )
        assert obs_findings(source, project) == []

    def test_uncatalogued_instant_flagged(self, project):
        source = "def f(spans, t):\n    spans.instant('core.nope', 'core', t)\n"
        assert len(obs_findings(source, project)) == 1

    def test_dynamic_span_names_are_out_of_scope(self, project):
        # The kernel opens spans named after dynamic event labels.
        source = "def f(spans, label, t):\n    spans.begin(label, 'kernel', t)\n"
        assert obs_findings(source, project) == []

    def test_profiler_begin_without_args_is_out_of_scope(self, project):
        source = "def f(prof):\n    token = prof.begin()\n"
        assert obs_findings(source, project) == []
