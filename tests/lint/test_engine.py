"""Engine mechanics: discovery, parse errors, crashes, rule selection."""

from __future__ import annotations

import json

import pytest

from repro.lint import REGISTRY, lint_paths, lint_source
from repro.lint.diagnostics import JSON_VERSION, Diagnostic, LintReport
from repro.lint.engine import INTERNAL_RULE_ID, PARSE_RULE_ID, iter_python_files
from repro.lint.registry import RuleRegistry, RuleSpec


class TestFileDiscovery:
    def test_recurses_and_sorts(self, package_tree):
        b = package_tree("repro/b.py", "x = 1\n")
        a = package_tree("repro/a.py", "x = 1\n")
        assert iter_python_files([a.parent]) == sorted(
            [a, b, a.parent / "__init__.py"]
        )

    def test_skips_pycache(self, tmp_path):
        cached = tmp_path / "__pycache__" / "mod.py"
        cached.parent.mkdir()
        cached.write_text("x = 1\n")
        assert iter_python_files([tmp_path]) == []

    def test_rejects_non_python_path(self, tmp_path):
        target = tmp_path / "notes.txt"
        target.write_text("hello\n")
        with pytest.raises(FileNotFoundError):
            iter_python_files([target])

    def test_overlapping_inputs_dedupe(self, package_tree):
        a = package_tree("repro/sim/a.py", "x = 1\n")
        root = a.parent.parent.parent
        files = iter_python_files([root, a.parent, a])
        assert files.count(a) == 1
        assert len(files) == len(set(p.resolve() for p in files))

    def test_symlinked_alias_counts_once(self, package_tree):
        a = package_tree("repro/a.py", "x = 1\n")
        alias = a.parent / "alias.py"
        alias.symlink_to(a)
        files = iter_python_files([a.parent])
        resolved = [p.resolve() for p in files]
        assert resolved.count(a.resolve()) == 1

    def test_symlinked_directory_not_double_linted(self, package_tree):
        a = package_tree("repro/a.py", "import random\n")
        root = a.parent.parent
        mirror = root.parent / "mirror"
        mirror.symlink_to(root)
        files = iter_python_files([root, mirror])
        assert len([p for p in files if p.resolve() == a.resolve()]) == 1


class TestParseAndCrashHandling:
    def test_syntax_error_becomes_parse_diagnostic(self):
        diagnostics, _ = lint_source("def broken(:\n", module="repro.sim.bad")
        assert len(diagnostics) == 1
        assert diagnostics[0].rule == PARSE_RULE_ID
        assert "syntax error" in diagnostics[0].message

    def test_crashing_rule_becomes_internal_diagnostic(self):
        def explode(ctx):
            raise RuntimeError("boom")

        registry = RuleRegistry()
        registry.add(
            RuleSpec(
                id="TST001",
                name="explode",
                summary="always crashes",
                rationale="test",
                check=explode,
            )
        )
        diagnostics, _ = lint_source(
            "x = 1\n", module="repro.sim.bad", registry=registry
        )
        assert [d.rule for d in diagnostics] == [INTERNAL_RULE_ID]
        assert "TST001" in diagnostics[0].message
        assert "boom" in diagnostics[0].message


class TestRuleSelection:
    def test_select_runs_only_named_rules(self):
        source = "import random\nimport time\n"
        diagnostics, _ = lint_source(
            source,
            module="repro.sim.bad",
            rules=REGISTRY.select(select=["DET002"]),
        )
        assert {d.rule for d in diagnostics} == {"DET002"}

    def test_ignore_drops_rules(self):
        source = "import random\nimport time\n"
        diagnostics, _ = lint_source(
            source,
            module="repro.sim.bad",
            rules=REGISTRY.select(ignore=["DET001"]),
        )
        assert "DET001" not in {d.rule for d in diagnostics}
        assert "DET002" in {d.rule for d in diagnostics}

    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError):
            REGISTRY.select(select=["NOPE999"])
        with pytest.raises(KeyError):
            REGISTRY.select(ignore=["NOPE999"])

    def test_registry_rejects_duplicate_ids(self):
        registry = RuleRegistry()
        spec = RuleSpec(
            id="TST001", name="x", summary="s", rationale="r", check=lambda ctx: []
        )
        registry.add(spec)
        with pytest.raises(ValueError):
            registry.add(spec)


class TestLintPaths:
    def test_clean_tree_reports_zero_exit(self, package_tree):
        path = package_tree("repro/sim/fine.py", "TICKS = 3200\n")
        report = lint_paths([path])
        assert report.exit_code == 0
        assert report.files_checked == 1
        assert report.diagnostics == []

    def test_dirty_tree_reports_findings(self, package_tree):
        path = package_tree("repro/sim/bad.py", "import random\n")
        report = lint_paths([path])
        assert report.exit_code == 1
        assert report.by_rule() == {"DET001": 1}

    def test_diagnostics_are_sorted_across_files(self, package_tree):
        second = package_tree("repro/sim/zz.py", "import random\n")
        first = package_tree("repro/sim/aa.py", "import time\n")
        report = lint_paths([first, second])
        assert [d.path for d in report.diagnostics] == [str(first), str(second)]


class TestReportRendering:
    def _report(self) -> LintReport:
        report = LintReport(files_checked=2, suppressed=1)
        report.extend(
            [
                Diagnostic("b.py", 3, 0, "DET001", "msg b"),
                Diagnostic("a.py", 1, 4, "DET002", "msg a"),
            ]
        )
        report.finalize()
        return report

    def test_text_rendering_is_compiler_style(self):
        text = self._report().render_text()
        lines = text.splitlines()
        assert lines[0] == "a.py:1:4: DET002 msg a"
        assert lines[1] == "b.py:3:0: DET001 msg b"
        assert "2 problem(s) in 2 file(s)" in lines[2]
        assert "1 suppressed" in lines[2]

    def test_json_schema(self):
        payload = json.loads(self._report().to_json())
        assert payload["version"] == JSON_VERSION
        assert payload["files_checked"] == 2
        assert payload["summary"] == {
            "total": 2,
            "suppressed": 1,
            "by_rule": {"DET001": 1, "DET002": 1},
        }
        assert payload["diagnostics"][0] == {
            "rule": "DET002",
            "path": "a.py",
            "line": 1,
            "column": 4,
            "message": "msg a",
        }

    def test_clean_report_renders_summary_only(self):
        report = LintReport(files_checked=5)
        assert report.exit_code == 0
        assert report.render_text() == "5 file(s) clean; 0 suppressed"
