"""FLT001: recovery paths must not bypass the retry wrapper."""

from __future__ import annotations

from .conftest import lint_snippet, rules_hit

MOD = "repro.core.bad"


class TestRecoveryPaths:
    def test_direct_send_in_recover_flagged(self):
        source = (
            "class Workstation:\n"
            "    def _recover(self):\n"
            "        self.lan.send(self.workstation_id, 'server', 'hello')\n"
        )
        assert "FLT001" in rules_hit(source, module=MOD)

    def test_direct_send_in_restart_flagged(self):
        source = (
            "def restart_endpoint(lan):\n"
            "    lan.send('a', 'b', 'msg')\n"
        )
        assert "FLT001" in rules_hit(source, module=MOD)

    def test_reregister_helper_flagged(self):
        source = (
            "class S:\n"
            "    def reregister(self):\n"
            "        self.transport.send('a', 'b', 'm')\n"
        )
        assert "FLT001" in rules_hit(source, module=MOD)

    def test_message_names_the_function(self):
        source = (
            "class W:\n"
            "    def _recover(self):\n"
            "        self.lan.send('a', 'b', 'm')\n"
        )
        (finding,) = [
            d for d in lint_snippet(source, module=MOD) if d.rule == "FLT001"
        ]
        assert "_recover()" in finding.message


class TestSanctionedForms:
    def test_push_chokepoint_is_clean(self):
        source = (
            "class Workstation:\n"
            "    def _recover(self):\n"
            "        self._push('hello')\n"
        )
        assert "FLT001" not in rules_hit(source, module=MOD)

    def test_send_reliable_is_clean(self):
        source = (
            "class W:\n"
            "    def _recover(self):\n"
            "        self.lan.send_reliable('a', 'b', 'm', self.policy)\n"
        )
        assert "FLT001" not in rules_hit(source, module=MOD)

    def test_send_outside_recovery_path_is_clean(self):
        source = (
            "class W:\n"
            "    def _send_update(self):\n"
            "        self.lan.send('a', 'b', 'm')\n"
        )
        assert "FLT001" not in rules_hit(source, module=MOD)

    def test_non_transport_receiver_is_clean(self):
        source = (
            "class W:\n"
            "    def _recover(self):\n"
            "        self.events.send('a')\n"
        )
        assert "FLT001" not in rules_hit(source, module=MOD)

    def test_out_of_scope_package_is_clean(self):
        source = (
            "def recover(lan):\n"
            "    lan.send('a', 'b', 'm')\n"
        )
        assert "FLT001" not in rules_hit(source, module="repro.bench.bad")
