"""Suppression-comment parsing and engine-level suppression behaviour."""

from __future__ import annotations

from repro.lint import lint_source
from repro.lint.suppressions import scan_suppressions

from .conftest import lint_snippet


class TestDirectiveParsing:
    def test_line_level_single_rule(self):
        index = scan_suppressions("x = 1  # lint: disable=DET003\n")
        assert index.covers(1, "DET003")
        assert not index.covers(1, "DET001")
        assert not index.covers(2, "DET003")

    def test_multiple_rules_one_comment(self):
        index = scan_suppressions("x = 1  # lint: disable=DET001, DET002\n")
        assert index.covers(1, "DET001")
        assert index.covers(1, "DET002")

    def test_file_level_covers_every_line(self):
        index = scan_suppressions("# lint: disable-file=OBS001\nx = 1\n")
        assert index.covers(1, "OBS001")
        assert index.covers(999, "OBS001")
        assert not index.covers(1, "DET001")

    def test_justification_after_dashes_is_tolerated(self):
        index = scan_suppressions(
            "x = 1  # lint: disable=DET003 -- commutative sum\n"
        )
        assert index.covers(1, "DET003")

    def test_directive_inside_string_literal_is_not_a_suppression(self):
        index = scan_suppressions('x = "# lint: disable=DET003"\n')
        assert not index.covers(1, "DET003")

    def test_plain_comments_are_ignored(self):
        index = scan_suppressions("# just a note about lint in general\nx = 1\n")
        assert not index.covers(1, "DET003")
        assert index.file_level == frozenset()


class TestEngineSuppression:
    SOURCE = "import random  # lint: disable=DET001 -- test fixture\n"

    def test_suppressed_finding_is_dropped_and_counted(self):
        diagnostics, suppressed = lint_source(self.SOURCE, module="repro.sim.bad")
        assert [d for d in diagnostics if d.rule == "DET001"] == []
        assert suppressed == 1

    def test_suppression_is_rule_specific(self):
        source = "import random  # lint: disable=DET002 -- wrong rule id\n"
        diagnostics = lint_snippet(source, module="repro.sim.bad")
        assert [d.rule for d in diagnostics] == ["DET001"]

    def test_file_level_suppression(self):
        source = (
            "# lint: disable-file=DET001 -- fixture exercising the RNG rule\n"
            "import random\n"
            "value = random.random()\n"
        )
        diagnostics, suppressed = lint_source(source, module="repro.sim.bad")
        assert diagnostics == []
        assert suppressed == 2
