"""Shared helpers for the lint-engine tests."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import Diagnostic, lint_source

#: The repository root (tests/lint/conftest.py -> repo).
REPO_ROOT = Path(__file__).resolve().parents[2]

#: The real library tree the self-check tests lint.
SRC_ROOT = REPO_ROOT / "src"


def lint_snippet(source: str, *, module: str, **kwargs) -> list[Diagnostic]:
    """Lint ``source`` as if it lived at dotted ``module``; diagnostics only."""
    diagnostics, _ = lint_source(source, module=module, **kwargs)
    return diagnostics


def rules_hit(source: str, *, module: str, **kwargs) -> set[str]:
    """The set of rule ids that fired on ``source``."""
    return {d.rule for d in lint_snippet(source, module=module, **kwargs)}


@pytest.fixture
def package_tree(tmp_path):
    """Write a tiny importable-looking package tree under tmp_path.

    Returns a writer: ``writer("repro/sim/bad.py", source)`` creates the
    file plus every missing ``__init__.py`` on the way, so the engine's
    module inference yields ``repro.sim.bad``.
    """

    def write(relative: str, source: str) -> Path:
        target = tmp_path / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        directory = target.parent
        while directory != tmp_path.parent and directory != directory.parent:
            if directory == tmp_path:
                break
            (directory / "__init__.py").touch()
            directory = directory.parent
        target.write_text(source, encoding="utf-8")
        return target

    return write
