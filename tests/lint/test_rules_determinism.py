"""Fixture-driven tests for rules DET001-DET004."""

from __future__ import annotations

from .conftest import lint_snippet, rules_hit


class TestDET001UnseededRNG:
    def test_import_random_flagged_in_sim_code(self):
        assert "DET001" in rules_hit("import random\n", module="repro.sim.bad")

    def test_from_random_import_flagged(self):
        assert "DET001" in rules_hit(
            "from random import randint\n", module="repro.bluetooth.bad"
        )

    def test_numpy_random_attribute_flagged(self):
        source = "import numpy as np\n\n\ndef f():\n    return np.random.rand()\n"
        assert "DET001" in rules_hit(source, module="repro.radio.bad")

    def test_module_attribute_access_flagged(self):
        source = "def f(random):\n    return random.random()\n"
        assert "DET001" in rules_hit(source, module="repro.core.bad")

    def test_outside_sim_packages_is_fine(self):
        assert "DET001" not in rules_hit("import random\n", module="repro.cli")

    def test_rng_wrapper_module_is_exempt(self):
        assert "DET001" not in rules_hit("import random\n", module="repro.sim.rng")

    def test_seeded_randomstream_is_fine(self):
        source = (
            "from repro.sim.rng import RandomStream\n\n\n"
            "def f(seed):\n    return RandomStream(seed, 'x').random()\n"
        )
        assert "DET001" not in rules_hit(source, module="repro.sim.good")


class TestDET002WallClock:
    def test_import_time_flagged(self):
        assert "DET002" in rules_hit("import time\n", module="repro.sim.bad")

    def test_time_time_call_flagged(self):
        source = "def f(time):\n    return time.monotonic()\n"
        assert "DET002" in rules_hit(source, module="repro.lan.bad")

    def test_datetime_now_flagged(self):
        source = (
            "from datetime import datetime\n\n\n"
            "def stamp():\n    return datetime.now()\n"
        )
        assert "DET002" in rules_hit(source, module="repro.core.bad")

    def test_runner_package_may_time_batches(self):
        # Host-side wall timing of worker batches is deliberately legal.
        assert "DET002" not in rules_hit(
            "import time\n", module="repro.runner.executor"
        )


class TestDET003UnorderedIteration:
    HOT = "repro.radio.channel"

    def test_set_literal_iteration_flagged(self):
        source = "for x in {1, 2, 3}:\n    print(x)\n"
        assert "DET003" in rules_hit(source, module=self.HOT)

    def test_inferred_set_name_flagged(self):
        source = (
            "listeners = set()\n\n\n"
            "def fan_out():\n    return [x for x in listeners]\n"
        )
        assert "DET003" in rules_hit(source, module=self.HOT)

    def test_dict_items_on_inferred_dict_flagged(self):
        source = (
            "table: dict[str, int] = {}\n\n\n"
            "def walk():\n    for k, v in table.items():\n        print(k, v)\n"
        )
        assert "DET003" in rules_hit(source, module=self.HOT)

    def test_self_attribute_from_class_annotation_flagged(self):
        source = (
            "class Medium:\n"
            "    members: set = None\n\n"
            "    def walk(self):\n"
            "        for m in self.members:\n"
            "            print(m)\n"
        )
        assert "DET003" in rules_hit(source, module=self.HOT)

    def test_list_wrapper_is_transparent(self):
        source = (
            "table = {}\n\n\n"
            "def walk():\n    for k in list(table.keys()):\n        print(k)\n"
        )
        assert "DET003" in rules_hit(source, module=self.HOT)

    def test_sorted_is_the_sanctioned_ordering(self):
        source = (
            "listeners = set()\n\n\n"
            "def fan_out():\n    return [x for x in sorted(listeners)]\n"
        )
        assert "DET003" not in rules_hit(source, module=self.HOT)

    def test_cold_path_modules_are_out_of_scope(self):
        source = "for x in {1, 2, 3}:\n    print(x)\n"
        assert "DET003" not in rules_hit(source, module="repro.analysis.stats")


class TestDET004FloatTimeEquality:
    def test_float_seconds_vs_tick_name_flagged(self):
        source = (
            "def due(kernel, deadline_tick):\n"
            "    return kernel.now_seconds == deadline_tick\n"
        )
        assert "DET004" in rules_hit(source, module="repro.sim.bad")

    def test_float_literal_vs_time_flagged(self):
        source = "def f(now_time):\n    return now_time != 1.28\n"
        assert "DET004" in rules_hit(source, module="repro.bluetooth.bad")

    def test_integer_tick_comparison_is_fine(self):
        source = "def due(now_tick, deadline_tick):\n    return now_tick == deadline_tick\n"
        assert "DET004" not in rules_hit(source, module="repro.sim.good")

    def test_ordering_comparisons_are_fine(self):
        source = "def f(now_seconds, deadline):\n    return now_seconds < deadline\n"
        assert "DET004" not in rules_hit(source, module="repro.sim.good")

    def test_diagnostic_carries_location(self):
        source = "def f(now_seconds, deadline):\n    return now_seconds == deadline\n"
        (diagnostic,) = [
            d
            for d in lint_snippet(source, module="repro.sim.bad")
            if d.rule == "DET004"
        ]
        assert diagnostic.line == 2
