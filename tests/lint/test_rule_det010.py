"""DET010: interprocedural determinism taint."""

from __future__ import annotations

from repro.lint import lint_paths


def det010(root, **kwargs):
    report = lint_paths([root], select=["DET010"], deep=True, **kwargs)
    return [d for d in report.diagnostics if d.rule == "DET010"]


SINKING_HELPER = (
    "import time\n\n\ndef stamp():\n    return time.time()\n"
)


class TestTaintPropagation:
    def test_sim_entry_reaching_sink_via_helper_fires(self, package_tree):
        package_tree("repro/util/wallclock.py", SINKING_HELPER)
        root = package_tree(
            "repro/sim/engine.py",
            "from repro.util.wallclock import stamp\n\n\n"
            "def entry():\n    return stamp()\n",
        ).parent.parent
        (finding,) = det010(root)
        assert finding.path.endswith("engine.py")
        assert "repro.sim.engine.entry" in finding.message
        assert "time.time()" in finding.message
        assert "repro.util.wallclock.stamp" in finding.message  # chain cited

    def test_direct_sink_not_reported_by_det010(self, package_tree):
        # Chain length 1 is DET001/DET002 territory; DET010 stays quiet.
        root = package_tree("repro/sim/engine.py", SINKING_HELPER).parent.parent
        assert det010(root) == []

    def test_non_sim_entry_not_reported(self, package_tree):
        package_tree("repro/util/wallclock.py", SINKING_HELPER)
        root = package_tree(
            "repro/analysis/timing.py",
            "from repro.util.wallclock import stamp\n\n\n"
            "def entry():\n    return stamp()\n",
        ).parent.parent
        assert det010(root) == []

    def test_only_entry_point_reported_not_interior_links(self, package_tree):
        package_tree("repro/util/wallclock.py", SINKING_HELPER)
        package_tree(
            "repro/sim/middle.py",
            "from repro.util.wallclock import stamp\n\n\n"
            "def relay():\n    return stamp()\n",
        )
        root = package_tree(
            "repro/sim/engine.py",
            "from repro.sim.middle import relay\n\n\n"
            "def entry():\n    return relay()\n",
        ).parent.parent
        findings = det010(root)
        assert len(findings) == 1
        assert "repro.sim.engine.entry" in findings[0].message

    def test_rng_wrapper_module_exempt(self, package_tree):
        # repro.sim.rng is the sanctioned home of random.* calls; code
        # calling it must not be tainted.
        package_tree(
            "repro/sim/rng.py",
            "import random\n\n\ndef draw():\n    return random.random()\n",
        )
        root = package_tree(
            "repro/sim/engine.py",
            "from repro.sim.rng import draw\n\n\n"
            "def entry():\n    return draw()\n",
        ).parent.parent
        assert det010(root) == []

    def test_seeded_random_constructor_not_a_sink(self, package_tree):
        package_tree(
            "repro/util/streams.py",
            "import random\n\n\ndef make(seed):\n    return random.Random(seed)\n",
        )
        root = package_tree(
            "repro/sim/engine.py",
            "from repro.util.streams import make\n\n\n"
            "def entry():\n    return make(7)\n",
        ).parent.parent
        assert det010(root) == []

    def test_os_urandom_is_a_sink(self, package_tree):
        package_tree(
            "repro/util/entropy.py",
            "import os\n\n\ndef token():\n    return os.urandom(8)\n",
        )
        root = package_tree(
            "repro/sim/engine.py",
            "from repro.util.entropy import token\n\n\n"
            "def entry():\n    return token()\n",
        ).parent.parent
        (finding,) = det010(root)
        assert "os.urandom()" in finding.message


class TestSuppression:
    def test_line_suppression_at_entry_point(self, package_tree):
        package_tree("repro/util/wallclock.py", SINKING_HELPER)
        root = package_tree(
            "repro/sim/engine.py",
            "from repro.util.wallclock import stamp\n\n\n"
            "def entry():  # lint: disable=DET010 -- host-side profiling, result never enters sim state\n"
            "    return stamp()\n",
        ).parent.parent
        assert det010(root) == []

    def test_ignore_flag_drops_rule(self, package_tree):
        package_tree("repro/util/wallclock.py", SINKING_HELPER)
        root = package_tree(
            "repro/sim/engine.py",
            "from repro.util.wallclock import stamp\n\n\n"
            "def entry():\n    return stamp()\n",
        ).parent.parent
        report = lint_paths(
            [root], select=["DET010"], ignore=["DET010"], deep=True
        )
        assert [d for d in report.diagnostics if d.rule == "DET010"] == []

    def test_shallow_run_never_fires_project_rules(self, package_tree):
        package_tree("repro/util/wallclock.py", SINKING_HELPER)
        root = package_tree(
            "repro/sim/engine.py",
            "from repro.util.wallclock import stamp\n\n\n"
            "def entry():\n    return stamp()\n",
        ).parent.parent
        report = lint_paths([root], select=["DET010"], deep=False)
        assert report.diagnostics == []
