"""PERF001: the @hot_path allocation audit."""

from __future__ import annotations

from repro.lint import lint_paths

MARK = "from repro.sim.hotpath import hot_path\n"


def perf001(root):
    report = lint_paths([root], select=["PERF001"], deep=True)
    return [d for d in report.diagnostics if d.rule == "PERF001"]


class TestMarkedFunctions:
    def test_list_comprehension_fires(self, package_tree):
        root = package_tree(
            "repro/sim/fast.py",
            MARK + "@hot_path\ndef drain(xs):\n    return [x + 1 for x in xs]\n",
        ).parent.parent
        (finding,) = perf001(root)
        assert "list comprehension" in finding.message
        assert "repro.sim.fast.drain" in finding.message

    def test_fstring_fires(self, package_tree):
        root = package_tree(
            "repro/sim/fast.py",
            MARK + "@hot_path\ndef drain(x):\n    return f'got {x}'\n",
        ).parent.parent
        (finding,) = perf001(root)
        assert "f-string" in finding.message

    def test_lambda_and_nested_def_fire(self, package_tree):
        root = package_tree(
            "repro/sim/fast.py",
            MARK
            + "@hot_path\ndef drain(xs):\n"
            "    def inner():\n"
            "        return 1\n"
            "    return sorted(xs, key=lambda x: -x)\n",
        ).parent.parent
        messages = sorted(f.message for f in perf001(root))
        assert any("nested def" in m for m in messages)
        assert any("lambda" in m for m in messages)

    def test_kwargs_expansion_fires(self, package_tree):
        root = package_tree(
            "repro/sim/fast.py",
            MARK
            + "def helper(**kw):\n    return kw\n\n\n"
            "@hot_path\ndef drain(opts):\n    return helper(**opts)\n",
        ).parent.parent
        (finding,) = perf001(root)
        assert "**kwargs" in finding.message

    def test_generator_expression_not_flagged(self, package_tree):
        root = package_tree(
            "repro/sim/fast.py",
            MARK + "@hot_path\ndef drain(xs):\n    return sum(x for x in xs)\n",
        ).parent.parent
        assert perf001(root) == []

    def test_raise_path_fstring_exempt(self, package_tree):
        root = package_tree(
            "repro/sim/fast.py",
            MARK
            + "@hot_path\ndef drain(x):\n"
            "    if x < 0:\n"
            "        raise ValueError(f'bad {x}')\n"
            "    return x\n",
        ).parent.parent
        assert perf001(root) == []

    def test_unmarked_function_not_audited(self, package_tree):
        root = package_tree(
            "repro/sim/fast.py",
            "def drain(xs):\n    return [x + 1 for x in xs]\n",
        ).parent.parent
        assert perf001(root) == []


class TestTransitiveCallees:
    def test_callee_of_marked_function_audited_with_chain(self, package_tree):
        root = package_tree(
            "repro/sim/fast.py",
            MARK
            + "def helper(xs):\n    return [x for x in xs]\n\n\n"
            "@hot_path\ndef drain(xs):\n    return helper(xs)\n",
        ).parent.parent
        (finding,) = perf001(root)
        assert "repro.sim.fast.helper" in finding.message
        assert "hot via" in finding.message
        assert "repro.sim.fast.drain" in finding.message

    def test_unreached_sibling_not_audited(self, package_tree):
        root = package_tree(
            "repro/sim/fast.py",
            MARK
            + "def cold(xs):\n    return [x for x in xs]\n\n\n"
            "@hot_path\ndef drain(xs):\n    return list(xs)\n",
        ).parent.parent
        assert perf001(root) == []


class TestSuppression:
    def test_justified_suppression_covers_finding(self, package_tree):
        root = package_tree(
            "repro/sim/fast.py",
            MARK
            + "@hot_path\ndef drain(xs):\n"
            "    return [x + 1 for x in xs]  "
            "# lint: disable=PERF001 -- the fresh list IS the return value\n",
        ).parent.parent
        report = lint_paths([root], select=["PERF001"], deep=True)
        assert report.diagnostics == []
        assert report.suppressed == 1


class TestHotPathDecorator:
    def test_identity_and_registry(self):
        from repro.sim.hotpath import HOT_PATH_REGISTRY, hot_path

        def probe():
            return 41

        marked = hot_path(probe)
        assert marked is probe  # identity: zero call-time overhead
        assert f"{probe.__module__}.{probe.__qualname__}" in HOT_PATH_REGISTRY

    def test_real_hot_loops_are_registered(self):
        # Importing the marked modules populates the runtime registry.
        import repro.bluetooth.hopping  # noqa: F401
        import repro.lan.transport  # noqa: F401
        import repro.radio.medium  # noqa: F401
        import repro.sim.kernel  # noqa: F401
        from repro.sim.hotpath import HOT_PATH_REGISTRY

        expected = {
            "repro.sim.kernel.Kernel._drain_heap",
            "repro.sim.kernel.Kernel._drain_calendar",
            "repro.bluetooth.hopping.InquiryTransmitSchedule.next_tx_of_position",
            "repro.radio.medium.RadioMedium.stations_in_range_of",
            "repro.lan.transport.LANTransport._deliver",
        }
        assert expected <= set(HOT_PATH_REGISTRY)
